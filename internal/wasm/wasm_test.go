package wasm_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"twine/internal/wasm"
	"twine/wasmgen"
)

var engines = []wasm.Engine{wasm.EngineInterp, wasm.EngineAOT}

// instantiate builds, decodes, compiles and instantiates a module under
// the given engine.
func instantiate(t *testing.T, m *wasmgen.Module, e wasm.Engine, imp *wasm.ImportObject) *wasm.Instance {
	t.Helper()
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: e})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	return in
}

// eachEngine runs a subtest under both engines; behaviour must match.
func eachEngine(t *testing.T, fn func(t *testing.T, e wasm.Engine)) {
	t.Helper()
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) { fn(t, e) })
	}
}

func TestAdd(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
		f.LocalGet(0).LocalGet(1).I32Add().End()
		m.Export("add", f)
		in := instantiate(t, m, e, nil)
		got, err := in.Invoke("add", 2, 40)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if got[0] != 42 {
			t.Errorf("add(2,40) = %d", got[0])
		}
		// i32 wrap-around.
		got, _ = in.Invoke("add", 0xFFFFFFFF, 1)
		if got[0] != 0 {
			t.Errorf("add(-1,1) = %d, want 0 (i32 wrap)", got[0])
		}
	})
}

func TestArithmeticOps(t *testing.T) {
	// One compact module per op; expected values computed in Go.
	type tc struct {
		name  string
		build func(f *wasmgen.Func)
		args  []uint64
		want  uint64
	}
	u32 := func(v int32) uint64 { return uint64(uint32(v)) }
	cases := []tc{
		{"i32.sub", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Sub() }, []uint64{5, 9}, u32(-4)},
		{"i32.mul", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Mul() }, []uint64{7, 6}, 42},
		{"i32.div_s", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32DivS() }, []uint64{u32(-7), 2}, u32(-3)},
		{"i32.div_u", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32DivU() }, []uint64{u32(-7), 2}, (4294967289) / 2},
		{"i32.rem_s", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32RemS() }, []uint64{u32(-7), 3}, u32(-1)},
		{"i32.and", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32And() }, []uint64{0b1100, 0b1010}, 0b1000},
		{"i32.or", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Or() }, []uint64{0b1100, 0b1010}, 0b1110},
		{"i32.xor", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Xor() }, []uint64{0b1100, 0b1010}, 0b0110},
		{"i32.shl", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Shl() }, []uint64{1, 35}, 8}, // shift mod 32
		{"i32.shr_s", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32ShrS() }, []uint64{u32(-8), 1}, u32(-4)},
		{"i32.shr_u", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32ShrU() }, []uint64{u32(-8), 1}, u32(-8) >> 1},
		{"i32.rotl", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32Rotl() }, []uint64{0x80000001, 1}, 0x00000003},
		{"i32.clz", func(f *wasmgen.Func) { f.LocalGet(0).I32Clz() }, []uint64{1}, 31},
		{"i32.ctz", func(f *wasmgen.Func) { f.LocalGet(0).I32Ctz() }, []uint64{8}, 3},
		{"i32.popcnt", func(f *wasmgen.Func) { f.LocalGet(0).I32Popcnt() }, []uint64{0xF0F0}, 8},
		{"i32.eqz", func(f *wasmgen.Func) { f.LocalGet(0).I32Eqz() }, []uint64{0}, 1},
		{"i32.lt_s", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32LtS() }, []uint64{u32(-1), 1}, 1},
		{"i32.lt_u", func(f *wasmgen.Func) { f.LocalGet(0).LocalGet(1).I32LtU() }, []uint64{u32(-1), 1}, 0},
	}
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		for _, c := range cases {
			t.Run(c.name, func(t *testing.T) {
				m := wasmgen.NewModule()
				params := make([]wasmgen.ValType, len(c.args))
				for i := range params {
					params[i] = wasmgen.I32
				}
				f := m.Func(wasmgen.Signature{Params: params, Results: []wasmgen.ValType{wasmgen.I32}})
				c.build(f)
				f.End()
				m.Export("f", f)
				in := instantiate(t, m, e, nil)
				got, err := in.Invoke("f", c.args...)
				if err != nil {
					t.Fatalf("Invoke: %v", err)
				}
				if got[0] != c.want {
					t.Errorf("%s = %#x, want %#x", c.name, got[0], c.want)
				}
			})
		}
	})
}

func TestI64Ops(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I64, wasmgen.I64).Returns(wasmgen.I64))
		f.LocalGet(0).LocalGet(1).I64Mul().I64Const(1).I64Add().End()
		m.Export("muladd1", f)
		in := instantiate(t, m, e, nil)
		got, err := in.Invoke("muladd1", uint64(1<<40), 3)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if got[0] != 3*(1<<40)+1 {
			t.Errorf("got %d", got[0])
		}
	})
}

func TestFloatOps(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.F64, wasmgen.F64).Returns(wasmgen.F64))
		// sqrt(a*a + b*b)
		f.LocalGet(0).LocalGet(0).F64Mul()
		f.LocalGet(1).LocalGet(1).F64Mul()
		f.F64Add().F64Sqrt().End()
		m.Export("hypot", f)
		in := instantiate(t, m, e, nil)
		got, err := in.Invoke("hypot", math.Float64bits(3), math.Float64bits(4))
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if v := math.Float64frombits(got[0]); v != 5 {
			t.Errorf("hypot(3,4) = %v", v)
		}
	})
}

func TestFloatNaNAndSigns(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		fmin := m.Func(wasmgen.Sig(wasmgen.F64, wasmgen.F64).Returns(wasmgen.F64))
		fmin.LocalGet(0).LocalGet(1).F64Min().End()
		m.Export("min", fmin)
		fneg := m.Func(wasmgen.Sig(wasmgen.F64).Returns(wasmgen.F64))
		fneg.LocalGet(0).F64Neg().End()
		m.Export("neg", fneg)
		in := instantiate(t, m, e, nil)

		got, _ := in.Invoke("min", math.Float64bits(math.NaN()), math.Float64bits(1))
		if !math.IsNaN(math.Float64frombits(got[0])) {
			t.Error("min(NaN,1) not NaN")
		}
		got, _ = in.Invoke("min", math.Float64bits(math.Copysign(0, -1)), math.Float64bits(0))
		if math.Signbit(math.Float64frombits(got[0])) == false {
			t.Error("min(-0,+0) lost the sign")
		}
		got, _ = in.Invoke("neg", math.Float64bits(math.NaN()))
		if !math.IsNaN(math.Float64frombits(got[0])) {
			t.Error("neg(NaN) not NaN")
		}
	})
}

func TestDivTraps(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
		f.LocalGet(0).LocalGet(1).I32DivS().End()
		m.Export("div", f)
		in := instantiate(t, m, e, nil)

		_, err := in.Invoke("div", 1, 0)
		var tr *wasm.Trap
		if !errors.As(err, &tr) || tr.Kind != wasm.TrapDivZero {
			t.Errorf("div by zero = %v, want TrapDivZero", err)
		}
		minI32 := uint64(uint32(0x80000000))
		negOne := uint64(uint32(0xFFFFFFFF))
		_, err = in.Invoke("div", minI32, negOne)
		if !errors.As(err, &tr) || tr.Kind != wasm.TrapIntOverflow {
			t.Errorf("MinInt32/-1 = %v, want TrapIntOverflow", err)
		}
		// The instance stays usable after a trap.
		got, err := in.Invoke("div", 10, 2)
		if err != nil || got[0] != 5 {
			t.Errorf("post-trap div = %v, %v", got, err)
		}
	})
}

func TestTruncTraps(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.F64).Returns(wasmgen.I32))
		f.LocalGet(0).I32TruncF64S().End()
		m.Export("trunc", f)
		in := instantiate(t, m, e, nil)

		got, err := in.Invoke("trunc", math.Float64bits(-3.9))
		if err != nil || int32(got[0]) != -3 {
			t.Errorf("trunc(-3.9) = %d, %v", int32(got[0]), err)
		}
		var tr *wasm.Trap
		if _, err = in.Invoke("trunc", math.Float64bits(math.NaN())); !errors.As(err, &tr) || tr.Kind != wasm.TrapBadConversion {
			t.Errorf("trunc(NaN) = %v", err)
		}
		if _, err = in.Invoke("trunc", math.Float64bits(3e10)); !errors.As(err, &tr) || tr.Kind != wasm.TrapIntOverflow {
			t.Errorf("trunc(3e10) = %v", err)
		}
	})
}

// TestLoopSum: iterative control flow with block/loop/br_if.
func TestLoopSum(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32), wasmgen.I32, wasmgen.I32) // locals: i, acc
		// for i := 0; i < n; i++ { acc += i }
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(1).LocalGet(0).I32GeS().BrIf(1) // i >= n -> break
		f.LocalGet(2).LocalGet(1).I32Add().LocalSet(2)
		f.LocalGet(1).I32Const(1).I32Add().LocalSet(1)
		f.Br(0)
		f.End() // loop
		f.End() // block
		f.LocalGet(2)
		f.End()
		m.Export("sum", f)
		in := instantiate(t, m, e, nil)
		got, err := in.Invoke("sum", 100)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if got[0] != 4950 {
			t.Errorf("sum(100) = %d, want 4950", got[0])
		}
	})
}

func TestIfElse(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		f.LocalGet(0).If(wasmgen.BlockI32)
		f.I32Const(111)
		f.Else()
		f.I32Const(222)
		f.End()
		f.End()
		m.Export("pick", f)
		in := instantiate(t, m, e, nil)
		if got, _ := in.Invoke("pick", 1); got[0] != 111 {
			t.Errorf("pick(1) = %d", got[0])
		}
		if got, _ := in.Invoke("pick", 0); got[0] != 222 {
			t.Errorf("pick(0) = %d", got[0])
		}
	})
}

func TestBrTable(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		f.Block(wasmgen.BlockVoid) // label 2 -> 300
		f.Block(wasmgen.BlockVoid) // label 1 -> 200
		f.Block(wasmgen.BlockVoid) // label 0 -> 100
		f.LocalGet(0)
		f.BrTable(0, 1, 2) // case 0 -> l0, case 1 -> l1, default -> l2
		f.End()
		f.I32Const(100).Return()
		f.End()
		f.I32Const(200).Return()
		f.End()
		f.I32Const(300).Return()
		f.End()
		m.Export("switch", f)
		in := instantiate(t, m, e, nil)
		for _, tc := range []struct{ arg, want uint64 }{{0, 100}, {1, 200}, {2, 300}, {99, 300}} {
			got, err := in.Invoke("switch", tc.arg)
			if err != nil {
				t.Fatalf("Invoke(%d): %v", tc.arg, err)
			}
			if got[0] != tc.want {
				t.Errorf("switch(%d) = %d, want %d", tc.arg, got[0], tc.want)
			}
		}
	})
}

func TestRecursionFactorial(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I64).Returns(wasmgen.I64))
		f.LocalGet(0).I64Eqz().If(wasmgen.BlockI64)
		f.I64Const(1)
		f.Else()
		f.LocalGet(0)
		f.LocalGet(0).I64Const(1).I64Sub().Call(f)
		f.I64Mul()
		f.End()
		f.End()
		m.Export("fact", f)
		in := instantiate(t, m, e, nil)
		got, err := in.Invoke("fact", 20)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if got[0] != 2432902008176640000 {
			t.Errorf("fact(20) = %d", got[0])
		}
	})
}

func TestInfiniteRecursionTraps(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig().Returns())
		f.Call(f).End()
		m.Export("loop", f)
		in := instantiate(t, m, e, nil)
		_, err := in.Invoke("loop")
		var tr *wasm.Trap
		if !errors.As(err, &tr) || tr.Kind != wasm.TrapCallDepth {
			t.Errorf("infinite recursion = %v, want TrapCallDepth", err)
		}
	})
}

func TestCallIndirect(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		sig := wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32)
		double := m.Func(sig)
		double.LocalGet(0).I32Const(2).I32Mul().End()
		triple := m.Func(sig)
		triple.LocalGet(0).I32Const(3).I32Mul().End()
		other := m.Func(wasmgen.Sig().Returns()) // wrong signature
		other.End()

		m.Table(4)
		m.Elem(0, double, triple, other)

		disp := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
		disp.LocalGet(1).LocalGet(0).CallIndirect(sig).End()
		m.Export("dispatch", disp)

		in := instantiate(t, m, e, nil)
		if got, _ := in.Invoke("dispatch", 0, 21); got[0] != 42 {
			t.Errorf("dispatch(0,21) = %d", got[0])
		}
		if got, _ := in.Invoke("dispatch", 1, 7); got[0] != 21 {
			t.Errorf("dispatch(1,7) = %d", got[0])
		}
		var tr *wasm.Trap
		if _, err := in.Invoke("dispatch", 2, 1); !errors.As(err, &tr) || tr.Kind != wasm.TrapIndirectType {
			t.Errorf("wrong-type dispatch = %v", err)
		}
		if _, err := in.Invoke("dispatch", 3, 1); !errors.As(err, &tr) || tr.Kind != wasm.TrapUndefinedElem {
			t.Errorf("uninitialised dispatch = %v", err)
		}
		if _, err := in.Invoke("dispatch", 99, 1); !errors.As(err, &tr) || tr.Kind != wasm.TrapUndefinedElem {
			t.Errorf("out-of-table dispatch = %v", err)
		}
	})
}

func TestMemoryOps(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		m.Memory(1, 2)
		m.Data(8, []byte{0xDE, 0xAD, 0xBE, 0xEF})
		store := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I64).Returns())
		store.LocalGet(0).LocalGet(1).I64Store(0).End()
		load := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I64))
		load.LocalGet(0).I64Load(0).End()
		loadB := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		loadB.LocalGet(0).I32Load8U(0).End()
		size := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
		size.MemorySize().End()
		grow := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		grow.LocalGet(0).MemoryGrow().End()
		m.Export("store", store)
		m.Export("load", load)
		m.Export("load8", loadB)
		m.Export("size", size)
		m.Export("grow", grow)

		in := instantiate(t, m, e, nil)
		// Data segment landed.
		if got, _ := in.Invoke("load8", 8); got[0] != 0xDE {
			t.Errorf("data[8] = %#x", got[0])
		}
		// Store/load round trip.
		if _, err := in.Invoke("store", 100, 0x1122334455667788); err != nil {
			t.Fatalf("store: %v", err)
		}
		if got, _ := in.Invoke("load", 100); got[0] != 0x1122334455667788 {
			t.Errorf("load = %#x", got[0])
		}
		// memory.size / grow.
		if got, _ := in.Invoke("size"); got[0] != 1 {
			t.Errorf("size = %d", got[0])
		}
		if got, _ := in.Invoke("grow", 1); int32(got[0]) != 1 {
			t.Errorf("grow(1) = %d", int32(got[0]))
		}
		if got, _ := in.Invoke("size"); got[0] != 2 {
			t.Errorf("size after grow = %d", got[0])
		}
		// Growing past the max fails with -1.
		if got, _ := in.Invoke("grow", 1); int32(got[0]) != -1 {
			t.Errorf("grow past max = %d, want -1", int32(got[0]))
		}
		// OOB traps.
		var tr *wasm.Trap
		if _, err := in.Invoke("load", 2*65536-4); !errors.As(err, &tr) || tr.Kind != wasm.TrapOOB {
			t.Errorf("oob load = %v", err)
		}
	})
}

func TestGlobals(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		g := m.Global(wasmgen.I64, true, 7)
		get := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
		get.GlobalGet(g).End()
		bump := m.Func(wasmgen.Sig().Returns())
		bump.GlobalGet(g).I64Const(1).I64Add().GlobalSet(g).End()
		m.Export("get", get)
		m.Export("bump", bump)
		in := instantiate(t, m, e, nil)
		in.Invoke("bump")
		in.Invoke("bump")
		if got, _ := in.Invoke("get"); got[0] != 9 {
			t.Errorf("global = %d, want 9", got[0])
		}
	})
}

func TestHostFunctions(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		hostMul := m.ImportFunc("env", "mul", wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
		f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		f.LocalGet(0).I32Const(3).Call(hostMul).End()
		m.Export("triple", f)

		var calls int
		imp := wasm.NewImportObject()
		imp.AddFunc(wasm.HostFunc{
			Module: "env", Name: "mul",
			Type: wasm.FuncType{Params: []wasm.ValueType{wasm.I32, wasm.I32}, Results: []wasm.ValueType{wasm.I32}},
			Fn: func(in *wasm.Instance, args []uint64) ([]uint64, error) {
				calls++
				return []uint64{uint64(uint32(args[0]) * uint32(args[1]))}, nil
			},
		})
		in := instantiate(t, m, e, imp)
		got, err := in.Invoke("triple", 14)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if got[0] != 42 || calls != 1 {
			t.Errorf("triple(14) = %d (%d calls)", got[0], calls)
		}
	})
}

func TestHostErrorsAndExit(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		fail := m.ImportFunc("env", "fail", wasmgen.Sig().Returns())
		exit := m.ImportFunc("env", "exit", wasmgen.Sig(wasmgen.I32).Returns())
		f := m.Func(wasmgen.Sig().Returns())
		f.Call(fail).End()
		g := m.Func(wasmgen.Sig().Returns())
		g.I32Const(3).Call(exit).End()
		m.Export("callFail", f)
		m.Export("callExit", g)

		bang := errors.New("host boom")
		imp := wasm.NewImportObject()
		imp.AddFunc(wasm.HostFunc{Module: "env", Name: "fail", Type: wasm.FuncType{},
			Fn: func(in *wasm.Instance, args []uint64) ([]uint64, error) { return nil, bang }})
		imp.AddFunc(wasm.HostFunc{Module: "env", Name: "exit",
			Type: wasm.FuncType{Params: []wasm.ValueType{wasm.I32}},
			Fn: func(in *wasm.Instance, args []uint64) ([]uint64, error) {
				return nil, wasm.ExitError{Code: uint32(args[0])}
			}})
		in := instantiate(t, m, e, imp)

		_, err := in.Invoke("callFail")
		if !errors.Is(err, bang) {
			t.Errorf("host error not propagated: %v", err)
		}
		_, err = in.Invoke("callExit")
		var tr *wasm.Trap
		if !errors.As(err, &tr) || tr.Kind != wasm.TrapExit || tr.Code != 3 {
			t.Errorf("exit = %v, want TrapExit code 3", err)
		}
	})
}

func TestStartFunctionRuns(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		g := m.Global(wasmgen.I32, true, 0)
		init := m.Func(wasmgen.Sig().Returns())
		init.I32Const(77).GlobalSet(g).End()
		m.Start(init)
		get := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
		get.GlobalGet(g).End()
		m.Export("get", get)
		in := instantiate(t, m, e, nil)
		if got, _ := in.Invoke("get"); got[0] != 77 {
			t.Errorf("start did not run: global = %d", got[0])
		}
	})
}

func TestSelectAndDrop(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
		f.I32Const(999).Drop()
		f.I32Const(10).I32Const(20).LocalGet(0).Select()
		f.End()
		m.Export("sel", f)
		in := instantiate(t, m, e, nil)
		if got, _ := in.Invoke("sel", 1); got[0] != 10 {
			t.Errorf("sel(1) = %d", got[0])
		}
		if got, _ := in.Invoke("sel", 0); got[0] != 20 {
			t.Errorf("sel(0) = %d", got[0])
		}
	})
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8},
		"truncated": append([]byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}, 1, 100),
	}
	for name, buf := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := wasm.Decode(buf); err == nil {
				t.Error("Decode accepted malformed module")
			}
		})
	}
	// A valid module decodes.
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig().Returns())
	f.End()
	m.Export("f", f)
	if _, err := wasm.Decode(m.Bytes()); err != nil {
		t.Errorf("valid module rejected: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	build := func(build func(f *wasmgen.Func)) error {
		m := wasmgen.NewModule()
		m.Memory(1, 1)
		f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
		build(f)
		f.End()
		m.Export("f", f)
		mod, err := wasm.Decode(m.Bytes())
		if err != nil {
			return err
		}
		_, err = wasm.Compile(mod)
		return err
	}
	cases := map[string]func(f *wasmgen.Func){
		"stack underflow":   func(f *wasmgen.Func) { f.I32Add() },
		"type mismatch":     func(f *wasmgen.Func) { f.I64Const(1).I32Const(1).I32Add() },
		"bad label":         func(f *wasmgen.Func) { f.I32Const(1).Br(7) },
		"unbalanced result": func(f *wasmgen.Func) { f.I32Const(1).I32Const(2) },
		"bad local":         func(f *wasmgen.Func) { f.LocalGet(9) },
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if err := build(b); !errors.Is(err, wasm.ErrValidation) {
				t.Errorf("got %v, want ErrValidation", err)
			}
		})
	}
}

func TestUnreachableCodeValidates(t *testing.T) {
	// Code after return is dead but must still parse and validate.
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		m := wasmgen.NewModule()
		f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
		f.I32Const(1).Return()
		f.I32Const(2).I32Const(3).I32Add().Drop()
		f.End()
		m.Export("f", f)
		in := instantiate(t, m, e, nil)
		if got, _ := in.Invoke("f"); got[0] != 1 {
			t.Errorf("f() = %d", got[0])
		}
	})
}

func TestMemoryCapBelowModuleMin(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(10, 20) // wants 640 KiB
	f := m.Func(wasmgen.Sig().Returns())
	f.End()
	m.Export("f", f)
	mod, _ := wasm.Decode(m.Bytes())
	c, _ := wasm.Compile(mod)
	if _, err := wasm.Instantiate(c, nil, wasm.Config{MaxMemoryPages: 5}); err == nil {
		t.Error("instantiation succeeded with memory cap below module minimum")
	}
}

func TestTouchHookObservesAccesses(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig().Returns())
	f.I32Const(0).I64Const(1).I64Store(0)
	f.I32Const(64).I64Load(0).Drop()
	f.End()
	m.Export("f", f)
	mod, _ := wasm.Decode(m.Bytes())
	c, _ := wasm.Compile(mod)
	var touched int64
	in, err := wasm.Instantiate(c, nil, wasm.Config{
		Touch: func(off, n int64) { touched += n },
	})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if _, err := in.Invoke("f"); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if touched != 16 {
		t.Errorf("touched %d bytes, want 16", touched)
	}
}

func TestUnresolvedImportFails(t *testing.T) {
	m := wasmgen.NewModule()
	m.ImportFunc("env", "missing", wasmgen.Sig().Returns())
	f := m.Func(wasmgen.Sig().Returns())
	f.End()
	m.Export("f", f)
	mod, _ := wasm.Decode(m.Bytes())
	c, _ := wasm.Compile(mod)
	if _, err := wasm.Instantiate(c, wasm.NewImportObject(), wasm.Config{}); !errors.Is(err, wasm.ErrLink) {
		t.Errorf("got %v, want ErrLink", err)
	}
}

// TestEnginesAgree is the engine-equivalence property: for random
// coefficient sets, a compiled polynomial-with-loop kernel must produce
// bit-identical results under interpreter and AoT execution.
func TestEnginesAgree(t *testing.T) {
	build := func() *wasmgen.Module {
		m := wasmgen.NewModule()
		m.Memory(1, 1)
		// f(a,b,n): for i in 0..n { acc = acc*a + b (i64) }; returns acc.
		f := m.Func(wasmgen.Sig(wasmgen.I64, wasmgen.I64, wasmgen.I32).Returns(wasmgen.I64),
			wasmgen.I32, wasmgen.I64)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(3).LocalGet(2).I32GeS().BrIf(1)
		f.LocalGet(4).LocalGet(0).I64Mul().LocalGet(1).I64Add().LocalSet(4)
		f.LocalGet(3).I32Const(1).I32Add().LocalSet(3)
		f.Br(0)
		f.End().End()
		f.LocalGet(4)
		f.End()
		m.Export("poly", f)
		return m
	}
	mod, err := wasm.Decode(build().Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	interp, _ := wasm.Instantiate(c, nil, wasm.Config{Engine: wasm.EngineInterp})
	aot, _ := wasm.Instantiate(c, nil, wasm.Config{Engine: wasm.EngineAOT})

	check := func(a, b uint64, n uint8) bool {
		r1, err1 := interp.Invoke("poly", a, b, uint64(n))
		r2, err2 := aot.Invoke("poly", a, b, uint64(n))
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1[0] == r2[0]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
