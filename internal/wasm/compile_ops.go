package wasm

import "fmt"

// simpleInstr dispatches the regular (non-control) opcode space: memory
// access, numeric operators and conversions.
func (fc *funcCompiler) simpleInstr(op byte) error {
	switch op {
	// Loads.
	case OpI32Load:
		return fc.memInstr(op, 4, I32, false)
	case OpI64Load:
		return fc.memInstr(op, 8, I64, false)
	case OpF32Load:
		return fc.memInstr(op, 4, F32, false)
	case OpF64Load:
		return fc.memInstr(op, 8, F64, false)
	case OpI32Load8S, OpI32Load8U:
		return fc.memInstr(op, 1, I32, false)
	case OpI32Load16S, OpI32Load16U:
		return fc.memInstr(op, 2, I32, false)
	case OpI64Load8S, OpI64Load8U:
		return fc.memInstr(op, 1, I64, false)
	case OpI64Load16S, OpI64Load16U:
		return fc.memInstr(op, 2, I64, false)
	case OpI64Load32S, OpI64Load32U:
		return fc.memInstr(op, 4, I64, false)

	// Stores.
	case OpI32Store:
		return fc.memInstr(op, 4, I32, true)
	case OpI64Store:
		return fc.memInstr(op, 8, I64, true)
	case OpF32Store:
		return fc.memInstr(op, 4, F32, true)
	case OpF64Store:
		return fc.memInstr(op, 8, F64, true)
	case OpI32Store8:
		return fc.memInstr(op, 1, I32, true)
	case OpI32Store16:
		return fc.memInstr(op, 2, I32, true)
	case OpI64Store8:
		return fc.memInstr(op, 1, I64, true)
	case OpI64Store16:
		return fc.memInstr(op, 2, I64, true)
	case OpI64Store32:
		return fc.memInstr(op, 4, I64, true)

	// i32 test/rel ops.
	case OpI32Eqz:
		return fc.testop(op, I32)
	case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU,
		OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
		return fc.relop(op, I32)

	// i64 test/rel ops.
	case OpI64Eqz:
		return fc.testop(op, I64)
	case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU,
		OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU:
		return fc.relop(op, I64)

	// f32/f64 rel ops.
	case OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge:
		return fc.relop(op, F32)
	case OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge:
		return fc.relop(op, F64)

	// i32 arithmetic.
	case OpI32Clz, OpI32Ctz, OpI32Popcnt:
		return fc.unop(op, I32)
	case OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32DivU, OpI32RemS,
		OpI32RemU, OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS,
		OpI32ShrU, OpI32Rotl, OpI32Rotr:
		return fc.binop(op, I32)

	// i64 arithmetic.
	case OpI64Clz, OpI64Ctz, OpI64Popcnt:
		return fc.unop(op, I64)
	case OpI64Add, OpI64Sub, OpI64Mul, OpI64DivS, OpI64DivU, OpI64RemS,
		OpI64RemU, OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS,
		OpI64ShrU, OpI64Rotl, OpI64Rotr:
		return fc.binop(op, I64)

	// f32 arithmetic.
	case OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt:
		return fc.unop(op, F32)
	case OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min, OpF32Max, OpF32Copysign:
		return fc.binop(op, F32)

	// f64 arithmetic.
	case OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt:
		return fc.unop(op, F64)
	case OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min, OpF64Max, OpF64Copysign:
		return fc.binop(op, F64)

	// Conversions.
	case OpI32WrapI64:
		return fc.cvtop(op, I64, I32)
	case OpI32TruncF32S, OpI32TruncF32U:
		return fc.cvtop(op, F32, I32)
	case OpI32TruncF64S, OpI32TruncF64U:
		return fc.cvtop(op, F64, I32)
	case OpI64ExtendI32S, OpI64ExtendI32U:
		return fc.cvtop(op, I32, I64)
	case OpI64TruncF32S, OpI64TruncF32U:
		return fc.cvtop(op, F32, I64)
	case OpI64TruncF64S, OpI64TruncF64U:
		return fc.cvtop(op, F64, I64)
	case OpF32ConvertI32S, OpF32ConvertI32U:
		return fc.cvtop(op, I32, F32)
	case OpF32ConvertI64S, OpF32ConvertI64U:
		return fc.cvtop(op, I64, F32)
	case OpF32DemoteF64:
		return fc.cvtop(op, F64, F32)
	case OpF64ConvertI32S, OpF64ConvertI32U:
		return fc.cvtop(op, I32, F64)
	case OpF64ConvertI64S, OpF64ConvertI64U:
		return fc.cvtop(op, I64, F64)
	case OpF64PromoteF32:
		return fc.cvtop(op, F32, F64)
	case OpI32ReinterpretF32:
		return fc.cvtop(op, F32, I32)
	case OpI64ReinterpretF64:
		return fc.cvtop(op, F64, I64)
	case OpF32ReinterpretI32:
		return fc.cvtop(op, I32, F32)
	case OpF64ReinterpretI64:
		return fc.cvtop(op, I64, F64)

	// Sign extension.
	case OpI32Extend8S, OpI32Extend16S:
		return fc.unop(op, I32)
	case OpI64Extend8S, OpI64Extend16S, OpI64Extend32S:
		return fc.unop(op, I64)

	default:
		return fmt.Errorf("unsupported opcode 0x%02x", op)
	}
}
