// Package wasm implements a WebAssembly 1.0 (MVP) runtime in pure Go: a
// binary decoder, a validating compiler that lowers structured control flow
// to branch-resolved internal code, and three execution engines — a plain
// interpreter and an "AoT" engine that runs a pre-translated,
// peephole-fused form of the code, mirroring the WAMR modes the paper uses
// (§III-B, Table I; the runtime TWINE embeds in the enclave is §IV-B), plus
// a second AoT stage (PR 4, EngineRegister) that rewrites each function
// into a basic-block register IR with constant folding, copy propagation
// and hoisted bounds checks.
//
// TWINE embeds this runtime inside the SGX enclave simulator; the runtime
// itself is host-agnostic and reports linear-memory accesses through an
// optional touch hook so the enclave's EPC model can charge paging costs.
//
// # Cost-model invariants
//
// The hot path between guest code and the EPC model is contractual:
//
//   - every linear-memory access is either reported through the touch
//     hook or proven redundant by the software EPC-TLB (PR 1): Memory
//     keeps a direct-mapped TLB of guest pages keyed by the enclave's
//     paging generation, and a hit is taken only where the touch would
//     have been a no-op — fault/eviction counts are bit-identical with
//     the TLB on or off (internal/core/fidelity_test.go);
//   - guest pages and enclave EPC pages coincide: the arena backing
//     linear memory is 4 KiB-aligned, so one guest page touch charges
//     exactly one enclave page;
//   - the AoT fusion pass may merge address arithmetic and adjacent
//     loads/stores into superinstructions, but never elides or reorders
//     the memory accesses themselves, so the touch sequence an
//     instruction stream produces is engine-independent.
//
// # Register-IR invariants (PR 4)
//
// The register tier adds translation-time optimisation, under rules that
// keep every tier bit-exact against the interpreter:
//
//   - Folding is integer-only and excludes trapping ops. Floats are
//     NEVER folded (not even int→float conversions): a value computed at
//     translation time by the Go compiler could legally differ from the
//     runtime arms in NaN bit patterns or contraction, so every float
//     result comes from runtime arithmetic on every tier. Non-NaN float
//     results are bit-identical across tiers (fusions preserve operand
//     order, and IEEE add/mul are bitwise commutative on non-NaN
//     values); NaN payload bits are nondeterministic across tiers —
//     exactly the latitude the wasm spec gives — because the stack
//     tiers share one set of arithmetic arms while the register tier
//     has its own, and hardware NaN propagation follows the operand
//     order each compiled arm happens to use.
//   - CSE (local value numbering) covers pure register computations
//     only — never loads, globals, or trapping ops — so no trap and no
//     memory access is ever elided by reuse; dead-store elimination
//     removes only side-effect-free local stores that are overwritten
//     before any read, branch, call boundary or block end.
//   - Memory accesses are never reordered or elided: the checked access
//     ops route through the same memLoad*/memStore* helpers as the
//     stack tiers (identical bounds traps, messages and touch order).
//   - Hoisting a bounds check is legal only for a window, inside one
//     basic block, in which EVERY access is covered by a guard: each
//     guard proves — per execution — that its accesses' whole span is
//     in bounds and that every touch would be a no-op (no hook, or one
//     EPC-TLB-hot page at the current paging generation), and no call,
//     memory.grow, base-register write or inbound branch target breaks
//     the window. Only then do raw (check-free, touch-free) accesses
//     run; any failed guard transfers to a verbatim checked copy of the
//     window suffix, so paging counters and trap sites are identical on
//     every path (internal/core/tier_test.go pins this under eviction
//     pressure and with the working set resident).
package wasm
