// Package wasm implements a WebAssembly 1.0 (MVP) runtime in pure Go: a
// binary decoder, a validating compiler that lowers structured control flow
// to branch-resolved internal code, and two execution engines mirroring the
// WAMR modes the paper uses — a plain interpreter and an "AoT" engine that
// runs a pre-translated, peephole-fused form of the code (§III-B, Table I;
// the runtime TWINE embeds in the enclave is §IV-B).
//
// TWINE embeds this runtime inside the SGX enclave simulator; the runtime
// itself is host-agnostic and reports linear-memory accesses through an
// optional touch hook so the enclave's EPC model can charge paging costs.
//
// # Cost-model invariants
//
// The hot path between guest code and the EPC model is contractual:
//
//   - every linear-memory access is either reported through the touch
//     hook or proven redundant by the software EPC-TLB (PR 1): Memory
//     keeps a direct-mapped TLB of guest pages keyed by the enclave's
//     paging generation, and a hit is taken only where the touch would
//     have been a no-op — fault/eviction counts are bit-identical with
//     the TLB on or off (internal/core/fidelity_test.go);
//   - guest pages and enclave EPC pages coincide: the arena backing
//     linear memory is 4 KiB-aligned, so one guest page touch charges
//     exactly one enclave page;
//   - the AoT fusion pass may merge address arithmetic and adjacent
//     loads/stores into superinstructions, but never elides or reorders
//     the memory accesses themselves, so the touch sequence an
//     instruction stream produces is engine-independent.
package wasm
