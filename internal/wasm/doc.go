// Package wasm implements a WebAssembly 1.0 (MVP) runtime in pure Go: a
// binary decoder, a validating compiler that lowers structured control flow
// to branch-resolved internal code, and four execution engines — a plain
// interpreter and an "AoT" engine that runs a pre-translated,
// peephole-fused form of the code, mirroring the WAMR modes the paper uses
// (§III-B, Table I; the runtime TWINE embeds in the enclave is §IV-B), plus
// a second AoT stage (PR 4, EngineRegister) that rewrites each function
// into a basic-block register IR with constant folding, copy propagation
// and hoisted bounds checks, and a third AoT stage (PR 7,
// EngineSuperblock) that compiles the register IR's innermost self-loops
// into single Go closures.
//
// TWINE embeds this runtime inside the SGX enclave simulator; the runtime
// itself is host-agnostic and reports linear-memory accesses through an
// optional touch hook so the enclave's EPC model can charge paging costs.
//
// # Cost-model invariants
//
// The hot path between guest code and the EPC model is contractual:
//
//   - every linear-memory access is either reported through the touch
//     hook or proven redundant by the software EPC-TLB (PR 1): Memory
//     keeps a direct-mapped TLB of guest pages keyed by the enclave's
//     paging generation, and a hit is taken only where the touch would
//     have been a no-op — fault/eviction counts are bit-identical with
//     the TLB on or off (internal/core/fidelity_test.go);
//   - guest pages and enclave EPC pages coincide: the arena backing
//     linear memory is 4 KiB-aligned, so one guest page touch charges
//     exactly one enclave page;
//   - the AoT fusion pass may merge address arithmetic and adjacent
//     loads/stores into superinstructions, but never elides or reorders
//     the memory accesses themselves, so the touch sequence an
//     instruction stream produces is engine-independent.
//
// # Register-IR invariants (PR 4)
//
// The register tier adds translation-time optimisation, under rules that
// keep every tier bit-exact against the interpreter:
//
//   - Folding is integer-only and excludes trapping ops. Floats are
//     NEVER folded (not even int→float conversions): a value computed at
//     translation time by the Go compiler could legally differ from the
//     runtime arms in NaN bit patterns or contraction, so every float
//     result comes from runtime arithmetic on every tier. Non-NaN float
//     results are bit-identical across tiers (fusions preserve operand
//     order, and IEEE add/mul are bitwise commutative on non-NaN
//     values); NaN payload bits are nondeterministic across tiers —
//     exactly the latitude the wasm spec gives — because the stack
//     tiers share one set of arithmetic arms while the register tier
//     has its own, and hardware NaN propagation follows the operand
//     order each compiled arm happens to use.
//   - CSE (local value numbering) covers pure register computations
//     only — never loads, globals, or trapping ops — so no trap and no
//     memory access is ever elided by reuse; dead-store elimination
//     removes only side-effect-free local stores that are overwritten
//     before any read, branch, call boundary or block end.
//   - Memory accesses are never reordered or elided: the checked access
//     ops route through the same memLoad*/memStore* helpers as the
//     stack tiers (identical bounds traps, messages and touch order).
//   - Hoisting a bounds check is legal only for a window, inside one
//     basic block, in which EVERY access is covered by a guard: each
//     guard proves — per execution — that its accesses' whole span is
//     in bounds and that every touch would be a no-op (no hook, or one
//     EPC-TLB-hot page at the current paging generation), and no call,
//     memory.grow, base-register write or inbound branch target breaks
//     the window. Only then do raw (check-free, touch-free) accesses
//     run; any failed guard transfers to a verbatim checked copy of the
//     window suffix, so paging counters and trap sites are identical on
//     every path (internal/core/tier_test.go pins this under eviction
//     pressure and with the working set resident).
//
// # Superblock-tier invariants (PR 7)
//
// The superblock tier (EngineSuperblock) stacks on the register form: it
// finds innermost self-loop regions (a back-edge to a dominating header
// inside one function) and replaces each header with a trace-enter
// pseudo-op dispatching to a Go closure. Only the header instruction is
// patched — interior pcs keep their original instructions, so mid-region
// branch targets and guard-failure blobs still execute under the
// register interpreter and re-enter the trace at the next back-edge.
// Rules, in addition to everything above:
//
//   - Two trace forms exist. An IDIOM trace matches a counted loop
//     (brcmp-ge header over an i32 induction local, constant positive
//     step; the back-edge increment may also be LVN's copy of a
//     body-computed L+step temp, proven affine-equal — the jacobi
//     stencil shape) whose straight-line body is an affine f64 walk — loads and
//     at most one trailing store at addresses c + cL·i + Σ coeffₖ·invₖ
//     scaled by a constant stride, combined by one of a fixed set of
//     templates (fill, copy, binary op, mul-add update, scaled sum,
//     scalar accumulate). A STEP trace compiles every region instruction
//     to a per-instruction closure copied expression-for-expression from
//     the register interpreter's arms; calls, indirect calls, br_table,
//     return and memory.grow/size exclude a region entirely (a bailout,
//     counted in SuperStats). Anything unproven stays on the register
//     interpreter — bailing is always correct.
//   - Float semantics follow the PR 4 rule: nothing is folded at
//     translation time, and idiom templates force product rounding
//     (prod := float64(x*y)) so Go's FMA contraction cannot change bits.
//     Operand order is preserved exactly as the register IR recorded it.
//   - An idiom trace amortises the PR 4 guard to once per loop TRIP: an
//     exact int64 proof (coefficients bounded, index line inside [0,2³²)
//     so u32 wrap is the identity, byte spans in bounds, induction never
//     wrapping past MaxInt32, every access width-aligned so it cannot
//     straddle an EPC-TLB page, and — when a touch hook is installed —
//     all ≤64 pages of every span hot at a generation read once). Under
//     that proof the checked path would perform no touch and no trap, so
//     the raw loop's empty hook sequence is bit-identical. If the proof
//     fails, a checked fallback replays the loop per-iteration through
//     the shared memLoad*/memStore* helpers in exact program order,
//     committing the induction local and accumulator every iteration, so
//     a mid-loop trap leaves the frame exactly as the interpreter would.
//   - The trip guard extends PR 4's hot-page stability assumption from a
//     window to a whole trip. For single-threaded instances — every
//     fidelity configuration in this repo — the proof is exact. Under
//     concurrent cross-instance eviction the generation word can move
//     mid-trip, in which case only touch/fault COUNTS can drift (the
//     same class of slack PR 4's window guards already accept); guest
//     results, traps and memory state remain bit-exact regardless.
//   - Retired-instruction accounting: idiom traces charge one dispatch
//     per iteration plus the trip entry; step traces count exactly one
//     per executed instruction, preserving InsRetired parity for
//     untraced shapes.
//
// Correctness of the whole stack is carried by a seeded cross-tier
// differential fuzzer (fuzz_tier_test.go): structured random modules run
// under all four engines against a fake EPC pager, comparing results,
// trap kind+message, memory, globals, the exact touch-call sequence and
// fault/eviction counts.
package wasm
