package wasm

import (
	"encoding/binary"
	"fmt"
)

var wasmMagic = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Section IDs.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElement  = 9
	secCode     = 10
	secData     = 11
)

// Decode parses a binary module and performs structural (index-space)
// validation. Function bodies are validated later, by Compile.
func Decode(buf []byte) (*Module, error) {
	r := &reader{buf: buf}
	magic, err := r.bytes(8)
	if err != nil {
		return nil, fmt.Errorf("%w: too short", ErrBadModule)
	}
	for i, b := range wasmMagic {
		if magic[i] != b {
			return nil, fmt.Errorf("%w: bad magic/version", ErrBadModule)
		}
	}
	m := &Module{}
	lastSec := -1
	sawCode := false
	for !r.done() {
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("%w: section size: %v", ErrBadModule, err)
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return nil, fmt.Errorf("%w: section %d truncated", ErrBadModule, id)
		}
		if id != secCustom {
			if int(id) <= lastSec {
				return nil, fmt.Errorf("%w: section %d out of order", ErrBadModule, id)
			}
			lastSec = int(id)
		}
		sr := &reader{buf: body}
		switch id {
		case secCustom:
			// Skipped (names, producers, ...).
		case secType:
			err = decodeTypes(sr, m)
		case secImport:
			err = decodeImports(sr, m)
		case secFunction:
			err = decodeFunctions(sr, m)
		case secTable:
			err = decodeTables(sr, m)
		case secMemory:
			err = decodeMemories(sr, m)
		case secGlobal:
			err = decodeGlobals(sr, m)
		case secExport:
			err = decodeExports(sr, m)
		case secStart:
			idx, serr := sr.u32()
			if serr != nil {
				err = serr
				break
			}
			m.HasStart = true
			m.StartIdx = idx
		case secElement:
			err = decodeElems(sr, m)
		case secCode:
			sawCode = true
			err = decodeCodes(sr, m)
		case secData:
			err = decodeData(sr, m)
		default:
			return nil, fmt.Errorf("%w: unknown section id %d", ErrBadModule, id)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: section %d: %v", ErrBadModule, id, err)
		}
		if id != secCustom && sr.len() != 0 {
			return nil, fmt.Errorf("%w: section %d has %d trailing bytes", ErrBadModule, id, sr.len())
		}
	}
	if len(m.FuncTypeIdxs) > 0 && !sawCode {
		return nil, fmt.Errorf("%w: function section without code section", ErrBadModule)
	}
	if len(m.Codes) != len(m.FuncTypeIdxs) {
		return nil, fmt.Errorf("%w: %d code bodies for %d functions", ErrBadModule, len(m.Codes), len(m.FuncTypeIdxs))
	}
	if err := validateIndexSpaces(m); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeTypes(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("type %d: bad form 0x%02x", i, form)
		}
		ft := FuncType{}
		if ft.Params, err = decodeValTypes(r); err != nil {
			return err
		}
		if ft.Results, err = decodeValTypes(r); err != nil {
			return err
		}
		if len(ft.Results) > 1 {
			return fmt.Errorf("type %d: multiple results not supported in MVP", i)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeValTypes(r *reader) ([]ValueType, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]ValueType, 0, n)
	for i := uint32(0); i < n; i++ {
		b, err := r.byte()
		if err != nil {
			return nil, err
		}
		if !validValueType(b) {
			return nil, fmt.Errorf("bad value type 0x%02x", b)
		}
		out = append(out, ValueType(b))
	}
	return out, nil
}

func decodeLimits(r *reader) (Limits, error) {
	flag, err := r.byte()
	if err != nil {
		return Limits{}, err
	}
	var l Limits
	min, err := r.u32()
	if err != nil {
		return Limits{}, err
	}
	l.Min = min
	switch flag {
	case 0:
	case 1:
		max, err := r.u32()
		if err != nil {
			return Limits{}, err
		}
		l.Max = max
		l.HasMax = true
		if l.Max < l.Min {
			return Limits{}, fmt.Errorf("limits max %d < min %d", l.Max, l.Min)
		}
	default:
		return Limits{}, fmt.Errorf("bad limits flag %d", flag)
	}
	return l, nil
}

func decodeImports(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var imp Import
		if imp.Module, err = r.name(); err != nil {
			return err
		}
		if imp.Name, err = r.name(); err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		imp.Kind = ImportKind(kind)
		switch imp.Kind {
		case KindFunc:
			if imp.TypeIdx, err = r.u32(); err != nil {
				return err
			}
			m.NumImportedFuncs++
		case KindTable:
			elem, err := r.byte()
			if err != nil {
				return err
			}
			if elem != 0x70 {
				return fmt.Errorf("import %d: bad table elem type", i)
			}
			if imp.Limits, err = decodeLimits(r); err != nil {
				return err
			}
			m.NumImportedTables++
		case KindMemory:
			if imp.Limits, err = decodeLimits(r); err != nil {
				return err
			}
			m.NumImportedMems++
		case KindGlobal:
			t, err := r.byte()
			if err != nil {
				return err
			}
			if !validValueType(t) {
				return fmt.Errorf("import %d: bad global type", i)
			}
			mut, err := r.byte()
			if err != nil {
				return err
			}
			imp.Global = GlobalType{Type: ValueType(t), Mutable: mut == 1}
		default:
			return fmt.Errorf("import %d: bad kind %d", i, kind)
		}
		if imp.Kind == KindGlobal {
			m.NumImportedGlobals++
		}
		m.Imports = append(m.Imports, imp)
	}
	return nil
}

func decodeFunctions(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		idx, err := r.u32()
		if err != nil {
			return err
		}
		m.FuncTypeIdxs = append(m.FuncTypeIdxs, idx)
	}
	return nil
}

func decodeTables(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		elem, err := r.byte()
		if err != nil {
			return err
		}
		if elem != 0x70 {
			return fmt.Errorf("table %d: bad elem type", i)
		}
		l, err := decodeLimits(r)
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, l)
	}
	if len(m.Tables)+m.NumImportedTables > 1 {
		return fmt.Errorf("at most one table in MVP")
	}
	return nil
}

func decodeMemories(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		l, err := decodeLimits(r)
		if err != nil {
			return err
		}
		if l.Min > MaxPages || (l.HasMax && l.Max > MaxPages) {
			return fmt.Errorf("memory %d: exceeds 4 GiB", i)
		}
		m.Memories = append(m.Memories, l)
	}
	if len(m.Memories)+m.NumImportedMems > 1 {
		return fmt.Errorf("at most one memory in MVP")
	}
	return nil
}

func decodeInitExpr(r *reader) (InitExpr, error) {
	op, err := r.byte()
	if err != nil {
		return InitExpr{}, err
	}
	var e InitExpr
	e.Kind = op
	switch op {
	case OpI32Const:
		v, err := r.sleb(32)
		if err != nil {
			return e, err
		}
		e.Value = uint64(uint32(int32(v)))
	case OpI64Const:
		v, err := r.sleb(64)
		if err != nil {
			return e, err
		}
		e.Value = uint64(v)
	case OpF32Const:
		b, err := r.bytes(4)
		if err != nil {
			return e, err
		}
		e.Value = uint64(binary.LittleEndian.Uint32(b))
	case OpF64Const:
		b, err := r.bytes(8)
		if err != nil {
			return e, err
		}
		e.Value = binary.LittleEndian.Uint64(b)
	case OpGlobalGet:
		idx, err := r.u32()
		if err != nil {
			return e, err
		}
		e.GlobalIdx = idx
	default:
		return e, fmt.Errorf("unsupported init expr opcode 0x%02x", op)
	}
	end, err := r.byte()
	if err != nil {
		return e, err
	}
	if end != OpEnd {
		return e, fmt.Errorf("init expr not terminated")
	}
	return e, nil
}

func decodeGlobals(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := r.byte()
		if err != nil {
			return err
		}
		if !validValueType(t) {
			return fmt.Errorf("global %d: bad type", i)
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		init, err := decodeInitExpr(r)
		if err != nil {
			return fmt.Errorf("global %d: %v", i, err)
		}
		m.Globals = append(m.Globals, Global{
			Type: GlobalType{Type: ValueType(t), Mutable: mut == 1},
			Init: init,
		})
	}
	return nil
}

func decodeExports(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	seen := make(map[string]bool, n)
	for i := uint32(0); i < n; i++ {
		name, err := r.name()
		if err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("duplicate export %q", name)
		}
		seen[name] = true
		kind, err := r.byte()
		if err != nil {
			return err
		}
		idx, err := r.u32()
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, Export{Name: name, Kind: ImportKind(kind), Idx: idx})
	}
	return nil
}

func decodeElems(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		tableIdx, err := r.u32()
		if err != nil {
			return err
		}
		if tableIdx != 0 {
			return fmt.Errorf("elem %d: non-zero table index", i)
		}
		off, err := decodeInitExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		seg := ElemSegment{Offset: off, Indices: make([]uint32, 0, cnt)}
		for j := uint32(0); j < cnt; j++ {
			fi, err := r.u32()
			if err != nil {
				return err
			}
			seg.Indices = append(seg.Indices, fi)
		}
		m.Elems = append(m.Elems, seg)
	}
	return nil
}

func decodeCodes(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		size, err := r.u32()
		if err != nil {
			return err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		br := &reader{buf: body}
		declCount, err := br.u32()
		if err != nil {
			return err
		}
		var locals []ValueType
		for j := uint32(0); j < declCount; j++ {
			cnt, err := br.u32()
			if err != nil {
				return err
			}
			t, err := br.byte()
			if err != nil {
				return err
			}
			if !validValueType(t) {
				return fmt.Errorf("code %d: bad local type", i)
			}
			if uint64(len(locals))+uint64(cnt) > 65536 {
				return fmt.Errorf("code %d: too many locals", i)
			}
			for k := uint32(0); k < cnt; k++ {
				locals = append(locals, ValueType(t))
			}
		}
		m.Codes = append(m.Codes, Code{Locals: locals, Body: body[br.pos:]})
	}
	return nil
}

func decodeData(r *reader, m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		memIdx, err := r.u32()
		if err != nil {
			return err
		}
		if memIdx != 0 {
			return fmt.Errorf("data %d: non-zero memory index", i)
		}
		off, err := decodeInitExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		b, err := r.bytes(int(cnt))
		if err != nil {
			return err
		}
		seg := DataSegment{Offset: off, Bytes: append([]byte(nil), b...)}
		m.Data = append(m.Data, seg)
	}
	return nil
}

// validateIndexSpaces checks every cross-reference in the module.
func validateIndexSpaces(m *Module) error {
	nTypes := uint32(len(m.Types))
	for i, imp := range m.Imports {
		if imp.Kind == KindFunc && imp.TypeIdx >= nTypes {
			return fmt.Errorf("%w: import %d: type index %d out of range", ErrValidation, i, imp.TypeIdx)
		}
	}
	for i, ti := range m.FuncTypeIdxs {
		if ti >= nTypes {
			return fmt.Errorf("%w: function %d: type index %d out of range", ErrValidation, i, ti)
		}
	}
	nFuncs := uint32(m.NumFunctions())
	nGlobals := uint32(m.NumImportedGlobals + len(m.Globals))
	nTables := uint32(m.NumImportedTables + len(m.Tables))
	nMems := uint32(m.NumImportedMems + len(m.Memories))
	for _, e := range m.Exports {
		var limit uint32
		switch e.Kind {
		case KindFunc:
			limit = nFuncs
		case KindGlobal:
			limit = nGlobals
		case KindTable:
			limit = nTables
		case KindMemory:
			limit = nMems
		default:
			return fmt.Errorf("%w: export %q: bad kind", ErrValidation, e.Name)
		}
		if e.Idx >= limit {
			return fmt.Errorf("%w: export %q: index %d out of range", ErrValidation, e.Name, e.Idx)
		}
	}
	if m.HasStart {
		if m.StartIdx >= nFuncs {
			return fmt.Errorf("%w: start function index out of range", ErrValidation)
		}
		ft, err := m.TypeOfFunc(m.StartIdx)
		if err != nil {
			return err
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return fmt.Errorf("%w: start function must be []->[]", ErrValidation)
		}
	}
	for i, g := range m.Globals {
		if g.Init.Kind == OpGlobalGet && int(g.Init.GlobalIdx) >= m.NumImportedGlobals {
			return fmt.Errorf("%w: global %d: init refers to non-imported global", ErrValidation, i)
		}
	}
	for i, e := range m.Elems {
		if nTables == 0 {
			return fmt.Errorf("%w: elem %d: no table", ErrValidation, i)
		}
		for _, fi := range e.Indices {
			if fi >= nFuncs {
				return fmt.Errorf("%w: elem %d: function index %d out of range", ErrValidation, i, fi)
			}
		}
	}
	if len(m.Data) > 0 && nMems == 0 {
		return fmt.Errorf("%w: data segment without memory", ErrValidation)
	}
	return nil
}
