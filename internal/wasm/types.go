package wasm

import (
	"errors"
	"fmt"
)

// ValueType is a WebAssembly value type.
type ValueType byte

// Value types (binary encodings from the spec).
const (
	I32 ValueType = 0x7F
	I64 ValueType = 0x7E
	F32 ValueType = 0x7D
	F64 ValueType = 0x7C
)

func (t ValueType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("valuetype(0x%02x)", byte(t))
	}
}

func validValueType(b byte) bool {
	switch ValueType(b) {
	case I32, I64, F32, F64:
		return true
	}
	return false
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

func (ft FuncType) String() string {
	return fmt.Sprintf("func%v->%v", ft.Params, ft.Results)
}

// Equal reports signature equality.
func (ft FuncType) Equal(o FuncType) bool {
	if len(ft.Params) != len(o.Params) || len(ft.Results) != len(o.Results) {
		return false
	}
	for i := range ft.Params {
		if ft.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range ft.Results {
		if ft.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// Limits bound a memory or table size.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// GlobalType describes a global variable.
type GlobalType struct {
	Type    ValueType
	Mutable bool
}

// ImportKind distinguishes import/export namespaces.
type ImportKind byte

// Import/export kinds (binary encodings).
const (
	KindFunc   ImportKind = 0
	KindTable  ImportKind = 1
	KindMemory ImportKind = 2
	KindGlobal ImportKind = 3
)

func (k ImportKind) String() string {
	switch k {
	case KindFunc:
		return "func"
	case KindTable:
		return "table"
	case KindMemory:
		return "memory"
	case KindGlobal:
		return "global"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Import is one module import.
type Import struct {
	Module string
	Name   string
	Kind   ImportKind
	// Type index for KindFunc.
	TypeIdx uint32
	// Limits for KindTable / KindMemory.
	Limits Limits
	// Global type for KindGlobal.
	Global GlobalType
}

// Export is one module export.
type Export struct {
	Name string
	Kind ImportKind
	Idx  uint32
}

// Global is a module-defined global with its init expression value.
type Global struct {
	Type GlobalType
	Init InitExpr
}

// InitExpr is a constant initialiser: either a literal value or a
// reference to an imported global.
type InitExpr struct {
	// Kind is one of the const opcodes or OpGlobalGet.
	Kind byte
	// Value holds the literal bits.
	Value uint64
	// GlobalIdx is used when Kind == OpGlobalGet.
	GlobalIdx uint32
}

// ElemSegment is an active element segment for table 0.
type ElemSegment struct {
	Offset  InitExpr
	Indices []uint32
}

// DataSegment is an active data segment for memory 0.
type DataSegment struct {
	Offset InitExpr
	Bytes  []byte
}

// Code is one function body as decoded (pre-compilation).
type Code struct {
	Locals []ValueType // expanded local declarations (excluding params)
	Body   []byte      // raw expression bytes, ending with OpEnd
}

// Module is a decoded, structurally validated WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	// FuncTypeIdxs holds the type index of each module-defined function.
	FuncTypeIdxs []uint32
	Tables       []Limits
	Memories     []Limits
	Globals      []Global
	Exports      []Export
	HasStart     bool
	StartIdx     uint32
	Elems        []ElemSegment
	Codes        []Code
	Data         []DataSegment

	// Counts of imported entities, fixed at decode time.
	NumImportedFuncs   int
	NumImportedGlobals int
	NumImportedTables  int
	NumImportedMems    int
}

// NumFunctions returns the total function index space size.
func (m *Module) NumFunctions() int { return m.NumImportedFuncs + len(m.FuncTypeIdxs) }

// TypeOfFunc returns the signature of function index space entry i.
func (m *Module) TypeOfFunc(i uint32) (FuncType, error) {
	if int(i) < m.NumImportedFuncs {
		n := 0
		for _, imp := range m.Imports {
			if imp.Kind == KindFunc {
				if n == int(i) {
					return m.Types[imp.TypeIdx], nil
				}
				n++
			}
		}
		return FuncType{}, fmt.Errorf("wasm: import bookkeeping corrupt for func %d", i)
	}
	idx := int(i) - m.NumImportedFuncs
	if idx >= len(m.FuncTypeIdxs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", i)
	}
	return m.Types[m.FuncTypeIdxs[idx]], nil
}

// ExportedFunc finds an exported function index by name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == KindFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// Package errors.
var (
	ErrBadModule    = errors.New("wasm: malformed module")
	ErrValidation   = errors.New("wasm: validation failed")
	ErrLink         = errors.New("wasm: link error")
	ErrNoSuchExport = errors.New("wasm: no such export")
)

// PageSize is the WebAssembly linear-memory page size (64 KiB).
const PageSize = 65536

// MaxPages is the architectural page limit (4 GiB).
const MaxPages = 65536
