package wasm_test

import (
	"sync"
	"testing"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// statefulModule builds a module with memory-resident state: a data
// segment seeds cell 0, a global counts calls, and run(x) returns
// mem[0] + global + x while bumping both.
func statefulModule() *wasmgen.Module {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	m.Data(0, []byte{7, 0, 0, 0}) // mem[0] = 7
	g := m.Global(wasmgen.I32, true, 100)

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	// result = mem[0] + global + x
	f.I32Const(0).I32Load(0)
	f.GlobalGet(g).I32Add()
	f.LocalGet(0).I32Add()
	// mem[0]++
	f.I32Const(0).I32Const(0).I32Load(0).I32Const(1).I32Add().I32Store(0)
	// global++
	f.GlobalGet(g).I32Const(1).I32Add().GlobalSet(g)
	f.End()
	m.Export("run", f)
	m.ExportMemory("memory")
	return m
}

func compile(t *testing.T, m *wasmgen.Module) *wasm.Compiled {
	t.Helper()
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// TestSnapshotInstantiateEquivalence: an instance stamped from a snapshot
// must behave exactly like the instance it was taken from — same memory,
// globals and table — and diverge independently afterwards.
func TestSnapshotInstantiateEquivalence(t *testing.T) {
	eachEngine(t, func(t *testing.T, e wasm.Engine) {
		c := compile(t, statefulModule())
		orig, err := wasm.Instantiate(c, nil, wasm.Config{Engine: e})
		if err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		// Advance the original's state, then snapshot mid-life.
		if _, err := orig.Invoke("run", 0); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		snap := orig.Snapshot()

		copyIn, err := wasm.InstantiateFromSnapshot(c, nil, snap, wasm.Config{Engine: e})
		if err != nil {
			t.Fatalf("InstantiateFromSnapshot: %v", err)
		}

		// Both must now compute identical results from identical state...
		a, err := orig.Invoke("run", 5)
		if err != nil {
			t.Fatalf("orig run: %v", err)
		}
		b, err := copyIn.Invoke("run", 5)
		if err != nil {
			t.Fatalf("copy run: %v", err)
		}
		if a[0] != b[0] {
			t.Fatalf("snapshot copy diverged: orig %d, copy %d", a[0], b[0])
		}
		// ...and their state must be independent: run the copy twice more,
		// the original is unaffected.
		if _, err := copyIn.Invoke("run", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := copyIn.Invoke("run", 0); err != nil {
			t.Fatal(err)
		}
		a2, _ := orig.Invoke("run", 5)
		b2, _ := copyIn.Invoke("run", 5)
		if a2[0] == b2[0] {
			t.Fatal("instances share state; snapshot must deep-copy")
		}
	})
}

// TestSnapshotModuleMismatch: a snapshot only fits instances of the
// module it was taken from.
func TestSnapshotModuleMismatch(t *testing.T) {
	c1 := compile(t, statefulModule())
	c2 := compile(t, statefulModule()) // same shape, different Module value
	in, err := wasm.Instantiate(c1, nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wasm.InstantiateFromSnapshot(c2, nil, in.Snapshot(), wasm.Config{}); err == nil {
		t.Fatal("cross-module snapshot instantiation succeeded; want error")
	}
}

// TestConcurrentInstancesSharedCompiled: many instances of one Compiled
// (sharing the lazily fused AoT code) must run concurrently and compute
// what a sequential instance computes — the immutable/mutable module
// split this PR introduces.
func TestConcurrentInstancesSharedCompiled(t *testing.T) {
	c := compile(t, statefulModule())

	// Sequential reference: fresh instance, three calls.
	ref, err := wasm.Instantiate(c, nil, wasm.Config{Engine: wasm.EngineAOT})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for i := 0; i < 3; i++ {
		out, err := ref.Invoke("run", uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out[0])
	}

	const workers = 8
	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, err := wasm.Instantiate(c, nil, wasm.Config{Engine: wasm.EngineAOT})
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < 3; i++ {
				out, err := in.Invoke("run", uint64(i))
				if err != nil {
					errs[w] = err
					return
				}
				results[w] = append(results[w], out[0])
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for i := range want {
			if results[w][i] != want[i] {
				t.Errorf("worker %d call %d = %d, want %d", w, i, results[w][i], want[i])
			}
		}
	}
}
