package wasm

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync/atomic"
)

// runRegBody is the register-tier execution loop: three-address
// instructions over the frame's register file (params+locals, then the
// operand-slot homes). Plain wasm value opcodes are interpreted with dst
// in .a and sources in .b/.c; every arithmetic arm is the same Go
// expression as the stack tiers', so results are bit-identical, and every
// checked memory access goes through the same memLoad*/memStore* helpers
// (identical bounds traps and EPC touch sequences).
func (in *Instance) runRegBody(fn *compiledFunc, bp int) {
	code := fn.code
	mem := in.mem
	r := in.stack[bp:]
	pc := 0
	var retired int64

	for {
		i := &code[pc]
		retired++
		switch i.op {

		// --- moves ---
		case rOpConst:
			r[i.a] = i.imm
		case rOpCopy:
			r[i.a] = r[i.b]

		// --- control ---
		case rOpBr:
			pc = int(i.a)
			continue
		case rOpBrIf:
			if uint32(r[i.b]) != 0 {
				pc = int(i.a)
				continue
			}
		case rOpBrIfZ:
			if uint32(r[i.b]) == 0 {
				pc = int(i.a)
				continue
			}
		case rOpBrCmp:
			if i32Cmp(byte(i.imm), uint32(r[i.b]), uint32(r[i.c])) {
				pc = int(i.a)
				continue
			}
		case rOpBrCmpImm:
			if i32Cmp(byte(i.imm), uint32(r[i.b]), uint32(i.imm>>32)) {
				pc = int(i.a)
				continue
			}
		case sOpTraceEnter:
			// Superblock tier: run the compiled loop trace. Its retired
			// count includes this dispatch, which the loop top already
			// counted once.
			next, n := fn.traces[i.a](in, r, mem)
			retired += n - 1
			pc = next
			continue
		case rOpBrTable:
			idx := uint32(r[i.b])
			table := fn.brTables[i.a]
			t := table[len(table)-1]
			if int(idx) < len(table)-1 {
				t = table[idx]
			}
			if t.drop > 0 {
				top := int(i.c)
				copy(r[top-int(t.keep)-int(t.drop):top-int(t.drop)], r[top-int(t.keep):top])
			}
			pc = int(t.pc)
			continue
		case rOpReturn:
			keep := int(i.c)
			copy(r[:keep], r[i.a:int(i.a)+keep])
			in.sp = bp + keep
			in.insRetired += retired
			return
		case rOpUnreach:
			trap(TrapUnreachable, "")

		case rOpCall:
			in.sp = bp + int(i.b)
			in.invokeFunc(int(i.a))
		case rOpCallIndirect:
			elem := uint32(r[i.c])
			if int(elem) >= len(in.table) {
				trap(TrapUndefinedElem, "index %d of %d", elem, len(in.table))
			}
			target := in.table[elem]
			if target < 0 {
				trap(TrapUndefinedElem, "uninitialised element %d", elem)
			}
			want := in.m.Types[i.a]
			got, err := in.m.TypeOfFunc(uint32(target))
			if err != nil || !got.Equal(want) {
				trap(TrapIndirectType, "want %v got %v", want, got)
			}
			in.sp = bp + int(i.b)
			in.invokeFunc(int(target))

		// --- parametric ---
		case rOpSelect:
			if uint32(r[uint32(i.imm)]) != 0 {
				r[i.a] = r[i.b]
			} else {
				r[i.a] = r[i.c]
			}

		// --- globals ---
		case rOpGlobalGet:
			r[i.a] = in.globals[i.b]
		case rOpGlobalSet:
			in.globals[i.a] = r[i.b]

		// --- memory management ---
		case rOpMemSize:
			r[i.a] = uint64(mem.Pages())
		case rOpMemGrow:
			r[i.a] = uint64(uint32(mem.Grow(uint32(r[i.b]))))

		// --- checked memory ---
		case rOpLoad32U:
			r[i.a] = uint64(memLoad32(mem, r[i.b], i.imm))
		case rOpLoad64:
			r[i.a] = memLoad64(mem, r[i.b], i.imm)
		case rOpLoad8U:
			r[i.a] = uint64(memLoad8(mem, r[i.b], i.imm))
		case rOpLoad16U:
			r[i.a] = uint64(memLoad16(mem, r[i.b], i.imm))
		case rOpLoad8S32:
			r[i.a] = uint64(uint32(int32(int8(memLoad8(mem, r[i.b], i.imm)))))
		case rOpLoad16S32:
			r[i.a] = uint64(uint32(int32(int16(memLoad16(mem, r[i.b], i.imm)))))
		case rOpLoad8S64:
			r[i.a] = uint64(int64(int8(memLoad8(mem, r[i.b], i.imm))))
		case rOpLoad16S64:
			r[i.a] = uint64(int64(int16(memLoad16(mem, r[i.b], i.imm))))
		case rOpLoad32S64:
			r[i.a] = uint64(int64(int32(memLoad32(mem, r[i.b], i.imm))))
		case rOpStore8:
			memStore8(mem, r[i.a], i.imm, byte(r[i.b]))
		case rOpStore16:
			memStore16(mem, r[i.a], i.imm, uint16(r[i.b]))
		case rOpStore32:
			memStore32(mem, r[i.a], i.imm, uint32(r[i.b]))
		case rOpStore64:
			memStore64(mem, r[i.a], i.imm, r[i.b])
		case rOpStore64Imm:
			memStore64(mem, r[i.a], uint64(uint32(i.c)), i.imm)
		case rOpLoadAff64:
			addr := uint64(uint32(r[i.b])*uint32(i.imm>>32) + uint32(i.imm))
			r[i.a] = memLoad64(mem, addr, uint64(uint32(i.c)))
		case rOpLoadAff32:
			addr := uint64(uint32(r[i.b])*uint32(i.imm>>32) + uint32(i.imm))
			r[i.a] = uint64(memLoad32(mem, addr, uint64(uint32(i.c))))
		case rOpStoreAff64:
			addr := uint64(uint32(r[i.a])*uint32(i.imm>>32) + uint32(i.imm))
			memStore64(mem, addr, uint64(uint32(i.c)), r[i.b])

		// --- hoisted guards + raw windows ---
		case rOpMemGuard:
			base := uint64(uint32(r[i.b]))
			if !regGuardOK(mem, base+(i.imm>>32), base+(i.imm&0xFFFFFFFF)) {
				pc = int(i.a)
				continue
			}
		case rOpMemGuardAff:
			base := uint64(uint32(r[i.b])*uint32(i.imm>>32) + uint32(i.imm))
			lo := base + uint64(uint32(i.c)>>16)
			hi := base + uint64(uint32(i.c)&0xFFFF)
			if !regGuardOK(mem, lo, hi) {
				pc = int(i.a)
				continue
			}

		case rOpLoad32U + rawDelta:
			r[i.a] = uint64(binary.LittleEndian.Uint32(mem.data[uint64(uint32(r[i.b]))+i.imm:]))
		case rOpLoad64 + rawDelta:
			r[i.a] = binary.LittleEndian.Uint64(mem.data[uint64(uint32(r[i.b]))+i.imm:])
		case rOpLoad8U + rawDelta:
			r[i.a] = uint64(mem.data[uint64(uint32(r[i.b]))+i.imm])
		case rOpLoad16U + rawDelta:
			r[i.a] = uint64(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[i.b]))+i.imm:]))
		case rOpLoad8S32 + rawDelta:
			r[i.a] = uint64(uint32(int32(int8(mem.data[uint64(uint32(r[i.b]))+i.imm]))))
		case rOpLoad16S32 + rawDelta:
			r[i.a] = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[i.b]))+i.imm:])))))
		case rOpLoad8S64 + rawDelta:
			r[i.a] = uint64(int64(int8(mem.data[uint64(uint32(r[i.b]))+i.imm])))
		case rOpLoad16S64 + rawDelta:
			r[i.a] = uint64(int64(int16(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[i.b]))+i.imm:]))))
		case rOpLoad32S64 + rawDelta:
			r[i.a] = uint64(int64(int32(binary.LittleEndian.Uint32(mem.data[uint64(uint32(r[i.b]))+i.imm:]))))
		case rOpStore8 + rawDelta:
			mem.data[uint64(uint32(r[i.a]))+i.imm] = byte(r[i.b])
		case rOpStore16 + rawDelta:
			binary.LittleEndian.PutUint16(mem.data[uint64(uint32(r[i.a]))+i.imm:], uint16(r[i.b]))
		case rOpStore32 + rawDelta:
			binary.LittleEndian.PutUint32(mem.data[uint64(uint32(r[i.a]))+i.imm:], uint32(r[i.b]))
		case rOpStore64 + rawDelta:
			binary.LittleEndian.PutUint64(mem.data[uint64(uint32(r[i.a]))+i.imm:], r[i.b])
		case rOpStore64Imm + rawDelta:
			binary.LittleEndian.PutUint64(mem.data[uint64(uint32(r[i.a]))+uint64(uint32(i.c)):], i.imm)
		case rOpLoadAff64 + rawDelta:
			addr := uint64(uint32(r[i.b])*uint32(i.imm>>32)+uint32(i.imm)) + uint64(uint32(i.c))
			r[i.a] = binary.LittleEndian.Uint64(mem.data[addr:])
		case rOpLoadAff32 + rawDelta:
			addr := uint64(uint32(r[i.b])*uint32(i.imm>>32)+uint32(i.imm)) + uint64(uint32(i.c))
			r[i.a] = uint64(binary.LittleEndian.Uint32(mem.data[addr:]))
		case rOpStoreAff64 + rawDelta:
			addr := uint64(uint32(r[i.a])*uint32(i.imm>>32)+uint32(i.imm)) + uint64(uint32(i.c))
			binary.LittleEndian.PutUint64(mem.data[addr:], r[i.b])

		// --- fused ALU ---
		case rOpI32AddImm:
			r[i.a] = uint64(uint32(r[i.b]) + uint32(i.imm))
		case rOpI32MulImm:
			r[i.a] = uint64(uint32(r[i.b]) * uint32(i.imm))
		case rOpI64AddImm:
			r[i.a] = r[i.b] + i.imm
		case rOpI32MulAdd:
			r[i.a] = uint64(uint32(r[i.b])*uint32(i.imm) + uint32(r[i.c]))
		case rOpI32MulAddII:
			r[i.a] = uint64(uint32(r[i.b])*uint32(i.imm>>32) + uint32(i.imm))
		case rOpF64MulImm:
			// c records which side the constant came from: float operand
			// order is observable via NaN payload propagation.
			if i.c != 0 {
				r[i.a] = pf64(f64(i.imm) * f64(r[i.b]))
			} else {
				r[i.a] = pf64(f64(r[i.b]) * f64(i.imm))
			}
		case rOpF64MulAdd:
			// The conversion forces the product rounding before the add
			// (no FMA contraction), exactly like opFusedF64MulAdd.
			prod := float64(f64(r[i.b]) * f64(r[i.c]))
			r[i.a] = pf64(f64(r[uint32(i.imm)]) + prod)

		// --- i32 compare ---
		case uint16(OpI32Eqz):
			r[i.a] = b2u(uint32(r[i.b]) == 0)
		case uint16(OpI32Eq):
			r[i.a] = b2u(uint32(r[i.b]) == uint32(r[i.c]))
		case uint16(OpI32Ne):
			r[i.a] = b2u(uint32(r[i.b]) != uint32(r[i.c]))
		case uint16(OpI32LtS):
			r[i.a] = b2u(int32(r[i.b]) < int32(r[i.c]))
		case uint16(OpI32LtU):
			r[i.a] = b2u(uint32(r[i.b]) < uint32(r[i.c]))
		case uint16(OpI32GtS):
			r[i.a] = b2u(int32(r[i.b]) > int32(r[i.c]))
		case uint16(OpI32GtU):
			r[i.a] = b2u(uint32(r[i.b]) > uint32(r[i.c]))
		case uint16(OpI32LeS):
			r[i.a] = b2u(int32(r[i.b]) <= int32(r[i.c]))
		case uint16(OpI32LeU):
			r[i.a] = b2u(uint32(r[i.b]) <= uint32(r[i.c]))
		case uint16(OpI32GeS):
			r[i.a] = b2u(int32(r[i.b]) >= int32(r[i.c]))
		case uint16(OpI32GeU):
			r[i.a] = b2u(uint32(r[i.b]) >= uint32(r[i.c]))

		// --- i64 compare ---
		case uint16(OpI64Eqz):
			r[i.a] = b2u(r[i.b] == 0)
		case uint16(OpI64Eq):
			r[i.a] = b2u(r[i.b] == r[i.c])
		case uint16(OpI64Ne):
			r[i.a] = b2u(r[i.b] != r[i.c])
		case uint16(OpI64LtS):
			r[i.a] = b2u(int64(r[i.b]) < int64(r[i.c]))
		case uint16(OpI64LtU):
			r[i.a] = b2u(r[i.b] < r[i.c])
		case uint16(OpI64GtS):
			r[i.a] = b2u(int64(r[i.b]) > int64(r[i.c]))
		case uint16(OpI64GtU):
			r[i.a] = b2u(r[i.b] > r[i.c])
		case uint16(OpI64LeS):
			r[i.a] = b2u(int64(r[i.b]) <= int64(r[i.c]))
		case uint16(OpI64LeU):
			r[i.a] = b2u(r[i.b] <= r[i.c])
		case uint16(OpI64GeS):
			r[i.a] = b2u(int64(r[i.b]) >= int64(r[i.c]))
		case uint16(OpI64GeU):
			r[i.a] = b2u(r[i.b] >= r[i.c])

		// --- float compare ---
		case uint16(OpF32Eq):
			r[i.a] = b2u(f32(r[i.b]) == f32(r[i.c]))
		case uint16(OpF32Ne):
			r[i.a] = b2u(f32(r[i.b]) != f32(r[i.c]))
		case uint16(OpF32Lt):
			r[i.a] = b2u(f32(r[i.b]) < f32(r[i.c]))
		case uint16(OpF32Gt):
			r[i.a] = b2u(f32(r[i.b]) > f32(r[i.c]))
		case uint16(OpF32Le):
			r[i.a] = b2u(f32(r[i.b]) <= f32(r[i.c]))
		case uint16(OpF32Ge):
			r[i.a] = b2u(f32(r[i.b]) >= f32(r[i.c]))
		case uint16(OpF64Eq):
			r[i.a] = b2u(f64(r[i.b]) == f64(r[i.c]))
		case uint16(OpF64Ne):
			r[i.a] = b2u(f64(r[i.b]) != f64(r[i.c]))
		case uint16(OpF64Lt):
			r[i.a] = b2u(f64(r[i.b]) < f64(r[i.c]))
		case uint16(OpF64Gt):
			r[i.a] = b2u(f64(r[i.b]) > f64(r[i.c]))
		case uint16(OpF64Le):
			r[i.a] = b2u(f64(r[i.b]) <= f64(r[i.c]))
		case uint16(OpF64Ge):
			r[i.a] = b2u(f64(r[i.b]) >= f64(r[i.c]))

		// --- i32 arithmetic ---
		case uint16(OpI32Clz):
			r[i.a] = uint64(bits.LeadingZeros32(uint32(r[i.b])))
		case uint16(OpI32Ctz):
			r[i.a] = uint64(bits.TrailingZeros32(uint32(r[i.b])))
		case uint16(OpI32Popcnt):
			r[i.a] = uint64(bits.OnesCount32(uint32(r[i.b])))
		case uint16(OpI32Add):
			r[i.a] = uint64(uint32(r[i.b]) + uint32(r[i.c]))
		case uint16(OpI32Sub):
			r[i.a] = uint64(uint32(r[i.b]) - uint32(r[i.c]))
		case uint16(OpI32Mul):
			r[i.a] = uint64(uint32(r[i.b]) * uint32(r[i.c]))
		case uint16(OpI32DivS):
			d := int32(r[i.c])
			n := int32(r[i.b])
			if d == 0 {
				trap(TrapDivZero, "i32.div_s")
			}
			if n == math.MinInt32 && d == -1 {
				trap(TrapIntOverflow, "i32.div_s")
			}
			r[i.a] = uint64(uint32(n / d))
		case uint16(OpI32DivU):
			d := uint32(r[i.c])
			if d == 0 {
				trap(TrapDivZero, "i32.div_u")
			}
			r[i.a] = uint64(uint32(r[i.b]) / d)
		case uint16(OpI32RemS):
			d := int32(r[i.c])
			n := int32(r[i.b])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_s")
			}
			if n == math.MinInt32 && d == -1 {
				r[i.a] = 0
			} else {
				r[i.a] = uint64(uint32(n % d))
			}
		case uint16(OpI32RemU):
			d := uint32(r[i.c])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_u")
			}
			r[i.a] = uint64(uint32(r[i.b]) % d)
		case uint16(OpI32And):
			r[i.a] = r[i.b] & r[i.c]
		case uint16(OpI32Or):
			r[i.a] = r[i.b] | r[i.c]
		case uint16(OpI32Xor):
			r[i.a] = r[i.b] ^ r[i.c]
		case uint16(OpI32Shl):
			r[i.a] = uint64(uint32(r[i.b]) << (uint32(r[i.c]) & 31))
		case uint16(OpI32ShrS):
			r[i.a] = uint64(uint32(int32(r[i.b]) >> (uint32(r[i.c]) & 31)))
		case uint16(OpI32ShrU):
			r[i.a] = uint64(uint32(r[i.b]) >> (uint32(r[i.c]) & 31))
		case uint16(OpI32Rotl):
			r[i.a] = uint64(bits.RotateLeft32(uint32(r[i.b]), int(uint32(r[i.c])&31)))
		case uint16(OpI32Rotr):
			r[i.a] = uint64(bits.RotateLeft32(uint32(r[i.b]), -int(uint32(r[i.c])&31)))

		// --- i64 arithmetic ---
		case uint16(OpI64Clz):
			r[i.a] = uint64(bits.LeadingZeros64(r[i.b]))
		case uint16(OpI64Ctz):
			r[i.a] = uint64(bits.TrailingZeros64(r[i.b]))
		case uint16(OpI64Popcnt):
			r[i.a] = uint64(bits.OnesCount64(r[i.b]))
		case uint16(OpI64Add):
			r[i.a] = r[i.b] + r[i.c]
		case uint16(OpI64Sub):
			r[i.a] = r[i.b] - r[i.c]
		case uint16(OpI64Mul):
			r[i.a] = r[i.b] * r[i.c]
		case uint16(OpI64DivS):
			d := int64(r[i.c])
			n := int64(r[i.b])
			if d == 0 {
				trap(TrapDivZero, "i64.div_s")
			}
			if n == math.MinInt64 && d == -1 {
				trap(TrapIntOverflow, "i64.div_s")
			}
			r[i.a] = uint64(n / d)
		case uint16(OpI64DivU):
			if r[i.c] == 0 {
				trap(TrapDivZero, "i64.div_u")
			}
			r[i.a] = r[i.b] / r[i.c]
		case uint16(OpI64RemS):
			d := int64(r[i.c])
			n := int64(r[i.b])
			if d == 0 {
				trap(TrapDivZero, "i64.rem_s")
			}
			if n == math.MinInt64 && d == -1 {
				r[i.a] = 0
			} else {
				r[i.a] = uint64(n % d)
			}
		case uint16(OpI64RemU):
			if r[i.c] == 0 {
				trap(TrapDivZero, "i64.rem_u")
			}
			r[i.a] = r[i.b] % r[i.c]
		case uint16(OpI64And):
			r[i.a] = r[i.b] & r[i.c]
		case uint16(OpI64Or):
			r[i.a] = r[i.b] | r[i.c]
		case uint16(OpI64Xor):
			r[i.a] = r[i.b] ^ r[i.c]
		case uint16(OpI64Shl):
			r[i.a] = r[i.b] << (r[i.c] & 63)
		case uint16(OpI64ShrS):
			r[i.a] = uint64(int64(r[i.b]) >> (r[i.c] & 63))
		case uint16(OpI64ShrU):
			r[i.a] = r[i.b] >> (r[i.c] & 63)
		case uint16(OpI64Rotl):
			r[i.a] = bits.RotateLeft64(r[i.b], int(r[i.c]&63))
		case uint16(OpI64Rotr):
			r[i.a] = bits.RotateLeft64(r[i.b], -int(r[i.c]&63))

		// --- f64 arithmetic (hot PolyBench arms first) ---
		case uint16(OpF64Add):
			r[i.a] = pf64(f64(r[i.b]) + f64(r[i.c]))
		case uint16(OpF64Sub):
			r[i.a] = pf64(f64(r[i.b]) - f64(r[i.c]))
		case uint16(OpF64Mul):
			r[i.a] = pf64(f64(r[i.b]) * f64(r[i.c]))
		case uint16(OpF64Div):
			r[i.a] = pf64(f64(r[i.b]) / f64(r[i.c]))
		case uint16(OpF64Min):
			r[i.a] = pf64(math.Min(f64(r[i.b]), f64(r[i.c])))
		case uint16(OpF64Max):
			r[i.a] = pf64(math.Max(f64(r[i.b]), f64(r[i.c])))
		case uint16(OpF64Copysign):
			r[i.a] = pf64(math.Copysign(f64(r[i.b]), f64(r[i.c])))
		case uint16(OpF64Abs):
			r[i.a] = r[i.b] &^ (1 << 63)
		case uint16(OpF64Neg):
			r[i.a] = r[i.b] ^ (1 << 63)
		case uint16(OpF64Ceil):
			r[i.a] = pf64(math.Ceil(f64(r[i.b])))
		case uint16(OpF64Floor):
			r[i.a] = pf64(math.Floor(f64(r[i.b])))
		case uint16(OpF64Trunc):
			r[i.a] = pf64(math.Trunc(f64(r[i.b])))
		case uint16(OpF64Nearest):
			r[i.a] = pf64(math.RoundToEven(f64(r[i.b])))
		case uint16(OpF64Sqrt):
			r[i.a] = pf64(math.Sqrt(f64(r[i.b])))

		// --- f32 arithmetic ---
		case uint16(OpF32Add):
			r[i.a] = pf32(f32(r[i.b]) + f32(r[i.c]))
		case uint16(OpF32Sub):
			r[i.a] = pf32(f32(r[i.b]) - f32(r[i.c]))
		case uint16(OpF32Mul):
			r[i.a] = pf32(f32(r[i.b]) * f32(r[i.c]))
		case uint16(OpF32Div):
			r[i.a] = pf32(f32(r[i.b]) / f32(r[i.c]))
		case uint16(OpF32Min):
			r[i.a] = pf32(float32(math.Min(float64(f32(r[i.b])), float64(f32(r[i.c])))))
		case uint16(OpF32Max):
			r[i.a] = pf32(float32(math.Max(float64(f32(r[i.b])), float64(f32(r[i.c])))))
		case uint16(OpF32Copysign):
			r[i.a] = pf32(float32(math.Copysign(float64(f32(r[i.b])), float64(f32(r[i.c])))))
		case uint16(OpF32Abs):
			r[i.a] = pf32(float32(math.Abs(float64(f32(r[i.b])))))
		case uint16(OpF32Neg):
			r[i.a] = r[i.b] ^ 0x80000000
		case uint16(OpF32Ceil):
			r[i.a] = pf32(float32(math.Ceil(float64(f32(r[i.b])))))
		case uint16(OpF32Floor):
			r[i.a] = pf32(float32(math.Floor(float64(f32(r[i.b])))))
		case uint16(OpF32Trunc):
			r[i.a] = pf32(float32(math.Trunc(float64(f32(r[i.b])))))
		case uint16(OpF32Nearest):
			r[i.a] = pf32(float32(math.RoundToEven(float64(f32(r[i.b])))))
		case uint16(OpF32Sqrt):
			r[i.a] = pf32(float32(math.Sqrt(float64(f32(r[i.b])))))

		// --- conversions ---
		case uint16(OpI32WrapI64):
			r[i.a] = uint64(uint32(r[i.b]))
		case uint16(OpI32TruncF32S):
			r[i.a] = uint64(uint32(truncS32(float64(f32(r[i.b])))))
		case uint16(OpI32TruncF32U):
			r[i.a] = uint64(truncU32(float64(f32(r[i.b]))))
		case uint16(OpI32TruncF64S):
			r[i.a] = uint64(uint32(truncS32(f64(r[i.b]))))
		case uint16(OpI32TruncF64U):
			r[i.a] = uint64(truncU32(f64(r[i.b])))
		case uint16(OpI64ExtendI32S):
			r[i.a] = uint64(int64(int32(r[i.b])))
		case uint16(OpI64ExtendI32U):
			r[i.a] = uint64(uint32(r[i.b]))
		case uint16(OpI64TruncF32S):
			r[i.a] = uint64(truncS64(float64(f32(r[i.b]))))
		case uint16(OpI64TruncF32U):
			r[i.a] = truncU64(float64(f32(r[i.b])))
		case uint16(OpI64TruncF64S):
			r[i.a] = uint64(truncS64(f64(r[i.b])))
		case uint16(OpI64TruncF64U):
			r[i.a] = truncU64(f64(r[i.b]))
		case uint16(OpF32ConvertI32S):
			r[i.a] = pf32(float32(int32(r[i.b])))
		case uint16(OpF32ConvertI32U):
			r[i.a] = pf32(float32(uint32(r[i.b])))
		case uint16(OpF32ConvertI64S):
			r[i.a] = pf32(float32(int64(r[i.b])))
		case uint16(OpF32ConvertI64U):
			r[i.a] = pf32(float32(r[i.b]))
		case uint16(OpF32DemoteF64):
			r[i.a] = pf32(float32(f64(r[i.b])))
		case uint16(OpF64ConvertI32S):
			r[i.a] = pf64(float64(int32(r[i.b])))
		case uint16(OpF64ConvertI32U):
			r[i.a] = pf64(float64(uint32(r[i.b])))
		case uint16(OpF64ConvertI64S):
			r[i.a] = pf64(float64(int64(r[i.b])))
		case uint16(OpF64ConvertI64U):
			r[i.a] = pf64(float64(r[i.b]))
		case uint16(OpF64PromoteF32):
			r[i.a] = pf64(float64(f32(r[i.b])))
		case uint16(OpI32ReinterpretF32), uint16(OpI64ReinterpretF64),
			uint16(OpF32ReinterpretI32), uint16(OpF64ReinterpretI64):
			r[i.a] = r[i.b]

		// --- sign extension ---
		case uint16(OpI32Extend8S):
			r[i.a] = uint64(uint32(int32(int8(r[i.b]))))
		case uint16(OpI32Extend16S):
			r[i.a] = uint64(uint32(int32(int16(r[i.b]))))
		case uint16(OpI64Extend8S):
			r[i.a] = uint64(int64(int8(r[i.b])))
		case uint16(OpI64Extend16S):
			r[i.a] = uint64(int64(int16(r[i.b])))
		case uint16(OpI64Extend32S):
			r[i.a] = uint64(int64(int32(r[i.b])))

		default:
			trap(TrapUnreachable, "bad register opcode 0x%x", i.op)
		}
		pc++
	}
}

// regGuardOK decides whether the raw window may run: the whole span
// [lo,hi) is in bounds, and every touch within it would provably be a
// no-op — no hook installed, or the span lies on one EPC-TLB page that
// is hot at the current paging generation. The guard never traps and
// never touches, so a failed guard leaves all counters untouched and the
// checked fallback produces the exact historical behaviour.
func regGuardOK(mem *Memory, lo, hi uint64) bool {
	if hi > uint64(len(mem.data)) {
		return false
	}
	if mem.touch == nil {
		return true
	}
	if mem.gen == nil {
		return false
	}
	p := lo >> tlbPageBits
	if (hi-1)>>tlbPageBits != p {
		return false
	}
	e := &mem.tlb[p&tlbMask]
	return e.tag == p+1 && e.gen == atomic.LoadUint64(mem.gen)
}
