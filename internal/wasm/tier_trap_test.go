package wasm

import (
	"errors"
	"testing"

	"twine/wasmgen"
)

// Trap parity: every tier must produce the same trap kind AND message
// (messages embed the faulting address or operation, so equality pins
// the trap site, the closest thing to a trap PC across code forms).
func trapAllEngines(t *testing.T, bytes []byte, args ...uint64) *Trap {
	t.Helper()
	mod, err := Decode(bytes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	var traps [3]*Trap
	for i, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister} {
		in, err := Instantiate(c, nil, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		_, err = in.Invoke("run", args...)
		if err == nil {
			t.Fatalf("%v: expected a trap", eng)
		}
		var tr *Trap
		if !errors.As(err, &tr) {
			t.Fatalf("%v: non-trap error %v", eng, err)
		}
		traps[i] = tr
	}
	for i := 1; i < 3; i++ {
		if traps[i].Kind != traps[0].Kind || traps[i].Msg != traps[0].Msg {
			t.Fatalf("trap divergence: interp={%v %q} other[%d]={%v %q}",
				traps[0].Kind, traps[0].Msg, i, traps[i].Kind, traps[i].Msg)
		}
	}
	return traps[0]
}

func TestTierTrapOOB(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.F64))
	// (p0*8 + 64) as an affine access — out of bounds for large p0, so
	// the register tier's affine load and the stack tiers' load must
	// report the identical resolved address range.
	f.LocalGet(0).I32Const(8).I32Mul().I32Const(64).I32Add().F64Load(0)
	f.End()
	m.Export("run", f)
	tr := trapAllEngines(t, m.Bytes(), 1<<20)
	if tr.Kind != TrapOOB {
		t.Fatalf("kind = %v, want OOB", tr.Kind)
	}
}

func TestTierTrapDivZero(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.LocalGet(0).LocalGet(1).I32DivS()
	f.End()
	m.Export("run", f)
	if tr := trapAllEngines(t, m.Bytes(), 7, 0); tr.Kind != TrapDivZero {
		t.Fatalf("kind = %v, want div-zero", tr.Kind)
	}
	// Overflow case: MinInt32 / -1.
	if tr := trapAllEngines(t, m.Bytes(), 0x80000000, 0xFFFFFFFF); tr.Kind != TrapIntOverflow {
		t.Fatalf("kind = %v, want overflow", tr.Kind)
	}
}

func TestTierTrapUnreachable(t *testing.T) {
	// Condition-dependent unreachable.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	g.LocalGet(0)
	g.If(wasmgen.BlockVoid)
	g.Unreachable()
	g.End()
	g.I32Const(9)
	g.End()
	m2.Export("run", g)
	if tr := trapAllEngines(t, m2.Bytes(), 1); tr.Kind != TrapUnreachable {
		t.Fatalf("kind = %v, want unreachable", tr.Kind)
	}
}

func TestTierTrapCallDepth(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	f.Call(f).End() // infinite recursion
	m.Export("run", f)
	if tr := trapAllEngines(t, m.Bytes()); tr.Kind != TrapCallDepth {
		t.Fatalf("kind = %v, want call-depth", tr.Kind)
	}
}

// TestTierTrapMidLoop traps after observable side effects: the store
// preceding the trapping iteration must be visible identically, pinning
// that the register tier's guards/fallbacks never reorder or elide
// accesses relative to a trap.
func TestTierTrapMidLoop(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	m.ExportMemory("memory")
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.F64))
	i := f.AddLocal(wasmgen.I32)
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(1 << 20).I32GeS().BrIf(1)
	// A[i] += 1.0 at p0-scaled stride: runs off the end eventually.
	f.LocalGet(i).LocalGet(0).I32Mul().I32Const(64).I32Add()
	f.LocalGet(i).LocalGet(0).I32Mul().I32Const(64).I32Add().F64Load(0)
	f.F64Const(1).F64Add()
	f.F64Store(0)
	f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.F64Const(0)
	f.End()
	m.Export("run", f)

	mod, err := Decode(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	var mems [3][]byte
	var traps [3]*Trap
	for ei, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister} {
		in, err := Instantiate(c, nil, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		_, err = in.Invoke("run", 4096)
		var tr *Trap
		if !errors.As(err, &tr) {
			t.Fatalf("%v: want trap, got %v", eng, err)
		}
		traps[ei] = tr
		b, _ := in.Memory().Bytes(0, PageSize)
		mems[ei] = append([]byte(nil), b...)
	}
	for i := 1; i < 3; i++ {
		if traps[i].Kind != traps[0].Kind || traps[i].Msg != traps[0].Msg {
			t.Fatalf("trap divergence: %v %q vs %v %q", traps[0].Kind, traps[0].Msg, traps[i].Kind, traps[i].Msg)
		}
		if string(mems[i]) != string(mems[0]) {
			t.Fatalf("memory state diverged before the trap (engine %d)", i)
		}
	}
}

// TestTierCSEPoppedDescriptor is the regression for the popped-descriptor
// clobber: the br_if condition CSE-aliases home(0) (the first add's
// result), while slot 0 holds an unmaterialised constant. Homing that
// constant must not overwrite the condition — materialisation now runs
// before the condition is popped, so the protection machinery re-homes
// it first.
func TestTierCSEPoppedDescriptor(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockI32)
	f.LocalGet(0).LocalGet(1).I32Add().Drop() // establishes CSE value in home(0)
	f.I32Const(5)                             // unmaterialised const at slot 0
	f.LocalGet(0).LocalGet(1).I32Add()        // CSE hit: condition aliases home(0)
	f.BrIf(0)                                 // carries the 5 when taken
	f.Drop()
	f.I32Const(7)
	f.End()
	f.End()
	m.Export("run", f)

	if got := runAllEngines(t, m.Bytes(), 0, 0); got != 7 {
		t.Fatalf("fallthrough = %d, want 7", got)
	}
	if got := runAllEngines(t, m.Bytes(), 1, 0); got != 5 {
		t.Fatalf("taken = %d, want 5", got)
	}
	if got := runAllEngines(t, m.Bytes(), 0, 3); got != 5 {
		t.Fatalf("taken = %d, want 5", got)
	}
}

// TestTierNaNOperandOrder pins the float determinism contract: every
// tier must agree bit-for-bit on non-NaN results and on NaN-ness, while
// NaN payload bits are nondeterministic across tiers (the wasm spec
// itself leaves them unspecified, and Go's register allocation decides
// hardware operand order per expression instance — the stack tiers
// share one set of arithmetic arms, the register tier has its own).
// Fusion still never swaps operand order where it controls it: the
// mul-add fusion only fires order-preserving and f64 mul-imm records
// which side its constant came from.
func TestTierNaNOperandOrder(t *testing.T) {
	build := func(f func(*wasmgen.Func)) []byte {
		m := wasmgen.NewModule()
		g := m.Func(wasmgen.Sig(wasmgen.I64, wasmgen.I64).Returns(wasmgen.I64))
		f(g)
		g.End()
		m.Export("run", g)
		return m.Bytes()
	}
	nan1 := uint64(0x7FF8000000000001) // quiet NaN, payload 1
	nan2 := uint64(0x7FF8000000000002) // quiet NaN, payload 2

	// prod-as-lhs add: (p0 * 1.0) + p1 — mul result is the LEFT operand.
	addMulLHS := build(func(g *wasmgen.Func) {
		g.LocalGet(0).F64ReinterpretI64()
		g.F64Const(1).F64Mul()
		g.LocalGet(1).F64ReinterpretI64()
		g.F64Add()
		g.I64ReinterpretF64()
	})
	// const-lhs mul: 1.0 * p0.
	mulConstLHS := build(func(g *wasmgen.Func) {
		g.F64Const(1)
		g.LocalGet(0).F64ReinterpretI64()
		g.F64Mul()
		g.I64ReinterpretF64()
	})
	for _, bin := range [][]byte{addMulLHS, mulConstLHS} {
		mod, err := Decode(bin)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		var got [3]uint64
		for i, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister} {
			in, err := Instantiate(c, nil, Config{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			out, err := in.Invoke("run", nan1, nan2)
			if err != nil {
				t.Fatal(err)
			}
			got[i] = out[0]
		}
		// The stack tiers share arms: exact equality.
		if got[0] != got[1] {
			t.Errorf("interp/aot diverge: %#x vs %#x", got[0], got[1])
		}
		// All tiers: the result must be a NaN (payload unspecified).
		for i, g := range got {
			if g&0x7FF0000000000000 != 0x7FF0000000000000 || g&0x000FFFFFFFFFFFFF == 0 {
				t.Errorf("engine %d produced a non-NaN %#x from NaN inputs", i, g)
			}
		}
	}
}

// TestTierAffineCSEVN is the regression for the affine-descriptor value
// number: an rdAff operand u32(i*m+A) must carry its own value number
// into LVN keys, not the index register's. With the collision,
// (i+k)+((i*8+16)+k) CSE-reused the earlier i+k for the second addend.
func TestTierAffineCSEVN(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.LocalGet(0).LocalGet(1).I32Add() // i+k, live in home(0)
	f.LocalGet(0).I32Const(8).I32Mul().I32Const(16).I32Add() // affine i*8+16
	f.LocalGet(1).I32Add() // must NOT CSE-match i+k
	f.I32Add()
	f.End()
	m.Export("run", f)
	// i=1, k=2: (1+2) + ((1*8+16)+2) = 3 + 26 = 29.
	if got := runAllEngines(t, m.Bytes(), 1, 2); got != 29 {
		t.Fatalf("got %d, want 29", got)
	}

	// Reverse poisoning direction: the affine sum computed first must not
	// be reused as a later genuine i+k.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	g.LocalGet(0).I32Const(8).I32Mul().I32Const(16).I32Add()
	g.LocalGet(1).I32Add()             // (i*8+16)+k
	g.LocalGet(0).LocalGet(1).I32Add() // genuine i+k
	g.I32Add()
	g.End()
	m2.Export("run", g)
	if got := runAllEngines(t, m2.Bytes(), 1, 2); got != 29 {
		t.Fatalf("reverse order: got %d, want 29", got)
	}
}

// TestTierCrossAliasedHomes is the regression for the materialisation
// cycle: CSE reuse can leave two slots living in each other's canonical
// homes (compute two expressions, drop both, recompute them in swapped
// slots), which used to send homeSlot/prepWrite into unbounded mutual
// recursion — a fatal stack overflow at translation time. The translator
// now detects the cycle and bails the function to the fused stack form.
func TestTierCrossAliasedHomes(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockVoid)
	f.LocalGet(0).LocalGet(1).I32Sub() // E1 computed into home(0)
	f.LocalGet(0).LocalGet(1).I32Add() // E2 computed into home(1)
	f.Drop().Drop()
	f.LocalGet(0).LocalGet(1).I32Add() // CSE hit: slot 0 aliases home(1)
	f.LocalGet(0).LocalGet(1).I32Sub() // CSE hit: slot 1 aliases home(0)
	f.LocalGet(0).BrIf(0)              // materializeAll hits the cycle
	f.Drop().Drop()
	f.End()
	f.I32Const(7)
	f.End()
	m.Export("run", f)
	for _, args := range [][]uint64{{10, 3}, {0, 0}} {
		if got := runAllEngines(t, m.Bytes(), args...); got != 7 {
			t.Fatalf("args %v: got %d, want 7", args, got)
		}
	}
}

// TestTierTeeSetNoopDSE is the regression for the no-op local.set: with
// `local.tee x; local.set x`, the set pops a descriptor already living
// in x and emits nothing — it used to run the overwrite bookkeeping
// anyway, marking the tee's copy (the local's only definition) dead.
func TestTierTeeSetNoopDSE(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	x := f.AddLocal(wasmgen.I32)
	f.LocalGet(0).LocalTee(x).LocalSet(x)
	f.LocalGet(x)
	f.End()
	m.Export("run", f)
	if got := runAllEngines(t, m.Bytes(), 42); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}

	// A genuine later overwrite must still DSE the tee's copy without
	// changing the result.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	y := g.AddLocal(wasmgen.I32)
	g.LocalGet(0).LocalTee(y).LocalSet(y)
	g.I32Const(5).LocalSet(y)
	g.LocalGet(y)
	g.End()
	m2.Export("run", g)
	if got := runAllEngines(t, m2.Bytes(), 42); got != 5 {
		t.Fatalf("overwrite: got %d, want 5", got)
	}
}
