package wasm

import (
	"errors"
	"fmt"
	"testing"

	"twine/wasmgen"
)

// Trap parity: every tier must produce the same trap kind AND message
// (messages embed the faulting address or operation, so equality pins
// the trap site, the closest thing to a trap PC across code forms).
func trapAllEngines(t *testing.T, bytes []byte, args ...uint64) *Trap {
	t.Helper()
	mod, err := Decode(bytes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	var traps [4]*Trap
	for i, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock} {
		in, err := Instantiate(c, nil, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		_, err = in.Invoke("run", args...)
		if err == nil {
			t.Fatalf("%v: expected a trap", eng)
		}
		var tr *Trap
		if !errors.As(err, &tr) {
			t.Fatalf("%v: non-trap error %v", eng, err)
		}
		traps[i] = tr
	}
	for i := 1; i < 4; i++ {
		if traps[i].Kind != traps[0].Kind || traps[i].Msg != traps[0].Msg {
			t.Fatalf("trap divergence: interp={%v %q} other[%d]={%v %q}",
				traps[0].Kind, traps[0].Msg, i, traps[i].Kind, traps[i].Msg)
		}
	}
	return traps[0]
}

func TestTierTrapOOB(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.F64))
	// (p0*8 + 64) as an affine access — out of bounds for large p0, so
	// the register tier's affine load and the stack tiers' load must
	// report the identical resolved address range.
	f.LocalGet(0).I32Const(8).I32Mul().I32Const(64).I32Add().F64Load(0)
	f.End()
	m.Export("run", f)
	tr := trapAllEngines(t, m.Bytes(), 1<<20)
	if tr.Kind != TrapOOB {
		t.Fatalf("kind = %v, want OOB", tr.Kind)
	}
}

func TestTierTrapDivZero(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.LocalGet(0).LocalGet(1).I32DivS()
	f.End()
	m.Export("run", f)
	if tr := trapAllEngines(t, m.Bytes(), 7, 0); tr.Kind != TrapDivZero {
		t.Fatalf("kind = %v, want div-zero", tr.Kind)
	}
	// Overflow case: MinInt32 / -1.
	if tr := trapAllEngines(t, m.Bytes(), 0x80000000, 0xFFFFFFFF); tr.Kind != TrapIntOverflow {
		t.Fatalf("kind = %v, want overflow", tr.Kind)
	}
}

func TestTierTrapUnreachable(t *testing.T) {
	// Condition-dependent unreachable.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	g.LocalGet(0)
	g.If(wasmgen.BlockVoid)
	g.Unreachable()
	g.End()
	g.I32Const(9)
	g.End()
	m2.Export("run", g)
	if tr := trapAllEngines(t, m2.Bytes(), 1); tr.Kind != TrapUnreachable {
		t.Fatalf("kind = %v, want unreachable", tr.Kind)
	}
}

func TestTierTrapCallDepth(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	f.Call(f).End() // infinite recursion
	m.Export("run", f)
	if tr := trapAllEngines(t, m.Bytes()); tr.Kind != TrapCallDepth {
		t.Fatalf("kind = %v, want call-depth", tr.Kind)
	}
}

// TestTierTrapMidLoop traps after observable side effects: the store
// preceding the trapping iteration must be visible identically, pinning
// that the register tier's guards/fallbacks never reorder or elide
// accesses relative to a trap.
func TestTierTrapMidLoop(t *testing.T) {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	m.ExportMemory("memory")
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.F64))
	i := f.AddLocal(wasmgen.I32)
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(1 << 20).I32GeS().BrIf(1)
	// A[i] += 1.0 at p0-scaled stride: runs off the end eventually.
	f.LocalGet(i).LocalGet(0).I32Mul().I32Const(64).I32Add()
	f.LocalGet(i).LocalGet(0).I32Mul().I32Const(64).I32Add().F64Load(0)
	f.F64Const(1).F64Add()
	f.F64Store(0)
	f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.F64Const(0)
	f.End()
	m.Export("run", f)

	mod, err := Decode(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	var mems [4][]byte
	var traps [4]*Trap
	for ei, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock} {
		in, err := Instantiate(c, nil, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		_, err = in.Invoke("run", 4096)
		var tr *Trap
		if !errors.As(err, &tr) {
			t.Fatalf("%v: want trap, got %v", eng, err)
		}
		traps[ei] = tr
		b, _ := in.Memory().Bytes(0, PageSize)
		mems[ei] = append([]byte(nil), b...)
	}
	for i := 1; i < 4; i++ {
		if traps[i].Kind != traps[0].Kind || traps[i].Msg != traps[0].Msg {
			t.Fatalf("trap divergence: %v %q vs %v %q", traps[0].Kind, traps[0].Msg, traps[i].Kind, traps[i].Msg)
		}
		if string(mems[i]) != string(mems[0]) {
			t.Fatalf("memory state diverged before the trap (engine %d)", i)
		}
	}
}

// TestTierCSEPoppedDescriptor is the regression for the popped-descriptor
// clobber: the br_if condition CSE-aliases home(0) (the first add's
// result), while slot 0 holds an unmaterialised constant. Homing that
// constant must not overwrite the condition — materialisation now runs
// before the condition is popped, so the protection machinery re-homes
// it first.
func TestTierCSEPoppedDescriptor(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockI32)
	f.LocalGet(0).LocalGet(1).I32Add().Drop() // establishes CSE value in home(0)
	f.I32Const(5)                             // unmaterialised const at slot 0
	f.LocalGet(0).LocalGet(1).I32Add()        // CSE hit: condition aliases home(0)
	f.BrIf(0)                                 // carries the 5 when taken
	f.Drop()
	f.I32Const(7)
	f.End()
	f.End()
	m.Export("run", f)

	if got := runAllEngines(t, m.Bytes(), 0, 0); got != 7 {
		t.Fatalf("fallthrough = %d, want 7", got)
	}
	if got := runAllEngines(t, m.Bytes(), 1, 0); got != 5 {
		t.Fatalf("taken = %d, want 5", got)
	}
	if got := runAllEngines(t, m.Bytes(), 0, 3); got != 5 {
		t.Fatalf("taken = %d, want 5", got)
	}
}

// TestTierNaNOperandOrder pins the float determinism contract: every
// tier must agree bit-for-bit on non-NaN results and on NaN-ness, while
// NaN payload bits are nondeterministic across tiers (the wasm spec
// itself leaves them unspecified, and Go's register allocation decides
// hardware operand order per expression instance — the stack tiers
// share one set of arithmetic arms, the register tier has its own).
// Fusion still never swaps operand order where it controls it: the
// mul-add fusion only fires order-preserving and f64 mul-imm records
// which side its constant came from.
func TestTierNaNOperandOrder(t *testing.T) {
	build := func(f func(*wasmgen.Func)) []byte {
		m := wasmgen.NewModule()
		g := m.Func(wasmgen.Sig(wasmgen.I64, wasmgen.I64).Returns(wasmgen.I64))
		f(g)
		g.End()
		m.Export("run", g)
		return m.Bytes()
	}
	nan1 := uint64(0x7FF8000000000001) // quiet NaN, payload 1
	nan2 := uint64(0x7FF8000000000002) // quiet NaN, payload 2

	// prod-as-lhs add: (p0 * 1.0) + p1 — mul result is the LEFT operand.
	addMulLHS := build(func(g *wasmgen.Func) {
		g.LocalGet(0).F64ReinterpretI64()
		g.F64Const(1).F64Mul()
		g.LocalGet(1).F64ReinterpretI64()
		g.F64Add()
		g.I64ReinterpretF64()
	})
	// const-lhs mul: 1.0 * p0.
	mulConstLHS := build(func(g *wasmgen.Func) {
		g.F64Const(1)
		g.LocalGet(0).F64ReinterpretI64()
		g.F64Mul()
		g.I64ReinterpretF64()
	})
	for _, bin := range [][]byte{addMulLHS, mulConstLHS} {
		mod, err := Decode(bin)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		var got [4]uint64
		for i, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock} {
			in, err := Instantiate(c, nil, Config{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			out, err := in.Invoke("run", nan1, nan2)
			if err != nil {
				t.Fatal(err)
			}
			got[i] = out[0]
		}
		// The stack tiers share arms: exact equality.
		if got[0] != got[1] {
			t.Errorf("interp/aot diverge: %#x vs %#x", got[0], got[1])
		}
		// All tiers: the result must be a NaN (payload unspecified).
		for i, g := range got {
			if g&0x7FF0000000000000 != 0x7FF0000000000000 || g&0x000FFFFFFFFFFFFF == 0 {
				t.Errorf("engine %d produced a non-NaN %#x from NaN inputs", i, g)
			}
		}
	}
}

// TestTierAffineCSEVN is the regression for the affine-descriptor value
// number: an rdAff operand u32(i*m+A) must carry its own value number
// into LVN keys, not the index register's. With the collision,
// (i+k)+((i*8+16)+k) CSE-reused the earlier i+k for the second addend.
func TestTierAffineCSEVN(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.LocalGet(0).LocalGet(1).I32Add()                       // i+k, live in home(0)
	f.LocalGet(0).I32Const(8).I32Mul().I32Const(16).I32Add() // affine i*8+16
	f.LocalGet(1).I32Add()                                   // must NOT CSE-match i+k
	f.I32Add()
	f.End()
	m.Export("run", f)
	// i=1, k=2: (1+2) + ((1*8+16)+2) = 3 + 26 = 29.
	if got := runAllEngines(t, m.Bytes(), 1, 2); got != 29 {
		t.Fatalf("got %d, want 29", got)
	}

	// Reverse poisoning direction: the affine sum computed first must not
	// be reused as a later genuine i+k.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	g.LocalGet(0).I32Const(8).I32Mul().I32Const(16).I32Add()
	g.LocalGet(1).I32Add()             // (i*8+16)+k
	g.LocalGet(0).LocalGet(1).I32Add() // genuine i+k
	g.I32Add()
	g.End()
	m2.Export("run", g)
	if got := runAllEngines(t, m2.Bytes(), 1, 2); got != 29 {
		t.Fatalf("reverse order: got %d, want 29", got)
	}
}

// TestTierCrossAliasedHomes is the regression for the materialisation
// cycle: CSE reuse can leave two slots living in each other's canonical
// homes (compute two expressions, drop both, recompute them in swapped
// slots), which used to send homeSlot/prepWrite into unbounded mutual
// recursion — a fatal stack overflow at translation time. The translator
// now detects the cycle and bails the function to the fused stack form.
func TestTierCrossAliasedHomes(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockVoid)
	f.LocalGet(0).LocalGet(1).I32Sub() // E1 computed into home(0)
	f.LocalGet(0).LocalGet(1).I32Add() // E2 computed into home(1)
	f.Drop().Drop()
	f.LocalGet(0).LocalGet(1).I32Add() // CSE hit: slot 0 aliases home(1)
	f.LocalGet(0).LocalGet(1).I32Sub() // CSE hit: slot 1 aliases home(0)
	f.LocalGet(0).BrIf(0)              // materializeAll hits the cycle
	f.Drop().Drop()
	f.End()
	f.I32Const(7)
	f.End()
	m.Export("run", f)
	for _, args := range [][]uint64{{10, 3}, {0, 0}} {
		if got := runAllEngines(t, m.Bytes(), args...); got != 7 {
			t.Fatalf("args %v: got %d, want 7", args, got)
		}
	}
}

// TestTierTeeSetNoopDSE is the regression for the no-op local.set: with
// `local.tee x; local.set x`, the set pops a descriptor already living
// in x and emits nothing — it used to run the overwrite bookkeeping
// anyway, marking the tee's copy (the local's only definition) dead.
func TestTierTeeSetNoopDSE(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	x := f.AddLocal(wasmgen.I32)
	f.LocalGet(0).LocalTee(x).LocalSet(x)
	f.LocalGet(x)
	f.End()
	m.Export("run", f)
	if got := runAllEngines(t, m.Bytes(), 42); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}

	// A genuine later overwrite must still DSE the tee's copy without
	// changing the result.
	m2 := wasmgen.NewModule()
	g := m2.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	y := g.AddLocal(wasmgen.I32)
	g.LocalGet(0).LocalTee(y).LocalSet(y)
	g.I32Const(5).LocalSet(y)
	g.LocalGet(y)
	g.End()
	m2.Export("run", g)
	if got := runAllEngines(t, m2.Bytes(), 42); got != 5 {
		t.Fatalf("overwrite: got %d, want 5", got)
	}
}

// TestSuperTrapParityAllKinds walks every TrapKind in trap.go through
// all four engines and requires identical kind, message and exit code.
// Trapping sites sit inside counted self-loops where possible, so the
// superblock tier reaches them through its traces (idiom checked
// fallback or step runner) rather than through untraced code.
func TestSuperTrapParityAllKinds(t *testing.T) {
	// loopBody wraps a body in the canonical counted loop over local 0.
	loopMod := func(n int32, mem bool, build func(f *wasmgen.Func, i uint32)) []byte {
		m := wasmgen.NewModule()
		if mem {
			m.Memory(1, 1)
		}
		f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
		i := f.AddLocal(wasmgen.I32)
		acc := f.AddLocal(wasmgen.I64)
		f.I32Const(0).LocalSet(i)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(i).I32Const(n).I32GeS().BrIf(1)
		build(f, i)
		f.LocalGet(acc).I64Add().LocalSet(acc)
		f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(acc)
		f.End()
		m.Export("run", f)
		return m.Bytes()
	}

	failImports := NewImportObject()
	failImports.AddFunc(HostFunc{
		Module: "env", Name: "fail",
		Type: FuncType{Params: []ValueType{I32}, Results: []ValueType{I64}},
		Fn: func(in *Instance, args []uint64) ([]uint64, error) {
			if args[0] >= 3 {
				return nil, fmt.Errorf("boom at %d", args[0])
			}
			return in.Ret1(args[0]), nil
		},
	})
	exitImports := NewImportObject()
	exitImports.AddFunc(HostFunc{
		Module: "env", Name: "exit",
		Type: FuncType{Params: []ValueType{I32}, Results: []ValueType{I64}},
		Fn: func(in *Instance, args []uint64) ([]uint64, error) {
			if args[0] >= 2 {
				return nil, ExitError{Code: uint32(args[0])}
			}
			return in.Ret1(0), nil
		},
	})

	cases := []struct {
		name    string
		kind    TrapKind
		bytes   []byte
		imports *ImportObject
		cfg     func(*Config)
	}{
		{name: "unreachable", kind: TrapUnreachable, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.LocalGet(i).I32Const(5).I32Eq()
			f.If(wasmgen.BlockVoid)
			f.Unreachable()
			f.End()
			f.LocalGet(i).I64ExtendI32S()
		})},
		{name: "oob-load", kind: TrapOOB, bytes: loopMod(1<<17, true, func(f *wasmgen.Func, i uint32) {
			f.LocalGet(i).I32Const(8).I32Mul().I32Const(64).I32Add()
			f.F64Load(0)
			f.I64TruncF64S()
		})},
		{name: "oob-store", kind: TrapOOB, bytes: loopMod(1<<17, true, func(f *wasmgen.Func, i uint32) {
			f.LocalGet(i).I32Const(8).I32Mul()
			f.F64Const(1.5)
			f.F64Store(0)
			f.I64Const(1)
		})},
		{name: "div-zero-i32", kind: TrapDivZero, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.I32Const(100)
			f.I32Const(3).LocalGet(i).I32Sub()
			f.I32DivS()
			f.I64ExtendI32S()
		})},
		{name: "rem-zero-i64", kind: TrapDivZero, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.I64Const(100)
			f.I64Const(4)
			f.LocalGet(i).I64ExtendI32S().I64Sub()
			f.I64RemU()
		})},
		{name: "int-overflow", kind: TrapIntOverflow, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.I32Const(-0x80000000)
			f.I32Const(3).LocalGet(i).I32Sub().I32Const(-1).I32Or()
			f.I32DivS() // hits MinInt32 / -1 once i reaches 4
			f.I64ExtendI32S()
		})},
		{name: "trunc-overflow", kind: TrapIntOverflow, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.LocalGet(i).F64ConvertI32S()
			f.F64Const(1e300).F64Mul() // out of i32 range once i > 0
			f.I32TruncF64S()
			f.I64ExtendI32S()
		})},
		{name: "bad-conversion", kind: TrapBadConversion, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.I32Const(3).LocalGet(i).I32Sub().F64ConvertI32S()
			f.F64Sqrt() // NaN once i > 3
			f.I32TruncF64S()
			f.I64ExtendI32S()
		})},
		{name: "stack-overflow", kind: TrapStackOverflow, bytes: loopMod(8, false, func(f *wasmgen.Func, i uint32) {
			f.LocalGet(i).I64ExtendI32S()
		}), cfg: func(c *Config) { c.StackSlots = 2 }},
		{name: "call-depth", kind: TrapCallDepth, bytes: func() []byte {
			m := wasmgen.NewModule()
			f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			f.Call(f).End()
			m.Export("run", f)
			return m.Bytes()
		}()},
		{name: "undefined-elem", kind: TrapUndefinedElem, bytes: func() []byte {
			m := wasmgen.NewModule()
			m.Table(4)
			g := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			g.I64Const(1).End()
			m.Elem(0, g)
			f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			f.I32Const(2).CallIndirect(wasmgen.Sig().Returns(wasmgen.I64)).End()
			m.Export("run", f)
			return m.Bytes()
		}()},
		{name: "indirect-type", kind: TrapIndirectType, bytes: func() []byte {
			m := wasmgen.NewModule()
			m.Table(4)
			g := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
			g.LocalGet(0).End()
			m.Elem(0, g)
			f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			f.I32Const(0).CallIndirect(wasmgen.Sig().Returns(wasmgen.I64)).End()
			m.Export("run", f)
			return m.Bytes()
		}()},
		{name: "host-error", kind: TrapHostError, imports: failImports, bytes: func() []byte {
			m := wasmgen.NewModule()
			fail := m.ImportFunc("env", "fail", wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I64))
			_ = fail
			f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			i := f.AddLocal(wasmgen.I32)
			acc := f.AddLocal(wasmgen.I64)
			f.I32Const(0).LocalSet(i)
			f.Block(wasmgen.BlockVoid)
			f.Loop(wasmgen.BlockVoid)
			f.LocalGet(i).I32Const(8).I32GeS().BrIf(1)
			f.LocalGet(i).Call(fail)
			f.LocalGet(acc).I64Add().LocalSet(acc)
			f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
			f.Br(0)
			f.End()
			f.End()
			f.LocalGet(acc)
			f.End()
			m.Export("run", f)
			return m.Bytes()
		}()},
		{name: "exit", kind: TrapExit, imports: exitImports, bytes: func() []byte {
			m := wasmgen.NewModule()
			exit := m.ImportFunc("env", "exit", wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I64))
			f := m.Func(wasmgen.Sig().Returns(wasmgen.I64))
			i := f.AddLocal(wasmgen.I32)
			f.I32Const(0).LocalSet(i)
			f.Block(wasmgen.BlockVoid)
			f.Loop(wasmgen.BlockVoid)
			f.LocalGet(i).I32Const(8).I32GeS().BrIf(1)
			f.LocalGet(i).Call(exit).Drop()
			f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
			f.Br(0)
			f.End()
			f.End()
			f.I64Const(0)
			f.End()
			m.Export("run", f)
			return m.Bytes()
		}()},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, err := Decode(tc.bytes)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(mod)
			if err != nil {
				t.Fatal(err)
			}
			var traps [4]*Trap
			for ei, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock} {
				cfg := Config{Engine: eng}
				if tc.cfg != nil {
					tc.cfg(&cfg)
				}
				in, err := Instantiate(c, tc.imports, cfg)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				_, err = in.Invoke("run")
				if err == nil {
					t.Fatalf("%v: expected a %v trap", eng, tc.kind)
				}
				var tr *Trap
				if !errors.As(err, &tr) {
					t.Fatalf("%v: non-trap error %v", eng, err)
				}
				traps[ei] = tr
			}
			if traps[0].Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", traps[0].Kind, tc.kind)
			}
			for i := 1; i < 4; i++ {
				if traps[i].Kind != traps[0].Kind || traps[i].Msg != traps[0].Msg || traps[i].Code != traps[0].Code {
					t.Fatalf("trap divergence: interp={%v %q code=%d} engine[%d]={%v %q code=%d}",
						traps[0].Kind, traps[0].Msg, traps[0].Code,
						i, traps[i].Kind, traps[i].Msg, traps[i].Code)
				}
			}
		})
	}
}
