package wasm

import (
	"math"
)

// runFloatOrFused handles the float arithmetic, conversion and fused
// opcodes that do not fit in the main dispatch switch. It returns the new
// stack pointer. pc-relative control flow never happens here except in the
// fused compare-and-branch, which is why that one op is inlined back in
// runBody (see the opFusedCmpBr case there).
func (in *Instance) runFloatOrFused(fn *compiledFunc, i *ins, stack []uint64, bp, sp int) int {
	switch i.op {

	// --- f32 arithmetic ---
	case uint16(OpF32Abs):
		stack[sp-1] = pf32(float32(math.Abs(float64(f32(stack[sp-1])))))
	case uint16(OpF32Neg):
		stack[sp-1] ^= 0x80000000
	case uint16(OpF32Ceil):
		stack[sp-1] = pf32(float32(math.Ceil(float64(f32(stack[sp-1])))))
	case uint16(OpF32Floor):
		stack[sp-1] = pf32(float32(math.Floor(float64(f32(stack[sp-1])))))
	case uint16(OpF32Trunc):
		stack[sp-1] = pf32(float32(math.Trunc(float64(f32(stack[sp-1])))))
	case uint16(OpF32Nearest):
		stack[sp-1] = pf32(float32(math.RoundToEven(float64(f32(stack[sp-1])))))
	case uint16(OpF32Sqrt):
		stack[sp-1] = pf32(float32(math.Sqrt(float64(f32(stack[sp-1])))))
	case uint16(OpF32Add):
		sp--
		stack[sp-1] = pf32(f32(stack[sp-1]) + f32(stack[sp]))
	case uint16(OpF32Sub):
		sp--
		stack[sp-1] = pf32(f32(stack[sp-1]) - f32(stack[sp]))
	case uint16(OpF32Mul):
		sp--
		stack[sp-1] = pf32(f32(stack[sp-1]) * f32(stack[sp]))
	case uint16(OpF32Div):
		sp--
		stack[sp-1] = pf32(f32(stack[sp-1]) / f32(stack[sp]))
	case uint16(OpF32Min):
		sp--
		stack[sp-1] = pf32(float32(math.Min(float64(f32(stack[sp-1])), float64(f32(stack[sp])))))
	case uint16(OpF32Max):
		sp--
		stack[sp-1] = pf32(float32(math.Max(float64(f32(stack[sp-1])), float64(f32(stack[sp])))))
	case uint16(OpF32Copysign):
		sp--
		stack[sp-1] = pf32(float32(math.Copysign(float64(f32(stack[sp-1])), float64(f32(stack[sp])))))

	// --- f64 arithmetic ---
	case uint16(OpF64Abs):
		stack[sp-1] &^= 1 << 63
	case uint16(OpF64Neg):
		stack[sp-1] ^= 1 << 63
	case uint16(OpF64Ceil):
		stack[sp-1] = pf64(math.Ceil(f64(stack[sp-1])))
	case uint16(OpF64Floor):
		stack[sp-1] = pf64(math.Floor(f64(stack[sp-1])))
	case uint16(OpF64Trunc):
		stack[sp-1] = pf64(math.Trunc(f64(stack[sp-1])))
	case uint16(OpF64Nearest):
		stack[sp-1] = pf64(math.RoundToEven(f64(stack[sp-1])))
	case uint16(OpF64Sqrt):
		stack[sp-1] = pf64(math.Sqrt(f64(stack[sp-1])))
	// OpF64Add/Sub/Mul/Div live in runBody's main switch: they are the
	// hottest opcodes of the PolyBench kernels and a second dispatch
	// would cost more than the ops themselves.
	case uint16(OpF64Min):
		sp--
		stack[sp-1] = pf64(math.Min(f64(stack[sp-1]), f64(stack[sp])))
	case uint16(OpF64Max):
		sp--
		stack[sp-1] = pf64(math.Max(f64(stack[sp-1]), f64(stack[sp])))
	case uint16(OpF64Copysign):
		sp--
		stack[sp-1] = pf64(math.Copysign(f64(stack[sp-1]), f64(stack[sp])))

	// --- conversions ---
	case uint16(OpI32WrapI64):
		stack[sp-1] = uint64(uint32(stack[sp-1]))
	case uint16(OpI32TruncF32S):
		stack[sp-1] = uint64(uint32(truncS32(float64(f32(stack[sp-1])))))
	case uint16(OpI32TruncF32U):
		stack[sp-1] = uint64(truncU32(float64(f32(stack[sp-1]))))
	case uint16(OpI32TruncF64S):
		stack[sp-1] = uint64(uint32(truncS32(f64(stack[sp-1]))))
	case uint16(OpI32TruncF64U):
		stack[sp-1] = uint64(truncU32(f64(stack[sp-1])))
	case uint16(OpI64ExtendI32S):
		stack[sp-1] = uint64(int64(int32(stack[sp-1])))
	case uint16(OpI64ExtendI32U):
		stack[sp-1] = uint64(uint32(stack[sp-1]))
	case uint16(OpI64TruncF32S):
		stack[sp-1] = uint64(truncS64(float64(f32(stack[sp-1]))))
	case uint16(OpI64TruncF32U):
		stack[sp-1] = truncU64(float64(f32(stack[sp-1])))
	case uint16(OpI64TruncF64S):
		stack[sp-1] = uint64(truncS64(f64(stack[sp-1])))
	case uint16(OpI64TruncF64U):
		stack[sp-1] = truncU64(f64(stack[sp-1]))
	case uint16(OpF32ConvertI32S):
		stack[sp-1] = pf32(float32(int32(stack[sp-1])))
	case uint16(OpF32ConvertI32U):
		stack[sp-1] = pf32(float32(uint32(stack[sp-1])))
	case uint16(OpF32ConvertI64S):
		stack[sp-1] = pf32(float32(int64(stack[sp-1])))
	case uint16(OpF32ConvertI64U):
		stack[sp-1] = pf32(float32(stack[sp-1]))
	case uint16(OpF32DemoteF64):
		stack[sp-1] = pf32(float32(f64(stack[sp-1])))
	case uint16(OpF64ConvertI32S):
		stack[sp-1] = pf64(float64(int32(stack[sp-1])))
	case uint16(OpF64ConvertI32U):
		stack[sp-1] = pf64(float64(uint32(stack[sp-1])))
	case uint16(OpF64ConvertI64S):
		stack[sp-1] = pf64(float64(int64(stack[sp-1])))
	case uint16(OpF64ConvertI64U):
		stack[sp-1] = pf64(float64(stack[sp-1]))
	case uint16(OpF64PromoteF32):
		stack[sp-1] = pf64(float64(f32(stack[sp-1])))
	case uint16(OpI32ReinterpretF32), uint16(OpI64ReinterpretF64),
		uint16(OpF32ReinterpretI32), uint16(OpF64ReinterpretI64):
		// Bit patterns are already the stored representation.

	// --- sign extension ---
	case uint16(OpI32Extend8S):
		stack[sp-1] = uint64(uint32(int32(int8(stack[sp-1]))))
	case uint16(OpI32Extend16S):
		stack[sp-1] = uint64(uint32(int32(int16(stack[sp-1]))))
	case uint16(OpI64Extend8S):
		stack[sp-1] = uint64(int64(int8(stack[sp-1])))
	case uint16(OpI64Extend16S):
		stack[sp-1] = uint64(int64(int16(stack[sp-1])))
	case uint16(OpI64Extend32S):
		stack[sp-1] = uint64(int64(int32(stack[sp-1])))

	// --- fused superinstructions (AoT engine) ---
	case opFusedLocalGet2:
		stack[sp] = stack[bp+int(i.a)]
		stack[sp+1] = stack[bp+int(i.b)]
		sp += 2
	case opFusedLocalGetC:
		stack[sp] = stack[bp+int(i.a)]
		stack[sp+1] = i.imm
		sp += 2
	case opFusedIncrLocal:
		stack[bp+int(i.a)] = uint64(uint32(stack[bp+int(i.a)]) + uint32(i.imm))
	case opFusedI32AddConst:
		stack[sp-1] = uint64(uint32(stack[sp-1]) + uint32(i.imm))
	case opFusedI64AddConst:
		stack[sp-1] = stack[sp-1] + i.imm
	// The load/store superinstructions (opFusedScaleBaseF64Load and
	// friends) are dispatched in runBody's main switch next to the plain
	// loads and stores they replace.

	default:
		trap(TrapUnreachable, "bad opcode 0x%x", i.op)
	}
	return sp
}

// Saturating checks per spec: trunc traps on NaN and on results outside
// the target range.
func truncS32(f float64) int32 {
	if math.IsNaN(f) {
		trap(TrapBadConversion, "NaN")
	}
	t := math.Trunc(f)
	if t < -2147483648 || t > 2147483647 {
		trap(TrapIntOverflow, "i32.trunc of %g", f)
	}
	return int32(t)
}

func truncU32(f float64) uint32 {
	if math.IsNaN(f) {
		trap(TrapBadConversion, "NaN")
	}
	t := math.Trunc(f)
	if t < 0 || t > 4294967295 {
		trap(TrapIntOverflow, "u32.trunc of %g", f)
	}
	return uint32(t)
}

func truncS64(f float64) int64 {
	if math.IsNaN(f) {
		trap(TrapBadConversion, "NaN")
	}
	t := math.Trunc(f)
	if t < -9223372036854775808 || t >= 9223372036854775808 {
		trap(TrapIntOverflow, "i64.trunc of %g", f)
	}
	return int64(t)
}

func truncU64(f float64) uint64 {
	if math.IsNaN(f) {
		trap(TrapBadConversion, "NaN")
	}
	t := math.Trunc(f)
	if t < 0 || t >= 18446744073709551616 {
		trap(TrapIntOverflow, "u64.trunc of %g", f)
	}
	return uint64(t)
}
