package wasm

import "sort"

// The superblock tier (PR 7) sits on top of the register IR: innermost
// self-loop regions — a conditional exit test at the header, a body, an
// induction increment, and a back-edge br — are compiled into a single Go
// closure (a "trace") entered through sOpTraceEnter. Two trace shapes
// exist, tried in order:
//
//  1. An idiom template (superIdiom): the whole loop matches one of a
//     small set of PolyBench-shaped bodies (fma-update, min-add, scaled
//     stencil sum, fill, reduce, ...) whose memory accesses are affine in
//     the induction variable. The template re-proves the PR 4 guard
//     conditions once per loop trip — every access span in bounds and on
//     hot EPC-TLB pages — and then runs the entire trip raw, or falls to
//     a checked per-iteration loop that replays the exact program-order
//     memLoad*/memStore* sequence when the trip guard fails.
//  2. A generic step trace: every instruction of the region individually
//     compiled to a closure; same dispatch count as the register
//     interpreter but without the central switch.
//
// Loops containing calls, br_table, return, or memory.grow/size are left
// to the register interpreter (counted in SuperStats.Bailouts). Only the
// header pc is patched, so branches into the middle of a traced region
// (guard-fail blobs) still execute through runRegBody and re-enter the
// trace at the next back-edge.

// SuperStats counts superblock-tier translation outcomes for one module
// form. Reported by Compiled.SuperStats and surfaced by benchsnap -v so
// silent coverage loss (loops quietly falling back to the register
// interpreter) is visible.
type SuperStats struct {
	Funcs     int // functions examined in register form
	RegBail   int // functions that had no register form (run fused, untraced)
	Loops     int // innermost self-loop regions discovered
	Idioms    int // loops compiled to idiom templates
	StepLoops int // loops compiled to generic step traces
	Bailouts  int // loops left to the register interpreter
}

func (s *SuperStats) merge(o SuperStats) {
	s.Funcs += o.Funcs
	s.RegBail += o.RegBail
	s.Loops += o.Loops
	s.Idioms += o.Idioms
	s.StepLoops += o.StepLoops
	s.Bailouts += o.Bailouts
}

// superTrace executes one compiled loop trace. r is the frame register
// file; the return values are the next absolute pc (always outside the
// region on normal exit) and the number of retired instructions to
// charge, which includes the trace-entry dispatch itself.
type superTrace func(in *Instance, r []uint64, mem *Memory) (int, int64)

// translateSuper derives the superblock form of one register-form
// function: a copy with hot self-loops patched to sOpTraceEnter and the
// trace table filled in. Functions without a register body pass through
// unchanged (they run in their fused form, untraced).
func translateSuper(fn *compiledFunc, st *SuperStats) compiledFunc {
	out := *fn
	if !fn.reg {
		st.RegBail++
		return out
	}
	st.Funcs++
	code := fn.code

	// A region is a back-edge br and its target: [start..end] with
	// code[end] = br start. Multiple back-edges to one header are one
	// loop — keep the widest extent per start.
	type region struct{ start, end int }
	widest := map[int]int{}
	for pc := range code {
		if code[pc].op == rOpBr && int(code[pc].a) <= pc {
			s := int(code[pc].a)
			if pc > widest[s+1]-1 { // widest[s+1] is 0 when absent
				widest[s+1] = pc + 1
			}
		}
	}
	var regions []region
	for s1, e1 := range widest {
		regions = append(regions, region{s1 - 1, e1 - 1})
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].start < regions[b].start })

	// Only innermost regions become traces: a region whose extent holds
	// another region's header is an outer loop and is left alone (its
	// body re-enters the inner trace every iteration).
	inner := regions[:0]
	for _, rg := range regions {
		innermost := true
		for _, o := range regions {
			if o.start > rg.start && o.start <= rg.end {
				innermost = false
				break
			}
		}
		if innermost {
			inner = append(inner, rg)
		}
	}
	st.Loops += len(inner)

	var traces []superTrace
	var patched []ins
	for _, rg := range inner {
		tr, ok := matchIdiom(fn, rg.start, rg.end)
		if ok {
			st.Idioms++
		} else if tr, ok = compileSteps(fn, rg.start, rg.end); ok {
			st.StepLoops++
		} else {
			st.Bailouts++
			continue
		}
		if patched == nil {
			patched = append([]ins(nil), code...)
		}
		patched[rg.start] = ins{op: sOpTraceEnter, a: int32(len(traces))}
		traces = append(traces, tr)
	}
	if patched != nil {
		out.code = patched
		out.traces = traces
	}
	return out
}

// ---------------------------------------------------------------------------
// Affine analysis over the loop body.
//
// Within one trip of a counted loop every i32 value the body computes is
// tracked as an affine form  c + cL·L + Σ coeffₖ·r[invₖ]  (mod 2³²) in
// the induction local L and trip-invariant registers. The u32 ring makes
// this exact under wraparound: sums and products of affine forms (with a
// constant factor) are again affine with wrapped coefficients.

type affTerm struct {
	reg   int32
	coeff uint32
}

type affVal struct {
	cL    uint32
	terms []affTerm // sorted by reg, no zero coefficients
	c     uint32
}

func affConst(c uint32) *affVal { return &affVal{c: c} }
func affReg(reg, l int32) *affVal {
	if reg == l {
		return &affVal{cL: 1}
	}
	return &affVal{terms: []affTerm{{reg: reg, coeff: 1}}}
}

func affAdd(a, b *affVal) *affVal {
	if a == nil || b == nil {
		return nil
	}
	out := &affVal{cL: a.cL + b.cL, c: a.c + b.c}
	i, j := 0, 0
	for i < len(a.terms) || j < len(b.terms) {
		switch {
		case j >= len(b.terms) || (i < len(a.terms) && a.terms[i].reg < b.terms[j].reg):
			out.terms = append(out.terms, a.terms[i])
			i++
		case i >= len(a.terms) || b.terms[j].reg < a.terms[i].reg:
			out.terms = append(out.terms, b.terms[j])
			j++
		default:
			if k := a.terms[i].coeff + b.terms[j].coeff; k != 0 {
				out.terms = append(out.terms, affTerm{reg: a.terms[i].reg, coeff: k})
			}
			i++
			j++
		}
	}
	return out
}

func affScale(a *affVal, k uint32) *affVal {
	if a == nil {
		return nil
	}
	if k == 0 {
		return affConst(0)
	}
	out := &affVal{cL: a.cL * k, c: a.c * k}
	for _, t := range a.terms {
		if kk := t.coeff * k; kk != 0 {
			out.terms = append(out.terms, affTerm{reg: t.reg, coeff: kk})
		}
	}
	return out
}

func affNeg(a *affVal) *affVal { return affScale(a, ^uint32(0)) } // ×(2³²−1) ≡ ×(−1)

func affEqual(a, b *affVal) bool {
	if a == nil || b == nil || a.cL != b.cL || a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// isPureConst reports an affine form with no register dependence.
func (a *affVal) isPureConst() bool { return a != nil && a.cL == 0 && len(a.terms) == 0 }

// ---------------------------------------------------------------------------
// f64 dataflow nodes for the loop body.

const (
	fnLoad = iota // v = loaded value #ld
	fnConst
	fnReg // trip-invariant f64 register
	fnOp
)

type fnode struct {
	kind    int
	ld      int
	imm     uint64
	reg     int32
	op      uint16
	immLeft bool // rOpF64MulImm: constant was the left operand
	x, y, z *fnode
}

// ---------------------------------------------------------------------------
// Idiom matching.

// accSpec describes one affine memory access of an idiom body:
// addr = u32(idx·m + A) + off with idx = c + cL·L + Σ coeffₖ·r[invₖ].
type accSpec struct {
	aff   affVal
	m, A  uint32
	off   uint64
	width uint64
}

func accEqual(a, b *accSpec) bool {
	return a.m == b.m && a.A == b.A && a.off == b.off && a.width == b.width &&
		affEqual(&a.aff, &b.aff)
}

// Combine shapes an idiom body can take (see exec_super.go for the
// execution semantics of each).
const (
	combFill     = iota // st(D) = const | invariant reg
	combCopy            // st(D) = v[x]
	combBin             // st(D) = op(fa, fb)
	combFMA             // st(D) = v[dst] ± float64(ex·ey), factors maybe imm-scaled
	combMinAdd          // st(D) = min(v[dst], v[a]+v[b])
	combScaleSum        // st(D) = c·(((v₀+v₁)+v₂)...) — left-assoc, order kept
	combAccum           // local acc = acc + v[x] (no store)
)

// superFactor is one operand of a combine: a loaded value, an invariant
// f64 register, or a constant, optionally scaled by an immediate multiply
// whose operand order is preserved (NaN payloads make it observable).
type superFactor struct {
	kind      int // fnLoad | fnReg | fnConst
	ld        int
	reg       int32
	bits      uint64
	scaled    bool
	scale     float64
	scaleLeft bool
}

// matchIdiom tries to compile the region [start..end] into an idiom
// template. The grammar is exactly the register-IR shape of a counted
// DSL loop: header exit test, straight-line body, induction increment,
// back-edge. Bodies may contain only affine i32 address arithmetic, f64
// loads/stores, and a recognised f64 combine; anything else (including
// guarded windows — the trip guard subsumes them) falls through to the
// generic step compiler.
func matchIdiom(fn *compiledFunc, start, end int) (superTrace, bool) {
	code := fn.code
	nLoc := fn.numParams + fn.numLocals
	if end-start < 3 {
		return nil, false
	}

	// Tail: i32addimm L, L, step ; br start — or, when LVN reused a
	// body-computed L+step temp as the increment, copy L, src ; br start.
	// A copy tail is validated after the body scan: src's affine record
	// must be exactly L + step with a positive constant step.
	inc := &code[end-1]
	var l int32
	var step uint32
	tailCopy := int32(-1)
	switch {
	case inc.op == rOpI32AddImm && inc.a == inc.b && int32(uint32(inc.imm)) > 0:
		l = inc.a
		step = uint32(inc.imm)
	case inc.op == rOpCopy:
		l = inc.a
		tailCopy = inc.b
	default:
		return nil, false
	}
	if int(l) >= nLoc {
		return nil, false
	}

	// Header: if L >= limit → exit (the DSL's br_if out of the block).
	hd := &code[start]
	id := &superIdiom{start: start, end: end, l: l, step: step, limitReg: -1, tailCopy: -1}
	switch hd.op {
	case rOpBrCmpImm:
		if byte(hd.imm) != byte(OpI32GeS) || hd.b != l {
			return nil, false
		}
		id.limitImm = uint32(hd.imm >> 32)
	case rOpBrCmp:
		if byte(hd.imm) != byte(OpI32GeS) || hd.b != l || hd.c == l {
			return nil, false
		}
		id.limitReg = hd.c
	default:
		return nil, false
	}
	exit := int(hd.a)
	if exit >= start && exit <= end {
		return nil, false
	}
	id.exitPC = exit

	// Body scan: affine i32 forms, f64 loads, one trailing store, f64
	// combine tree. Every write target and every trip-invariant register
	// the final match depends on is validated afterwards.
	aff := map[int32]*affVal{}
	fmap := map[int32]*fnode{}
	written := map[int32]bool{}
	var invRegs []int32 // invariant regs the match reads (aff terms, fnReg, limit)
	// A written reg with no affine record is non-affine (nil); an
	// unwritten reg is a trip-invariant term, recorded for the final
	// never-written check that rejects loop-carried dependencies.
	affSrc := func(reg int32) *affVal {
		if reg == l {
			return affReg(reg, l)
		}
		if written[reg] {
			return aff[reg]
		}
		invRegs = append(invRegs, reg)
		return affReg(reg, l)
	}
	nodeOf := func(reg int32) *fnode {
		if n, ok := fmap[reg]; ok {
			return n
		}
		if written[reg] || reg == l {
			return nil // produced by a non-f64 op in the body
		}
		invRegs = append(invRegs, reg)
		return &fnode{kind: fnReg, reg: reg}
	}
	wroteL := false
	setW := func(reg int32, a *affVal, f *fnode) {
		if reg == l {
			wroteL = true // body mutates the induction local — not a counted loop
		}
		written[reg] = true
		if a != nil {
			aff[reg] = a
		} else {
			delete(aff, reg)
		}
		if f != nil {
			fmap[reg] = f
		} else {
			delete(fmap, reg)
		}
	}

	var storeVal *fnode
	var storePC int = -1
	for pc := start + 1; pc <= end-2; pc++ {
		i := &code[pc]
		if storePC >= 0 {
			return nil, false // store must be the last body instruction
		}
		switch i.op {
		case rOpConst:
			setW(i.a, affConst(uint32(i.imm)), &fnode{kind: fnConst, imm: i.imm})
		case rOpCopy:
			setW(i.a, affSrc(i.b), nodeOf(i.b))
		case rOpI32AddImm:
			setW(i.a, affAdd(affSrc(i.b), affConst(uint32(i.imm))), nil)
		case rOpI32MulImm:
			setW(i.a, affScale(affSrc(i.b), uint32(i.imm)), nil)
		case rOpI32MulAdd:
			setW(i.a, affAdd(affScale(affSrc(i.b), uint32(i.imm)), affSrc(i.c)), nil)
		case rOpI32MulAddII:
			setW(i.a, affAdd(affScale(affSrc(i.b), uint32(i.imm>>32)), affConst(uint32(i.imm))), nil)
		case uint16(OpI32Add):
			setW(i.a, affAdd(affSrc(i.b), affSrc(i.c)), nil)
		case uint16(OpI32Sub):
			setW(i.a, affAdd(affSrc(i.b), affNeg(affSrc(i.c))), nil)
		case uint16(OpI32Mul):
			b, c := affSrc(i.b), affSrc(i.c)
			switch {
			case b.isPureConst():
				setW(i.a, affScale(c, b.c), nil)
			case c.isPureConst():
				setW(i.a, affScale(b, c.c), nil)
			default:
				return nil, false
			}
		case rOpLoad64, rOpLoadAff64:
			var spec accSpec
			base := affSrc(i.b)
			if base == nil {
				return nil, false
			}
			spec.aff = *base
			if i.op == rOpLoadAff64 {
				spec.m, spec.A = uint32(i.imm>>32), uint32(i.imm)
				spec.off = uint64(uint32(i.c))
			} else {
				spec.m = 1
				spec.off = i.imm
			}
			spec.width = 8
			setW(i.a, nil, &fnode{kind: fnLoad, ld: len(id.loads)})
			id.loads = append(id.loads, spec)
		case rOpStore64, rOpStoreAff64:
			var spec accSpec
			var valReg int32
			if i.op == rOpStoreAff64 {
				base := affSrc(i.a)
				if base == nil {
					return nil, false
				}
				spec = accSpec{aff: *base, m: uint32(i.imm >> 32), A: uint32(i.imm),
					off: uint64(uint32(i.c)), width: 8}
				valReg = i.b
			} else {
				base := affSrc(i.a)
				if base == nil {
					return nil, false
				}
				spec = accSpec{aff: *base, m: 1, off: i.imm, width: 8}
				valReg = i.b
			}
			storeVal = nodeOf(valReg)
			if storeVal == nil {
				return nil, false
			}
			id.store = spec
			id.hasStore = true
			storePC = pc
		case uint16(OpF64Add), uint16(OpF64Sub), uint16(OpF64Mul), uint16(OpF64Div),
			uint16(OpF64Min), uint16(OpF64Max):
			x, y := nodeOf(i.b), nodeOf(i.c)
			if x == nil || y == nil {
				return nil, false
			}
			setW(i.a, nil, &fnode{kind: fnOp, op: i.op, x: x, y: y})
		case rOpF64MulImm:
			x := nodeOf(i.b)
			if x == nil {
				return nil, false
			}
			setW(i.a, nil, &fnode{kind: fnOp, op: i.op, imm: i.imm, immLeft: i.c != 0, x: x})
		case rOpF64MulAdd:
			x, y, z := nodeOf(i.b), nodeOf(i.c), nodeOf(int32(uint32(i.imm)))
			if x == nil || y == nil || z == nil {
				return nil, false
			}
			setW(i.a, nil, &fnode{kind: fnOp, op: i.op, x: x, y: y, z: z})
		default:
			return nil, false
		}
	}

	if wroteL {
		return nil, false
	}
	if tailCopy >= 0 {
		// copy-tail: the source must be a body-computed value that is
		// exactly L + step (pure, positive constant step, no other terms),
		// so the copy is equivalent to the canonical increment.
		a := aff[tailCopy]
		if a == nil || !written[tailCopy] || a.cL != 1 || len(a.terms) != 0 || int32(a.c) <= 0 {
			return nil, false
		}
		id.step = a.c
		id.tailCopy = tailCopy
	}

	// Classify the combine.
	if !id.classify(storeVal, fmap, written, nLoc, l, &invRegs) {
		return nil, false
	}

	// No trip-invariant input may be written anywhere in the body, and
	// no local other than L (and the accumulator) may be written —
	// slot-home temps are dead at loop exit (per-block LVN reset), locals
	// are not.
	if id.limitReg >= 0 {
		invRegs = append(invRegs, id.limitReg)
	}
	for _, spec := range id.loads {
		for _, t := range spec.aff.terms {
			invRegs = append(invRegs, t.reg)
		}
	}
	if id.hasStore {
		for _, t := range id.store.aff.terms {
			invRegs = append(invRegs, t.reg)
		}
	}
	for _, reg := range invRegs {
		if id.comb == combAccum && reg == id.accReg {
			continue // the accumulator is read-then-written by design
		}
		if written[reg] || reg == l {
			return nil, false
		}
	}
	for reg := range written {
		if int(reg) < nLoc && reg != l && !(id.comb == combAccum && reg == id.accReg) {
			return nil, false
		}
	}
	id.finish()
	return id.run, true
}

// factorOf resolves a combine leaf: load, invariant reg, constant, or an
// imm-scaled load/reg.
func factorOf(n *fnode) (superFactor, bool) {
	switch n.kind {
	case fnLoad:
		return superFactor{kind: fnLoad, ld: n.ld}, true
	case fnReg:
		return superFactor{kind: fnReg, reg: n.reg}, true
	case fnConst:
		return superFactor{kind: fnConst, bits: n.imm}, true
	case fnOp:
		if n.op == rOpF64MulImm {
			in, ok := factorOf(n.x)
			if ok && !in.scaled && in.kind != fnConst {
				in.scaled = true
				in.scale = f64(n.imm)
				in.scaleLeft = n.immLeft
				return in, true
			}
		}
	}
	return superFactor{}, false
}

// flattenSum collects a left-associated f64 add chain's load leaves in
// evaluation order.
func flattenSum(n *fnode, out []int) ([]int, bool) {
	if n.kind == fnLoad {
		return append(out, n.ld), true
	}
	if n.kind == fnOp && n.op == uint16(OpF64Add) {
		out, ok := flattenSum(n.x, out)
		if !ok {
			return nil, false
		}
		if n.y.kind != fnLoad {
			return nil, false
		}
		return append(out, n.y.ld), true
	}
	return nil, false
}

// classify decides which combine the store value tree (or accumulator
// write) is, filling the idiom's combine fields. usedLoads tracking
// rejects bodies with loads the combine does not consume — their touches
// would be lost in raw mode.
func (id *superIdiom) classify(val *fnode, fmap map[int32]*fnode, written map[int32]bool,
	nLoc int, l int32, invRegs *[]int32) bool {
	used := make([]bool, len(id.loads))
	useF := func(f superFactor) {
		if f.kind == fnLoad {
			used[f.ld] = true
		} else if f.kind == fnReg {
			*invRegs = append(*invRegs, f.reg)
		}
	}
	ok := func() bool {
		for i := range used {
			if !used[i] {
				return false
			}
		}
		return true
	}

	if !id.hasStore {
		// Accumulator reduce: the only local write is acc = acc + v[x]
		// (or v[x] + acc). Find it among f64 locals written in the body.
		for reg, n := range fmap {
			if int(reg) >= nLoc || reg == l || !written[reg] {
				continue
			}
			if n.kind != fnOp || n.op != uint16(OpF64Add) {
				return false
			}
			a, b := n.x, n.y
			switch {
			case a.kind == fnReg && a.reg == reg && b.kind == fnLoad:
				id.comb, id.accReg, id.accLd, id.accLeft = combAccum, reg, b.ld, true
			case b.kind == fnReg && b.reg == reg && a.kind == fnLoad:
				id.comb, id.accReg, id.accLd, id.accLeft = combAccum, reg, a.ld, false
			default:
				return false
			}
			used[id.accLd] = true
			return len(id.loads) == 1 && ok()
		}
		return false
	}

	switch val.kind {
	case fnConst:
		id.comb = combFill
		id.fillReg = -1
		id.fillBits = val.imm
		return ok()
	case fnReg:
		id.comb = combFill
		id.fillReg = val.reg
		*invRegs = append(*invRegs, val.reg)
		return ok()
	case fnLoad:
		id.comb = combCopy
		id.fa = superFactor{kind: fnLoad, ld: val.ld}
		used[val.ld] = true
		return ok()
	case fnOp:
	default:
		return false
	}

	// dstLoad: a load with the same access spec as the store.
	dstLd := -1
	for i := range id.loads {
		if accEqual(&id.loads[i], &id.store) {
			dstLd = i
			break
		}
	}

	switch val.op {
	case rOpF64MulAdd:
		// st = v[dst] + ex·ey, product rounding forced.
		if val.z.kind == fnLoad && val.z.ld == dstLd {
			fa, oka := factorOf(val.x)
			fb, okb := factorOf(val.y)
			if oka && okb {
				id.comb, id.dstLd, id.fa, id.fb = combFMA, dstLd, fa, fb
				used[dstLd] = true
				useF(fa)
				useF(fb)
				return ok()
			}
		}
		return false
	case uint16(OpF64Add), uint16(OpF64Sub):
		// Unfused st = v[dst] ± (ex·ey): the product was rounded when the
		// mul arm stored it, so the template's explicit rounding matches.
		if val.x.kind == fnLoad && val.x.ld == dstLd &&
			val.y.kind == fnOp && val.y.op == uint16(OpF64Mul) {
			fa, oka := factorOf(val.y.x)
			fb, okb := factorOf(val.y.y)
			if oka && okb {
				id.comb, id.dstLd, id.fa, id.fb = combFMA, dstLd, fa, fb
				id.neg = val.op == uint16(OpF64Sub)
				used[dstLd] = true
				useF(fa)
				useF(fb)
				return ok()
			}
		}
		if val.op == uint16(OpF64Add) {
			// Scale-free stencil sum (no outer const multiply).
			if lds, okc := flattenSum(val, nil); okc {
				id.comb, id.sumLds, id.scaleBits = combScaleSum, lds, pf64(1)
				id.scaleNone = true
				for _, ld := range lds {
					used[ld] = true
				}
				return ok()
			}
		}
		fallthrough
	case uint16(OpF64Mul), uint16(OpF64Div), uint16(OpF64Max):
		fa, oka := factorOf(val.x)
		fb, okb := factorOf(val.y)
		if oka && okb {
			id.comb, id.op, id.fa, id.fb = combBin, val.op, fa, fb
			useF(fa)
			useF(fb)
			return ok()
		}
		return false
	case uint16(OpF64Min):
		if val.x.kind == fnLoad && val.x.ld == dstLd &&
			val.y.kind == fnOp && val.y.op == uint16(OpF64Add) &&
			val.y.x.kind == fnLoad && val.y.y.kind == fnLoad {
			id.comb, id.dstLd = combMinAdd, dstLd
			id.fa = superFactor{kind: fnLoad, ld: val.y.x.ld}
			id.fb = superFactor{kind: fnLoad, ld: val.y.y.ld}
			used[dstLd], used[val.y.x.ld], used[val.y.y.ld] = true, true, true
			return ok()
		}
		fa, oka := factorOf(val.x)
		fb, okb := factorOf(val.y)
		if oka && okb {
			id.comb, id.op, id.fa, id.fb = combBin, val.op, fa, fb
			useF(fa)
			useF(fb)
			return ok()
		}
		return false
	case rOpF64MulImm:
		lds, okc := flattenSum(val.x, nil)
		if !okc {
			return false
		}
		id.comb, id.sumLds = combScaleSum, lds
		id.scaleBits, id.scaleLeft = val.imm, val.immLeft
		for _, ld := range lds {
			used[ld] = true
		}
		return ok()
	}
	return false
}
