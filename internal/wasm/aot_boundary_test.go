package wasm

import (
	"testing"

	"twine/wasmgen"
)

// Fusion-boundary coverage: the AoT peephole must never merge a window
// that a branch target (plain branch, loop back-edge, or br_table
// destination) lands inside. Because block/end emit no lowered
// instructions, a branched-to block end can sit exactly between two
// otherwise fusable instructions — jumping into a fused window would
// execute a remapped-to-zero pc or replay the window prefix.

// runAllEngines instantiates the module under every engine and asserts
// they agree on the single result of "run".
func runAllEngines(t *testing.T, bytes []byte, args ...uint64) uint64 {
	t.Helper()
	mod, err := Decode(bytes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	var got [4]uint64
	for i, eng := range []Engine{EngineInterp, EngineAOT, EngineRegister, EngineSuperblock} {
		in, err := Instantiate(c, nil, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		out, err := in.Invoke("run", args...)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		got[i] = out[0]
	}
	if got[0] != got[1] || got[0] != got[2] || got[0] != got[3] {
		t.Fatalf("engines disagree: interp=%d aot=%d reg=%d super=%d", got[0], got[1], got[2], got[3])
	}
	return got[0]
}

// noGet2Across asserts the fused body contains no local_get2 merging
// locals a and b — the pair the test module lays out across a boundary.
func noGet2Across(t *testing.T, bytes []byte, a, b int32) {
	t.Helper()
	mod, err := Decode(bytes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range c.aot()[0].code {
		if i.op == opFusedLocalGet2 && i.a == a && i.b == b {
			t.Fatalf("local.get %d/%d fused across a branch-target boundary", a, b)
		}
	}
}

// TestFuseBackEdgeBoundary pins that a loop back-edge target between two
// otherwise fusable instructions is never fused across: the loop header
// sits exactly between "local.get 0" and "local.get 1".
func TestFuseBackEdgeBoundary(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	sum := f.AddLocal(wasmgen.I32)
	i := f.AddLocal(wasmgen.I32)
	f.LocalGet(0) // candidate first half of a local_get2 window
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid) // back-edge target lands here
	f.LocalGet(1)             // candidate second half
	f.LocalGet(sum).I32Add().LocalSet(sum)
	f.LocalGet(i).I32Const(1).I32Add().LocalTee(i)
	f.I32Const(3).I32GeS().BrIf(1)
	f.Br(0)
	f.End()
	f.End()
	f.Drop() // the carried local.get 0
	f.LocalGet(sum)
	f.End()
	m.Export("run", f)

	noGet2Across(t, m.Bytes(), 0, 1)
	// Three iterations of sum += p1.
	if got := runAllEngines(t, m.Bytes(), 7, 14); got != 42 {
		t.Fatalf("sum = %d, want 42", got)
	}
}

// TestFuseBrTableBoundary pins that br_table destinations are fusion
// boundaries. The branched-to end of block B2 sits between "local.get 0"
// (B2's final instruction) and "local.get 1" (the instruction after it),
// an otherwise fusable pair.
func TestFuseBrTableBoundary(t *testing.T) {
	m := wasmgen.NewModule()
	// Params: p0 = condition/fallback value, p1 = branched value, p2 = index.
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockI32) // B1
	f.Block(wasmgen.BlockI32) // B2
	f.LocalGet(0)
	f.If(wasmgen.BlockVoid)
	f.LocalGet(1)
	f.LocalGet(2)
	f.BrTable(1, 2) // case 0 -> B2 end, default -> B1 end (both carry one i32)
	f.End()
	f.LocalGet(2) // X: B2's result on the fallthrough path
	f.End()       // <- br_table case target, between X and Y
	f.LocalGet(1) // Y: fusable with X were the boundary ignored
	f.I32Add()
	f.End()
	f.End()
	m.Export("run", f)

	noGet2Across(t, m.Bytes(), 2, 1)
	// cond=0: if skipped, B2 = p2, result p2+p1.
	if got := runAllEngines(t, m.Bytes(), 0, 30, 7); got != 37 {
		t.Fatalf("fallthrough = %d, want 37", got)
	}
	// cond=1, idx=0: br_table case -> B2 end with p1, result p1+p1.
	if got := runAllEngines(t, m.Bytes(), 1, 30, 0); got != 60 {
		t.Fatalf("case 0 = %d, want 60", got)
	}
	// cond=1, idx>=1: default -> B1 end with p1, skipping the add.
	if got := runAllEngines(t, m.Bytes(), 1, 30, 3); got != 30 {
		t.Fatalf("default = %d, want 30", got)
	}
}

// TestFuseBranchIntoWindow is the regression case: a conditional branch
// whose target lands in the middle of a previously-fused window shape
// (the local_get2 pair introduced in PR 1). The br_if target is block
// B2's end, which sits exactly between the two local.gets.
func TestFuseBranchIntoWindow(t *testing.T) {
	m := wasmgen.NewModule()
	// Params: p0 = condition (also fallback value), p1 = branched value.
	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	f.Block(wasmgen.BlockI32) // B1
	f.Block(wasmgen.BlockI32) // B2
	f.LocalGet(1)             // value carried by the taken branch
	f.LocalGet(0)             // condition
	f.BrIf(0)                 // jumps between X and Y below
	f.Drop()
	f.LocalGet(0) // X
	f.End()       // <- br_if target
	f.LocalGet(1) // Y
	f.I32Add()
	f.End()
	f.End()
	m.Export("run", f)

	noGet2Across(t, m.Bytes(), 0, 1)
	// cond=0: B2 = p0 -> p0+p1; cond!=0: branch carries p1 -> p1+p1.
	if got := runAllEngines(t, m.Bytes(), 4, 25); got != 50 {
		t.Fatalf("taken branch = %d, want 50", got)
	}
	if got := runAllEngines(t, m.Bytes(), 0, 25); got != 25 {
		t.Fatalf("fallthrough = %d, want 25", got)
	}
}
