package wasm

import (
	"bytes"
	"testing"

	"twine/wasmgen"
)

// TestSuperMidLoopSnapshotFidelity pins mid-invocation state fidelity:
// an outer loop yields to the host between trips of an inner loop the
// superblock tier compiles to a trace. At every yield the host captures
// a Snapshot; memory and globals must match the interpreter's snapshot
// at the same yield bit-for-bit — a trace that deferred or reordered its
// stores past the host-call boundary would diverge here. The test also
// asserts the superblock tier actually traced the kernel (this is not a
// vacuous comparison of four interpreters) and exercises
// ResetFromSnapshot: a super-tier instance reset to a mid-run snapshot
// must finish exactly like an interpreter instance reset the same way.
func TestSuperMidLoopSnapshotFidelity(t *testing.T) {
	const n = 64
	const baseA, baseB, baseC = 64, 64 + n*8, 64 + 2*n*8
	const yields = 4

	m := wasmgen.NewModule()
	m.Memory(1, 1)
	g := m.Global(wasmgen.I64, true, 0)
	yield := m.ImportFunc("env", "yield", wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	f := m.Func(wasmgen.Sig().Returns(wasmgen.F64))
	k := f.AddLocal(wasmgen.I32)
	i := f.AddLocal(wasmgen.I32)
	forLoop := func(v uint32, hi int32, body func()) {
		f.I32Const(0).LocalSet(v)
		f.Block(wasmgen.BlockVoid)
		f.Loop(wasmgen.BlockVoid)
		f.LocalGet(v).I32Const(hi).I32GeS().BrIf(1)
		body()
		f.LocalGet(v).I32Const(1).I32Add().LocalSet(v)
		f.Br(0)
		f.End()
		f.End()
	}
	addr := func(base int32, v uint32) {
		f.LocalGet(v).I32Const(8).I32Mul().I32Const(base).I32Add()
	}
	// Seed A and B; C starts zero.
	forLoop(i, n, func() {
		addr(baseA, i)
		f.LocalGet(i).F64ConvertI32S().F64Const(1).F64Add()
		f.F64Store(0)
		addr(baseB, i)
		f.LocalGet(i).F64ConvertI32S().F64Const(0.5).F64Mul()
		f.F64Store(0)
	})
	forLoop(k, yields, func() {
		f.LocalGet(k).Call(yield).Drop()
		// Inner kernel: C[i] += (1.5 * A[i]) * B[i] — the fma idiom.
		forLoop(i, n, func() {
			addr(baseC, i)
			addr(baseC, i)
			f.F64Load(0)
			f.F64Const(1.5)
			addr(baseA, i)
			f.F64Load(0)
			f.F64Mul()
			addr(baseB, i)
			f.F64Load(0)
			f.F64Mul()
			f.F64Add()
			f.F64Store(0)
		})
		f.GlobalGet(g).LocalGet(k).I64ExtendI32S().I64Add().GlobalSet(g)
	})
	f.I32Const(baseC + 8*37).F64Load(0)
	f.End()
	m.Export("run", f)

	mod, err := Decode(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		snaps   []*Snapshot
		res     uint64
		retired int64
	}
	run := func(eng Engine) runOut {
		var out runOut
		imp := NewImportObject()
		imp.AddFunc(HostFunc{
			Module: "env", Name: "yield",
			Type: FuncType{Params: []ValueType{I32}, Results: []ValueType{I32}},
			Fn: func(in *Instance, args []uint64) ([]uint64, error) {
				out.snaps = append(out.snaps, in.Snapshot())
				return in.Ret1(args[0]), nil
			},
		})
		in, err := Instantiate(c, imp, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		res, err := in.Invoke("run")
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		out.res = res[0]
		out.retired = in.InsRetired()
		return out
	}

	base := run(EngineInterp)
	if len(base.snaps) != yields {
		t.Fatalf("interp yielded %d times, want %d", len(base.snaps), yields)
	}
	outs := map[Engine]runOut{}
	for _, eng := range []Engine{EngineAOT, EngineRegister, EngineSuperblock} {
		got := run(eng)
		outs[eng] = got
		if got.res != base.res {
			t.Errorf("%v result %#x, want %#x", eng, got.res, base.res)
		}
		if len(got.snaps) != yields {
			t.Fatalf("%v yielded %d times, want %d", eng, len(got.snaps), yields)
		}
		for j := range got.snaps {
			if !bytes.Equal(got.snaps[j].mem, base.snaps[j].mem) {
				t.Errorf("%v: memory diverged from interp at yield %d", eng, j)
			}
			for gi := range got.snaps[j].globals {
				if got.snaps[j].globals[gi] != base.snaps[j].globals[gi] {
					t.Errorf("%v: global %d diverged at yield %d: %#x vs %#x",
						eng, gi, j, got.snaps[j].globals[gi], base.snaps[j].globals[gi])
				}
			}
		}
	}

	// The comparison must not be vacuous: the kernel has to have been
	// traced, and tracing has to have paid off in dispatches retired.
	st := c.SuperStats(false)
	if st.Idioms+st.StepLoops == 0 {
		t.Fatalf("superblock translated no traces: %+v", st)
	}
	if sr := outs[EngineSuperblock].retired; sr*2 >= base.retired {
		t.Errorf("superblock retired %d dispatches vs interp %d; expected a >2x drop", sr, base.retired)
	}

	// Repair path: reset a super instance to the interpreter's yield-2
	// snapshot and finish; an interpreter instance reset the same way
	// must land on the identical final state.
	finish := func(eng Engine, snap *Snapshot) (uint64, []byte) {
		imp := NewImportObject()
		imp.AddFunc(HostFunc{
			Module: "env", Name: "yield",
			Type: FuncType{Params: []ValueType{I32}, Results: []ValueType{I32}},
			Fn: func(in *Instance, args []uint64) ([]uint64, error) {
				return in.Ret1(args[0]), nil
			},
		})
		in, err := Instantiate(c, imp, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if err := in.ResetFromSnapshot(snap); err != nil {
			t.Fatalf("%v: ResetFromSnapshot: %v", eng, err)
		}
		res, err := in.Invoke("run")
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		return res[0], append([]byte(nil), in.mem.data...)
	}
	wantRes, wantMem := finish(EngineInterp, base.snaps[2])
	gotRes, gotMem := finish(EngineSuperblock, base.snaps[2])
	if gotRes != wantRes || !bytes.Equal(gotMem, wantMem) {
		t.Errorf("post-reset divergence: res %#x vs %#x", gotRes, wantRes)
	}
}
