package wasm

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// The generic step trace is the superblock tier's coverage fallback for
// loops that match no idiom template: every instruction of the region is
// compiled to its own closure mirroring the corresponding runRegBody arm
// expression-for-expression — same results, same trap kinds and
// messages, same memLoad*/memStore* touch sequence — so the only change
// is replacing the central dispatch switch with an indexed call. Guard
// failures and any branch out of the region simply return an outside pc
// and the register interpreter resumes there; the next back-edge through
// the header re-enters the trace.

// superStep executes one instruction and returns the next absolute pc.
type superStep func(in *Instance, r []uint64, mem *Memory) int

// compileSteps builds a generic step trace for [start..end], or reports
// false when the region holds an instruction that must stay under the
// interpreter (calls, br_table, return, memory.size/grow).
func compileSteps(fn *compiledFunc, start, end int) (superTrace, bool) {
	steps := make([]superStep, end-start+1)
	for pc := start; pc <= end; pc++ {
		s, ok := makeStep(&fn.code[pc], pc+1)
		if !ok {
			return nil, false
		}
		steps[pc-start] = s
	}
	return func(in *Instance, r []uint64, mem *Memory) (int, int64) {
		pc, n := start, int64(0)
		for pc >= start && pc <= end {
			n++
			pc = steps[pc-start](in, r, mem)
		}
		return pc, n
	}, true
}

func makeStep(i *ins, next int) (superStep, bool) {
	a, b, c, imm := i.a, i.b, i.c, i.imm
	tgt := int(i.a)
	switch i.op {

	// --- moves ---
	case rOpConst:
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = imm; return next }, true
	case rOpCopy:
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b]; return next }, true

	// --- control ---
	case rOpBr:
		return func(in *Instance, r []uint64, mem *Memory) int { return tgt }, true
	case rOpBrIf:
		return func(in *Instance, r []uint64, mem *Memory) int {
			if uint32(r[b]) != 0 {
				return tgt
			}
			return next
		}, true
	case rOpBrIfZ:
		return func(in *Instance, r []uint64, mem *Memory) int {
			if uint32(r[b]) == 0 {
				return tgt
			}
			return next
		}, true
	case rOpBrCmp:
		return func(in *Instance, r []uint64, mem *Memory) int {
			if i32Cmp(byte(imm), uint32(r[b]), uint32(r[c])) {
				return tgt
			}
			return next
		}, true
	case rOpBrCmpImm:
		return func(in *Instance, r []uint64, mem *Memory) int {
			if i32Cmp(byte(imm), uint32(r[b]), uint32(imm>>32)) {
				return tgt
			}
			return next
		}, true
	case rOpUnreach:
		return func(in *Instance, r []uint64, mem *Memory) int {
			trap(TrapUnreachable, "")
			return next
		}, true

	// --- parametric ---
	case rOpSelect:
		return func(in *Instance, r []uint64, mem *Memory) int {
			if uint32(r[uint32(imm)]) != 0 {
				r[a] = r[b]
			} else {
				r[a] = r[c]
			}
			return next
		}, true

	// --- globals ---
	case rOpGlobalGet:
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = in.globals[b]; return next }, true
	case rOpGlobalSet:
		return func(in *Instance, r []uint64, mem *Memory) int { in.globals[a] = r[b]; return next }, true

	// --- checked memory ---
	case rOpLoad32U:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(memLoad32(mem, r[b], imm))
			return next
		}, true
	case rOpLoad64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = memLoad64(mem, r[b], imm)
			return next
		}, true
	case rOpLoad8U:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(memLoad8(mem, r[b], imm))
			return next
		}, true
	case rOpLoad16U:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(memLoad16(mem, r[b], imm))
			return next
		}, true
	case rOpLoad8S32:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int8(memLoad8(mem, r[b], imm)))))
			return next
		}, true
	case rOpLoad16S32:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int16(memLoad16(mem, r[b], imm)))))
			return next
		}, true
	case rOpLoad8S64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int8(memLoad8(mem, r[b], imm))))
			return next
		}, true
	case rOpLoad16S64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int16(memLoad16(mem, r[b], imm))))
			return next
		}, true
	case rOpLoad32S64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int32(memLoad32(mem, r[b], imm))))
			return next
		}, true
	case rOpStore8:
		return func(in *Instance, r []uint64, mem *Memory) int {
			memStore8(mem, r[a], imm, byte(r[b]))
			return next
		}, true
	case rOpStore16:
		return func(in *Instance, r []uint64, mem *Memory) int {
			memStore16(mem, r[a], imm, uint16(r[b]))
			return next
		}, true
	case rOpStore32:
		return func(in *Instance, r []uint64, mem *Memory) int {
			memStore32(mem, r[a], imm, uint32(r[b]))
			return next
		}, true
	case rOpStore64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			memStore64(mem, r[a], imm, r[b])
			return next
		}, true
	case rOpStore64Imm:
		return func(in *Instance, r []uint64, mem *Memory) int {
			memStore64(mem, r[a], uint64(uint32(c)), imm)
			return next
		}, true
	case rOpLoadAff64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[b])*uint32(imm>>32) + uint32(imm))
			r[a] = memLoad64(mem, addr, uint64(uint32(c)))
			return next
		}, true
	case rOpLoadAff32:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[b])*uint32(imm>>32) + uint32(imm))
			r[a] = uint64(memLoad32(mem, addr, uint64(uint32(c))))
			return next
		}, true
	case rOpStoreAff64:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[a])*uint32(imm>>32) + uint32(imm))
			memStore64(mem, addr, uint64(uint32(c)), r[b])
			return next
		}, true

	// --- hoisted guards + raw windows ---
	case rOpMemGuard:
		return func(in *Instance, r []uint64, mem *Memory) int {
			base := uint64(uint32(r[b]))
			if !regGuardOK(mem, base+(imm>>32), base+(imm&0xFFFFFFFF)) {
				return tgt
			}
			return next
		}, true
	case rOpMemGuardAff:
		return func(in *Instance, r []uint64, mem *Memory) int {
			base := uint64(uint32(r[b])*uint32(imm>>32) + uint32(imm))
			lo := base + uint64(uint32(c)>>16)
			hi := base + uint64(uint32(c)&0xFFFF)
			if !regGuardOK(mem, lo, hi) {
				return tgt
			}
			return next
		}, true
	case rOpLoad32U + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(binary.LittleEndian.Uint32(mem.data[uint64(uint32(r[b]))+imm:]))
			return next
		}, true
	case rOpLoad64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = binary.LittleEndian.Uint64(mem.data[uint64(uint32(r[b]))+imm:])
			return next
		}, true
	case rOpLoad8U + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(mem.data[uint64(uint32(r[b]))+imm])
			return next
		}, true
	case rOpLoad16U + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[b]))+imm:]))
			return next
		}, true
	case rOpLoad8S32 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int8(mem.data[uint64(uint32(r[b]))+imm]))))
			return next
		}, true
	case rOpLoad16S32 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[b]))+imm:])))))
			return next
		}, true
	case rOpLoad8S64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int8(mem.data[uint64(uint32(r[b]))+imm])))
			return next
		}, true
	case rOpLoad16S64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int16(binary.LittleEndian.Uint16(mem.data[uint64(uint32(r[b]))+imm:]))))
			return next
		}, true
	case rOpLoad32S64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int32(binary.LittleEndian.Uint32(mem.data[uint64(uint32(r[b]))+imm:]))))
			return next
		}, true
	case rOpStore8 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			mem.data[uint64(uint32(r[a]))+imm] = byte(r[b])
			return next
		}, true
	case rOpStore16 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			binary.LittleEndian.PutUint16(mem.data[uint64(uint32(r[a]))+imm:], uint16(r[b]))
			return next
		}, true
	case rOpStore32 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			binary.LittleEndian.PutUint32(mem.data[uint64(uint32(r[a]))+imm:], uint32(r[b]))
			return next
		}, true
	case rOpStore64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			binary.LittleEndian.PutUint64(mem.data[uint64(uint32(r[a]))+imm:], r[b])
			return next
		}, true
	case rOpStore64Imm + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			binary.LittleEndian.PutUint64(mem.data[uint64(uint32(r[a]))+uint64(uint32(c)):], imm)
			return next
		}, true
	case rOpLoadAff64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[b])*uint32(imm>>32)+uint32(imm)) + uint64(uint32(c))
			r[a] = binary.LittleEndian.Uint64(mem.data[addr:])
			return next
		}, true
	case rOpLoadAff32 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[b])*uint32(imm>>32)+uint32(imm)) + uint64(uint32(c))
			r[a] = uint64(binary.LittleEndian.Uint32(mem.data[addr:]))
			return next
		}, true
	case rOpStoreAff64 + rawDelta:
		return func(in *Instance, r []uint64, mem *Memory) int {
			addr := uint64(uint32(r[a])*uint32(imm>>32)+uint32(imm)) + uint64(uint32(c))
			binary.LittleEndian.PutUint64(mem.data[addr:], r[b])
			return next
		}, true

	// --- fused ALU ---
	case rOpI32AddImm:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) + uint32(imm))
			return next
		}, true
	case rOpI32MulImm:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) * uint32(imm))
			return next
		}, true
	case rOpI64AddImm:
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] + imm; return next }, true
	case rOpI32MulAdd:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b])*uint32(imm) + uint32(r[c]))
			return next
		}, true
	case rOpI32MulAddII:
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b])*uint32(imm>>32) + uint32(imm))
			return next
		}, true
	case rOpF64MulImm:
		if c != 0 {
			return func(in *Instance, r []uint64, mem *Memory) int {
				r[a] = pf64(f64(imm) * f64(r[b]))
				return next
			}, true
		}
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(f64(r[b]) * f64(imm))
			return next
		}, true
	case rOpF64MulAdd:
		return func(in *Instance, r []uint64, mem *Memory) int {
			prod := float64(f64(r[b]) * f64(r[c]))
			r[a] = pf64(f64(r[uint32(imm)]) + prod)
			return next
		}, true

	// --- i32 compare ---
	case uint16(OpI32Eqz):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(uint32(r[b]) == 0)
			return next
		}, true
	case uint16(OpI32Eq), uint16(OpI32Ne), uint16(OpI32LtS), uint16(OpI32LtU),
		uint16(OpI32GtS), uint16(OpI32GtU), uint16(OpI32LeS), uint16(OpI32LeU),
		uint16(OpI32GeS), uint16(OpI32GeU):
		op := byte(i.op)
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(i32Cmp(op, uint32(r[b]), uint32(r[c])))
			return next
		}, true

	// --- i64 compare ---
	case uint16(OpI64Eqz):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] == 0); return next }, true
	case uint16(OpI64Eq):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] == r[c]); return next }, true
	case uint16(OpI64Ne):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] != r[c]); return next }, true
	case uint16(OpI64LtS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(int64(r[b]) < int64(r[c]))
			return next
		}, true
	case uint16(OpI64LtU):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] < r[c]); return next }, true
	case uint16(OpI64GtS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(int64(r[b]) > int64(r[c]))
			return next
		}, true
	case uint16(OpI64GtU):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] > r[c]); return next }, true
	case uint16(OpI64LeS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(int64(r[b]) <= int64(r[c]))
			return next
		}, true
	case uint16(OpI64LeU):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] <= r[c]); return next }, true
	case uint16(OpI64GeS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(int64(r[b]) >= int64(r[c]))
			return next
		}, true
	case uint16(OpI64GeU):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = b2u(r[b] >= r[c]); return next }, true

	// --- float compare ---
	case uint16(OpF32Eq):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) == f32(r[c]))
			return next
		}, true
	case uint16(OpF32Ne):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) != f32(r[c]))
			return next
		}, true
	case uint16(OpF32Lt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) < f32(r[c]))
			return next
		}, true
	case uint16(OpF32Gt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) > f32(r[c]))
			return next
		}, true
	case uint16(OpF32Le):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) <= f32(r[c]))
			return next
		}, true
	case uint16(OpF32Ge):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f32(r[b]) >= f32(r[c]))
			return next
		}, true
	case uint16(OpF64Eq):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) == f64(r[c]))
			return next
		}, true
	case uint16(OpF64Ne):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) != f64(r[c]))
			return next
		}, true
	case uint16(OpF64Lt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) < f64(r[c]))
			return next
		}, true
	case uint16(OpF64Gt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) > f64(r[c]))
			return next
		}, true
	case uint16(OpF64Le):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) <= f64(r[c]))
			return next
		}, true
	case uint16(OpF64Ge):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = b2u(f64(r[b]) >= f64(r[c]))
			return next
		}, true

	// --- i32 arithmetic ---
	case uint16(OpI32Clz):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.LeadingZeros32(uint32(r[b])))
			return next
		}, true
	case uint16(OpI32Ctz):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.TrailingZeros32(uint32(r[b])))
			return next
		}, true
	case uint16(OpI32Popcnt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.OnesCount32(uint32(r[b])))
			return next
		}, true
	case uint16(OpI32Add):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) + uint32(r[c]))
			return next
		}, true
	case uint16(OpI32Sub):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) - uint32(r[c]))
			return next
		}, true
	case uint16(OpI32Mul):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) * uint32(r[c]))
			return next
		}, true
	case uint16(OpI32DivS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := int32(r[c])
			n := int32(r[b])
			if d == 0 {
				trap(TrapDivZero, "i32.div_s")
			}
			if n == math.MinInt32 && d == -1 {
				trap(TrapIntOverflow, "i32.div_s")
			}
			r[a] = uint64(uint32(n / d))
			return next
		}, true
	case uint16(OpI32DivU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := uint32(r[c])
			if d == 0 {
				trap(TrapDivZero, "i32.div_u")
			}
			r[a] = uint64(uint32(r[b]) / d)
			return next
		}, true
	case uint16(OpI32RemS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := int32(r[c])
			n := int32(r[b])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_s")
			}
			if n == math.MinInt32 && d == -1 {
				r[a] = 0
			} else {
				r[a] = uint64(uint32(n % d))
			}
			return next
		}, true
	case uint16(OpI32RemU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := uint32(r[c])
			if d == 0 {
				trap(TrapDivZero, "i32.rem_u")
			}
			r[a] = uint64(uint32(r[b]) % d)
			return next
		}, true
	case uint16(OpI32And):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] & r[c]; return next }, true
	case uint16(OpI32Or):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] | r[c]; return next }, true
	case uint16(OpI32Xor):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] ^ r[c]; return next }, true
	case uint16(OpI32Shl):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) << (uint32(r[c]) & 31))
			return next
		}, true
	case uint16(OpI32ShrS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(r[b]) >> (uint32(r[c]) & 31)))
			return next
		}, true
	case uint16(OpI32ShrU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]) >> (uint32(r[c]) & 31))
			return next
		}, true
	case uint16(OpI32Rotl):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.RotateLeft32(uint32(r[b]), int(uint32(r[c])&31)))
			return next
		}, true
	case uint16(OpI32Rotr):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.RotateLeft32(uint32(r[b]), -int(uint32(r[c])&31)))
			return next
		}, true

	// --- i64 arithmetic ---
	case uint16(OpI64Clz):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.LeadingZeros64(r[b]))
			return next
		}, true
	case uint16(OpI64Ctz):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.TrailingZeros64(r[b]))
			return next
		}, true
	case uint16(OpI64Popcnt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(bits.OnesCount64(r[b]))
			return next
		}, true
	case uint16(OpI64Add):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] + r[c]; return next }, true
	case uint16(OpI64Sub):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] - r[c]; return next }, true
	case uint16(OpI64Mul):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] * r[c]; return next }, true
	case uint16(OpI64DivS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := int64(r[c])
			n := int64(r[b])
			if d == 0 {
				trap(TrapDivZero, "i64.div_s")
			}
			if n == math.MinInt64 && d == -1 {
				trap(TrapIntOverflow, "i64.div_s")
			}
			r[a] = uint64(n / d)
			return next
		}, true
	case uint16(OpI64DivU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			if r[c] == 0 {
				trap(TrapDivZero, "i64.div_u")
			}
			r[a] = r[b] / r[c]
			return next
		}, true
	case uint16(OpI64RemS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			d := int64(r[c])
			n := int64(r[b])
			if d == 0 {
				trap(TrapDivZero, "i64.rem_s")
			}
			if n == math.MinInt64 && d == -1 {
				r[a] = 0
			} else {
				r[a] = uint64(n % d)
			}
			return next
		}, true
	case uint16(OpI64RemU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			if r[c] == 0 {
				trap(TrapDivZero, "i64.rem_u")
			}
			r[a] = r[b] % r[c]
			return next
		}, true
	case uint16(OpI64And):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] & r[c]; return next }, true
	case uint16(OpI64Or):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] | r[c]; return next }, true
	case uint16(OpI64Xor):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] ^ r[c]; return next }, true
	case uint16(OpI64Shl):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = r[b] << (r[c] & 63)
			return next
		}, true
	case uint16(OpI64ShrS):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(r[b]) >> (r[c] & 63))
			return next
		}, true
	case uint16(OpI64ShrU):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = r[b] >> (r[c] & 63)
			return next
		}, true
	case uint16(OpI64Rotl):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = bits.RotateLeft64(r[b], int(r[c]&63))
			return next
		}, true
	case uint16(OpI64Rotr):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = bits.RotateLeft64(r[b], -int(r[c]&63))
			return next
		}, true

	// --- f64 arithmetic ---
	case uint16(OpF64Add):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(f64(r[b]) + f64(r[c]))
			return next
		}, true
	case uint16(OpF64Sub):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(f64(r[b]) - f64(r[c]))
			return next
		}, true
	case uint16(OpF64Mul):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(f64(r[b]) * f64(r[c]))
			return next
		}, true
	case uint16(OpF64Div):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(f64(r[b]) / f64(r[c]))
			return next
		}, true
	case uint16(OpF64Min):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Min(f64(r[b]), f64(r[c])))
			return next
		}, true
	case uint16(OpF64Max):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Max(f64(r[b]), f64(r[c])))
			return next
		}, true
	case uint16(OpF64Copysign):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Copysign(f64(r[b]), f64(r[c])))
			return next
		}, true
	case uint16(OpF64Abs):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] &^ (1 << 63); return next }, true
	case uint16(OpF64Neg):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] ^ (1 << 63); return next }, true
	case uint16(OpF64Ceil):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Ceil(f64(r[b])))
			return next
		}, true
	case uint16(OpF64Floor):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Floor(f64(r[b])))
			return next
		}, true
	case uint16(OpF64Trunc):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Trunc(f64(r[b])))
			return next
		}, true
	case uint16(OpF64Nearest):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.RoundToEven(f64(r[b])))
			return next
		}, true
	case uint16(OpF64Sqrt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(math.Sqrt(f64(r[b])))
			return next
		}, true

	// --- f32 arithmetic ---
	case uint16(OpF32Add):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(f32(r[b]) + f32(r[c]))
			return next
		}, true
	case uint16(OpF32Sub):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(f32(r[b]) - f32(r[c]))
			return next
		}, true
	case uint16(OpF32Mul):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(f32(r[b]) * f32(r[c]))
			return next
		}, true
	case uint16(OpF32Div):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(f32(r[b]) / f32(r[c]))
			return next
		}, true
	case uint16(OpF32Min):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Min(float64(f32(r[b])), float64(f32(r[c])))))
			return next
		}, true
	case uint16(OpF32Max):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Max(float64(f32(r[b])), float64(f32(r[c])))))
			return next
		}, true
	case uint16(OpF32Copysign):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Copysign(float64(f32(r[b])), float64(f32(r[c])))))
			return next
		}, true
	case uint16(OpF32Abs):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Abs(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpF32Neg):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b] ^ 0x80000000; return next }, true
	case uint16(OpF32Ceil):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Ceil(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpF32Floor):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Floor(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpF32Trunc):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Trunc(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpF32Nearest):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.RoundToEven(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpF32Sqrt):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(math.Sqrt(float64(f32(r[b])))))
			return next
		}, true

	// --- conversions ---
	case uint16(OpI32WrapI64), uint16(OpI64ExtendI32U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(r[b]))
			return next
		}, true
	case uint16(OpI32TruncF32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(truncS32(float64(f32(r[b])))))
			return next
		}, true
	case uint16(OpI32TruncF32U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(truncU32(float64(f32(r[b]))))
			return next
		}, true
	case uint16(OpI32TruncF64S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(truncS32(f64(r[b]))))
			return next
		}, true
	case uint16(OpI32TruncF64U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(truncU32(f64(r[b])))
			return next
		}, true
	case uint16(OpI64ExtendI32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int32(r[b])))
			return next
		}, true
	case uint16(OpI64TruncF32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(truncS64(float64(f32(r[b]))))
			return next
		}, true
	case uint16(OpI64TruncF32U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = truncU64(float64(f32(r[b])))
			return next
		}, true
	case uint16(OpI64TruncF64S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(truncS64(f64(r[b])))
			return next
		}, true
	case uint16(OpI64TruncF64U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = truncU64(f64(r[b]))
			return next
		}, true
	case uint16(OpF32ConvertI32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(int32(r[b])))
			return next
		}, true
	case uint16(OpF32ConvertI32U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(uint32(r[b])))
			return next
		}, true
	case uint16(OpF32ConvertI64S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(int64(r[b])))
			return next
		}, true
	case uint16(OpF32ConvertI64U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(r[b]))
			return next
		}, true
	case uint16(OpF32DemoteF64):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf32(float32(f64(r[b])))
			return next
		}, true
	case uint16(OpF64ConvertI32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(float64(int32(r[b])))
			return next
		}, true
	case uint16(OpF64ConvertI32U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(float64(uint32(r[b])))
			return next
		}, true
	case uint16(OpF64ConvertI64S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(float64(int64(r[b])))
			return next
		}, true
	case uint16(OpF64ConvertI64U):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(float64(r[b]))
			return next
		}, true
	case uint16(OpF64PromoteF32):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = pf64(float64(f32(r[b])))
			return next
		}, true
	case uint16(OpI32ReinterpretF32), uint16(OpI64ReinterpretF64),
		uint16(OpF32ReinterpretI32), uint16(OpF64ReinterpretI64):
		return func(in *Instance, r []uint64, mem *Memory) int { r[a] = r[b]; return next }, true

	// --- sign extension ---
	case uint16(OpI32Extend8S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int8(r[b]))))
			return next
		}, true
	case uint16(OpI32Extend16S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(uint32(int32(int16(r[b]))))
			return next
		}, true
	case uint16(OpI64Extend8S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int8(r[b])))
			return next
		}, true
	case uint16(OpI64Extend16S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int16(r[b])))
			return next
		}, true
	case uint16(OpI64Extend32S):
		return func(in *Instance, r []uint64, mem *Memory) int {
			r[a] = uint64(int64(int32(r[b])))
			return next
		}, true
	}

	// Calls, br_table, return, memory.size/grow (and anything unknown)
	// keep the loop under the register interpreter.
	return nil, false
}
