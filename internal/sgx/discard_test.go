package sgx

import "testing"

// TestDiscardReleasesResidency: discarded pages leave the EPC without
// counting as evictions (EREMOVE, not EWB), residency accounting drops to
// zero for the range, and the paging generation is bumped so EPC-TLB
// entries for the discarded pages die.
func TestDiscardReleasesResidency(t *testing.T) {
	e := newTestEnclave(t, func(c *Config) {
		c.EPCUsable = 64 << 10 // plenty for the touched range
		c.HeapSize = 256 << 10
	})
	defer e.Destroy()
	m := e.Memory()

	base := e.cfg.ReservedSize
	n := int64(8 * PageSize)
	if err := m.Touch(base, n); err != nil {
		t.Fatal(err)
	}
	res, ref := m.RangeResidency(base, n)
	if res != 8 || ref != 8 {
		t.Fatalf("after touch: resident=%d referenced=%d, want 8/8", res, ref)
	}
	gen := m.Gen()
	evBefore := m.Evictions()
	fBefore := m.Faults()

	m.Discard(base, n)
	if res, ref = m.RangeResidency(base, n); res != 0 || ref != 0 {
		t.Errorf("after discard: resident=%d referenced=%d, want 0/0", res, ref)
	}
	if m.Gen() == gen {
		t.Error("discard of resident pages did not bump the paging generation")
	}
	if m.Evictions() != evBefore || m.Faults() != fBefore {
		t.Errorf("discard paid paging counters: faults %d→%d evictions %d→%d",
			fBefore, m.Faults(), evBefore, m.Evictions())
	}

	// Discarding an already-absent range is free: no generation bump.
	gen = m.Gen()
	m.Discard(base, n)
	if m.Gen() != gen {
		t.Error("no-op discard bumped the paging generation")
	}
}

// TestDiscardPartialPages: only pages fully contained in the range are
// discarded — a page shared with a neighbouring allocation must survive.
func TestDiscardPartialPages(t *testing.T) {
	e := newTestEnclave(t, func(c *Config) {
		c.EPCUsable = 64 << 10
		c.HeapSize = 256 << 10
	})
	defer e.Destroy()
	m := e.Memory()

	base := e.cfg.ReservedSize
	if err := m.Touch(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	// Range starts halfway into page 0 and ends halfway into page 3: only
	// pages 1 and 2 are fully contained.
	m.Discard(base+PageSize/2, 3*PageSize)
	res, _ := m.RangeResidency(base, 4*PageSize)
	if res != 2 {
		t.Errorf("partial discard left %d resident pages, want 2 (the boundary pages)", res)
	}
	if r, _ := m.RangeResidency(base+PageSize, 2*PageSize); r != 0 {
		t.Errorf("fully-contained pages survived the discard (%d resident)", r)
	}
}

// TestRangeResidencyDistinguishesReferenced: a clock sweep downgrades
// referenced pages to resident; RangeResidency must report the
// difference, since victim selection keys on it.
func TestRangeResidencyDistinguishesReferenced(t *testing.T) {
	e := newTestEnclave(t, func(c *Config) {
		c.EPCUsable = 4 * PageSize // tiny EPC: the 5th page forces a sweep
		c.HeapSize = 256 << 10
	})
	defer e.Destroy()
	m := e.Memory()

	base := e.cfg.ReservedSize
	if err := m.Touch(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	// Faulting one more page sweeps the clock: every referenced page loses
	// its second chance (and one is evicted).
	if err := m.Touch(base+4*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	res, ref := m.RangeResidency(base, 4*PageSize)
	if res == 0 {
		t.Fatal("no pages of the first arena survived; cannot check referenced counts")
	}
	if ref != 0 {
		t.Errorf("swept pages still referenced: resident=%d referenced=%d", res, ref)
	}
	// The just-faulted page holds its second chance.
	if _, ref := m.RangeResidency(base+4*PageSize, PageSize); ref != 1 {
		t.Errorf("just-faulted page not referenced (ref=%d)", ref)
	}
}
