package sgx

import "fmt"

// Perm is a reserved-memory page permission.
type Perm int

const (
	// PermRW allows writing the region (code loading phase).
	PermRW Perm = iota
	// PermRX allows executing/reading but no longer writing (locked).
	PermRX
)

// Reserved models the SGX "reserved memory" feature the paper uses to load
// Wasm AoT code into a running enclave (§IV-B): a region whose page
// permissions can be flipped from writable to executable, so arbitrary
// code received over a secure channel never leaves enclave memory.
type Reserved struct {
	mem  *Memory
	size int64
	used int64
	perm Perm
}

func newReserved(mem *Memory, size int64) *Reserved {
	mem.reservedBytes = size
	return &Reserved{mem: mem, size: size, perm: PermRW}
}

// Size returns the capacity of the reserved region in bytes.
func (r *Reserved) Size() int64 { return r.size }

// Used returns the number of bytes loaded so far.
func (r *Reserved) Used() int64 { return r.used }

// Perm returns the region's current permission.
func (r *Reserved) Perm() Perm { return r.perm }

// Load appends code to the region while it is writable and returns the
// offset at which it was placed.
func (r *Reserved) Load(code []byte) (int64, error) {
	if r.perm != PermRW {
		return 0, fmt.Errorf("%w: region is execute-only", ErrPerm)
	}
	if r.used+int64(len(code)) > r.size {
		return 0, fmt.Errorf("%w: reserved region full (%d of %d bytes used)", ErrOutOfMemory, r.used, r.size)
	}
	off := r.used
	if err := r.mem.Write(off, code); err != nil {
		return 0, err
	}
	r.used += int64(len(code))
	return off, nil
}

// Protect flips the region's permission. Moving to PermRX locks the region
// against further loads; moving back to PermRW is allowed (SGX2 EMODPE
// semantics) and clears nothing.
func (r *Reserved) Protect(p Perm) {
	r.perm = p
}

// Bytes returns a read view of the loaded code at off with length n. It is
// only valid while the enclave lives.
func (r *Reserved) Bytes(off, n int64) ([]byte, error) {
	if off < 0 || off+n > r.used {
		return nil, fmt.Errorf("%w: reserved read [%d,%d) of %d", ErrBounds, off, off+n, r.used)
	}
	return r.mem.Slice(off, n)
}
