package sgx

import (
	"errors"
	"testing"
	"time"

	"twine/internal/prof"
)

// ringConfig returns a fast, deterministic ring for tests: free costs and a
// short park timeout so lifecycle transitions are observable.
func ringConfig() SwitchlessConfig {
	return SwitchlessConfig{
		Slots:      4,
		MaxPayload: 4096,
		WorkerIdle: 5 * time.Millisecond,
	}
}

func TestSwitchlessColdWorkerFallsBack(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	err := e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 16, func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	st := e.Stats()
	if st.WorkerWakeups != 1 || st.FallbackOCalls != 1 || st.SwitchlessCalls != 0 {
		t.Errorf("cold call stats = %+v, want 1 wakeup + 1 fallback", st)
	}
	if st.OCalls != 1 {
		t.Errorf("OCalls = %d, want 1 (the fallback is a real OCall)", st.OCalls)
	}
}

func TestSwitchlessWarmWorkerRidesTheRing(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	var served int
	err := e.ECall("main", func() error {
		for i := 0; i < 10; i++ {
			if err := e.SwitchlessOCall("io", 16, func() error { served++; return nil }); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if served != 10 {
		t.Fatalf("served = %d, want 10", served)
	}
	st := e.Stats()
	if st.SwitchlessCalls != 9 || st.FallbackOCalls != 1 {
		t.Errorf("stats = %+v, want 9 switchless + 1 cold fallback", st)
	}
	// Conservation: every request is either a ring ride or a real OCall.
	if st.OCalls+st.SwitchlessCalls != 10 {
		t.Errorf("OCalls(%d) + SwitchlessCalls(%d) != 10 requests", st.OCalls, st.SwitchlessCalls)
	}
}

func TestSwitchlessOversizedPayloadTakesSlowPath(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	err := e.ECall("main", func() error {
		// Warm the worker first so the next fallback is attributable to
		// the payload policy alone.
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		return e.SwitchlessOCall("big", 1<<20, func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	st := e.Stats()
	if st.FallbackOCalls != 2 { // cold wakeup + oversized
		t.Errorf("FallbackOCalls = %d, want 2", st.FallbackOCalls)
	}
	if st.SwitchlessCalls != 1 {
		t.Errorf("SwitchlessCalls = %d, want 1", st.SwitchlessCalls)
	}
}

// TestSwitchlessRingFullFallsBack is the ring-full accounting test: with
// the worker flagged busy and every slot occupied, a request must become a
// real OCall and be counted as a fallback.
func TestSwitchlessRingFullFallsBack(t *testing.T) {
	e := newTestEnclave(t)
	r := e.EnableSwitchless(ringConfig())

	// Simulate a saturated ring: mark the worker running without spawning
	// it, and stuff every slot. Requests now find running && queue full.
	r.mu.Lock()
	r.running = true
	r.mu.Unlock()
	for i := 0; i < r.cfg.Slots; i++ {
		r.queue <- &slreq{done: make(chan error, 1)}
	}

	var ran bool
	err := e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 16, func() error { ran = true; return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if !ran {
		t.Fatal("ring-full request was dropped instead of falling back")
	}
	st := e.Stats()
	if st.FallbackOCalls != 1 || st.OCalls != 1 || st.SwitchlessCalls != 0 {
		t.Errorf("stats = %+v, want exactly one fallback OCall", st)
	}

	// Drain the stuffed slots so the spawned-later worker (none here) or
	// the GC cannot observe half-built requests.
	for i := 0; i < r.cfg.Slots; i++ {
		<-r.queue
	}
}

func TestSwitchlessOCallOutsideEnclave(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	err := e.SwitchlessOCall("bad", 0, func() error { return nil })
	if !errors.Is(err, ErrOutsideEnclave) {
		t.Errorf("SwitchlessOCall outside = %v, want ErrOutsideEnclave", err)
	}
}

func TestSwitchlessOCallWithoutRingIsOCall(t *testing.T) {
	e := newTestEnclave(t)
	var ran bool
	err := e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 16, func() error { ran = true; return nil })
	})
	if err != nil || !ran {
		t.Fatalf("SwitchlessOCall without ring: err=%v ran=%v", err, ran)
	}
	st := e.Stats()
	if st.OCalls != 1 || st.SwitchlessCalls != 0 || st.FallbackOCalls != 0 {
		t.Errorf("stats = %+v, want plain OCall accounting", st)
	}
}

func TestSwitchlessStoppedRingFallsBack(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	e.ring.stop()
	err := e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 16, func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if st := e.Stats(); st.OCalls != 1 || st.SwitchlessCalls != 0 {
		t.Errorf("stats after stop = %+v, want classic OCall", st)
	}
	if e.SwitchlessEnabled() {
		t.Error("SwitchlessEnabled() = true after stop")
	}
}

func TestSwitchlessDestroyedEnclave(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	e.Destroy()
	if err := e.SwitchlessOCall("io", 0, func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Errorf("SwitchlessOCall after destroy = %v, want ErrDestroyed", err)
	}
}

func TestSwitchlessErrorPropagates(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	want := errors.New("disk on fire")
	err := e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		return e.SwitchlessOCall("io", 0, func() error { return want })
	})
	if !errors.Is(err, want) {
		t.Errorf("switchless error = %v, want %v", err, want)
	}
}

func TestSwitchlessPanicPropagates(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	defer func() {
		if p := recover(); p != "worker boom" {
			t.Errorf("recovered %v, want worker boom", p)
		}
	}()
	_ = e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		return e.SwitchlessOCall("io", 0, func() error { panic("worker boom") })
	})
	t.Fatal("panic in switchless closure did not unwind the enclave thread")
}

func TestSwitchlessWorkerParksWhenIdle(t *testing.T) {
	e := newTestEnclave(t)
	r := e.EnableSwitchless(ringConfig())
	err := e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		return e.SwitchlessOCall("io", 0, func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.mu.Lock()
		running := r.running
		r.mu.Unlock()
		if !running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker did not park after WorkerIdle")
		}
		time.Sleep(time.Millisecond)
	}
	// The next call pays the wakeup again.
	_ = e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 0, func() error { return nil })
	})
	if st := e.Stats(); st.WorkerWakeups != 2 {
		t.Errorf("WorkerWakeups = %d, want 2 (one per park)", st.WorkerWakeups)
	}
}

// TestSwitchlessSharedStateHandshake drives shared host state through both
// the ring and the classic path. Run under -race this validates that the
// request/response handshake publishes worker-side writes to the enclave
// thread.
func TestSwitchlessSharedStateHandshake(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(ringConfig())
	state := make(map[int]int)
	err := e.ECall("main", func() error {
		for i := 0; i < 200; i++ {
			i := i
			var err error
			if i%10 == 3 {
				// Classic path interleaved with ring rides.
				err = e.OCall("direct", func() error { state[i] = i * 2; return nil })
			} else {
				err = e.SwitchlessOCall("ring", 8, func() error { state[i] = i * 2; return nil })
			}
			if err != nil {
				return err
			}
			// Enclave-side read of worker-side writes.
			if state[i] != i*2 {
				t.Errorf("state[%d] = %d after call returned", i, state[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if len(state) != 200 {
		t.Errorf("len(state) = %d, want 200", len(state))
	}
}

// --- transition accounting edge cases (PR 2 satellite) ---

// TestOCallTimerAttribution verifies the OCall crossing time lands on the
// "sgx.ocall" profiler timer, the series Figure 7 is rebuilt from.
func TestOCallTimerAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	reg := prof.NewRegistry()
	cost := 200 * time.Microsecond
	e := newTestEnclave(t, func(c *Config) {
		c.TransitionCost = cost
		c.Prof = reg
	})
	err := e.ECall("main", func() error {
		return e.OCall("io", func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if got := reg.Timer("sgx.ocall"); got < 2*cost {
		t.Errorf("sgx.ocall timer = %v, want >= %v (two crossings)", got, 2*cost)
	}
	if got := reg.Counter("sgx.ocall"); got != 1 {
		t.Errorf("sgx.ocall counter = %d, want 1", got)
	}
}

// TestSwitchlessTimerAttribution verifies ring rides are attributed to the
// separate "sgx.switchless" timer, not "sgx.ocall", so the two series stay
// distinguishable.
func TestSwitchlessTimerAttribution(t *testing.T) {
	reg := prof.NewRegistry()
	e := newTestEnclave(t, func(c *Config) { c.Prof = reg })
	e.EnableSwitchless(ringConfig())
	err := e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		return e.SwitchlessOCall("io", 0, func() error { return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if got := reg.Counter("sgx.switchless"); got != 1 {
		t.Errorf("sgx.switchless counter = %d, want 1", got)
	}
	if got := reg.Counter("sgx.switchless.wakeup"); got != 1 {
		t.Errorf("sgx.switchless.wakeup counter = %d, want 1", got)
	}
	if got := reg.Counter("sgx.ocall"); got != 1 { // the cold fallback only
		t.Errorf("sgx.ocall counter = %d, want 1", got)
	}
}

// TestOCallInsideOCallBody: the body of an OCall runs outside the enclave,
// so issuing another OCall from it must fail like any outside-issued OCall.
func TestOCallInsideOCallBody(t *testing.T) {
	e := newTestEnclave(t)
	err := e.ECall("main", func() error {
		return e.OCall("outer", func() error {
			return e.OCall("inner", func() error { return nil })
		})
	})
	if !errors.Is(err, ErrOutsideEnclave) {
		t.Errorf("OCall inside OCall body = %v, want ErrOutsideEnclave", err)
	}
}

func TestEnableSwitchlessIdempotent(t *testing.T) {
	e := newTestEnclave(t)
	r1 := e.EnableSwitchless(ringConfig())
	r2 := e.EnableSwitchless(DefaultSwitchlessConfig(e.Config()))
	if r1 != r2 {
		t.Error("EnableSwitchless replaced an existing ring")
	}
	if e.Switchless() != r1 {
		t.Error("Switchless() did not return the attached ring")
	}
}
