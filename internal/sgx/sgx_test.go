package sgx

import (
	"errors"
	"testing"
	"time"
)

func newTestEnclave(t *testing.T, mutate ...func(*Config)) *Enclave {
	t.Helper()
	cfg := TestConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	e, err := NewPlatform("test").NewEnclave(cfg, []byte("enclave-code"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	return e
}

func TestECallRunsInside(t *testing.T) {
	e := newTestEnclave(t)
	var inside bool
	err := e.ECall("probe", func() error {
		inside = e.Inside()
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if !inside {
		t.Error("Inside() = false during ECall")
	}
	if e.Inside() {
		t.Error("Inside() = true after ECall returned")
	}
	if got := e.Stats().ECalls; got != 1 {
		t.Errorf("ECalls = %d, want 1", got)
	}
}

func TestECallPropagatesError(t *testing.T) {
	e := newTestEnclave(t)
	want := errors.New("boom")
	if err := e.ECall("fail", func() error { return want }); !errors.Is(err, want) {
		t.Errorf("ECall error = %v, want %v", err, want)
	}
}

func TestNestedECallRejected(t *testing.T) {
	e := newTestEnclave(t)
	err := e.ECall("outer", func() error {
		return e.ECall("inner", func() error { return nil })
	})
	if !errors.Is(err, ErrInsideEnclave) {
		t.Errorf("nested ECall error = %v, want ErrInsideEnclave", err)
	}
}

func TestOCallRequiresEnclaveContext(t *testing.T) {
	e := newTestEnclave(t)
	if err := e.OCall("bad", func() error { return nil }); !errors.Is(err, ErrOutsideEnclave) {
		t.Errorf("OCall outside = %v, want ErrOutsideEnclave", err)
	}
}

func TestOCallExitsAndReenters(t *testing.T) {
	e := newTestEnclave(t)
	var during, after bool
	err := e.ECall("entry", func() error {
		oerr := e.OCall("io", func() error {
			during = e.Inside()
			return nil
		})
		after = e.Inside()
		return oerr
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if during {
		t.Error("Inside() = true during OCall body")
	}
	if !after {
		t.Error("Inside() = false after OCall returned")
	}
	if got := e.Stats().OCalls; got != 1 {
		t.Errorf("OCalls = %d, want 1", got)
	}
}

func TestDestroyedEnclaveRejectsEntry(t *testing.T) {
	e := newTestEnclave(t)
	e.Destroy()
	if err := e.ECall("x", func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Errorf("ECall after destroy = %v, want ErrDestroyed", err)
	}
	e.Destroy() // idempotent
}

func TestTransitionCostIsPaid(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cost := 200 * time.Microsecond
	e := newTestEnclave(t, func(c *Config) { c.TransitionCost = cost })
	start := time.Now()
	_ = e.ECall("timed", func() error { return nil })
	if elapsed := time.Since(start); elapsed < 2*cost {
		t.Errorf("ECall took %v, want >= %v (two crossings)", elapsed, 2*cost)
	}
}

func TestMeasurementDependsOnCode(t *testing.T) {
	p := NewPlatform("m")
	a, _ := p.NewEnclave(TestConfig(), []byte("code-a"))
	b, _ := p.NewEnclave(TestConfig(), []byte("code-b"))
	c, _ := p.NewEnclave(TestConfig(), []byte("code-a"))
	if a.Measurement() == b.Measurement() {
		t.Error("different code produced the same measurement")
	}
	if a.Measurement() != c.Measurement() {
		t.Error("same code produced different measurements")
	}
}

func TestMeasurementDependsOnConfig(t *testing.T) {
	p := NewPlatform("m")
	cfg1 := TestConfig()
	cfg2 := TestConfig()
	cfg2.Debug = true
	a, _ := p.NewEnclave(cfg1, []byte("code"))
	b, _ := p.NewEnclave(cfg2, []byte("code"))
	if a.Measurement() == b.Measurement() {
		t.Error("debug flag not reflected in measurement")
	}
}

func TestInvalidConfigs(t *testing.T) {
	p := NewPlatform("cfg")
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero EPC usable", func(c *Config) { c.EPCUsable = 0 }},
		{"usable exceeds total", func(c *Config) { c.EPCUsable = c.EPCSize + 1 }},
		{"zero heap", func(c *Config) { c.HeapSize = 0 }},
		{"tiny EPC", func(c *Config) { c.EPCUsable = PageSize }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TestConfig()
			tc.mutate(&cfg)
			if _, err := p.NewEnclave(cfg, nil); err == nil {
				t.Error("NewEnclave accepted invalid config")
			}
		})
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.EPCSize != 128<<20 {
		t.Errorf("EPCSize = %d, want 128 MiB", cfg.EPCSize)
	}
	if cfg.EPCUsable != 93<<20 {
		t.Errorf("EPCUsable = %d, want 93 MiB", cfg.EPCUsable)
	}
	if cfg.Mode != ModeHardware {
		t.Errorf("Mode = %v, want hardware", cfg.Mode)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeHardware.String() != "hardware" || ModeSimulation.String() != "simulation" {
		t.Error("Mode.String mismatch")
	}
	if HeapSystem.String() != "system" || HeapPool.String() != "pool" {
		t.Error("HeapMode.String mismatch")
	}
	if Mode(42).String() == "" || HeapMode(42).String() == "" {
		t.Error("unknown values must still render")
	}
}
