package sgx

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestSealEmptyPlaintext: an empty payload round-trips — the blob still
// carries nonce+tag, still authenticates the label, and unseals to an
// empty (possibly nil) slice.
func TestSealEmptyPlaintext(t *testing.T) {
	e := newTestEnclave(t)
	blob, err := e.Seal("empty", nil)
	if err != nil {
		t.Fatalf("Seal(nil): %v", err)
	}
	if len(blob) == 0 {
		t.Fatal("empty plaintext sealed to an empty blob; nonce+tag missing")
	}
	pt, err := e.Unseal("empty", blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if len(pt) != 0 {
		t.Errorf("Unseal of empty plaintext = %d bytes", len(pt))
	}
	if _, err := e.Unseal("not-empty", blob); err == nil {
		t.Error("empty-plaintext blob unsealed under the wrong label")
	}
}

// TestSealSnapshotSizedPayload: multi-MB payloads (the swap tier seals
// instance snapshots) round-trip bit-exactly, and a single flipped bit
// anywhere in a large blob is rejected.
func TestSealSnapshotSizedPayload(t *testing.T) {
	e := newTestEnclave(t)
	payload := make([]byte, 3<<20) // 3 MiB: snapshot territory
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal("swap:tenant:0", payload)
	if err != nil {
		t.Fatalf("Seal(3MiB): %v", err)
	}
	pt, err := e.Unseal("swap:tenant:0", blob)
	if err != nil {
		t.Fatalf("Unseal(3MiB): %v", err)
	}
	if !bytes.Equal(pt, payload) {
		t.Fatal("3MiB payload did not round-trip bit-exactly")
	}
	// Tamper with one bit in the middle of the ciphertext.
	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)/2] ^= 0x01
	if _, err := e.Unseal("swap:tenant:0", tampered); err == nil {
		t.Error("tampered multi-MB blob unsealed successfully")
	}
}

// TestSealNonceUniqueness: repeated seals of the same (label, plaintext)
// must produce distinct blobs — nonce reuse under one AES-GCM key is
// catastrophic, and the swap tier re-seals the same worker label on every
// suspend.
func TestSealNonceUniqueness(t *testing.T) {
	e := newTestEnclave(t)
	const seals = 256
	nonceLen := 12 // standard GCM nonce size; Seal prefixes it
	seen := make(map[string]int, seals)
	for i := 0; i < seals; i++ {
		blob, err := e.Seal("swap:worker:7", []byte("identical plaintext"))
		if err != nil {
			t.Fatalf("Seal #%d: %v", i, err)
		}
		if len(blob) < nonceLen {
			t.Fatalf("blob #%d shorter than a nonce (%d bytes)", i, len(blob))
		}
		n := string(blob[:nonceLen])
		if prev, dup := seen[n]; dup {
			t.Fatalf("nonce reused across seals #%d and #%d of the same label", prev, i)
		}
		seen[n] = i
	}
}

// TestSealKeyCacheTransparent: the per-label cache must be semantically
// invisible — the cached key equals a fresh derivation, and distinct
// labels still get distinct keys.
func TestSealKeyCacheTransparent(t *testing.T) {
	e := newTestEnclave(t)
	first := e.SealKey("cache-check")
	again := e.SealKey("cache-check") // served from the cache
	if first != again {
		t.Fatal("cached SealKey differs from first derivation")
	}
	if fresh := e.deriveSealKey("cache-check"); fresh != first {
		t.Fatal("cached SealKey differs from an uncached derivation")
	}
	if e.SealKey("cache-check") == e.SealKey("other-label") {
		t.Fatal("distinct labels yielded identical keys")
	}
}

// BenchmarkSealKey prices the per-label cache: "cached" is the SealKey
// hot path after first use, "derive" is what every Seal/Unseal paid
// before the cache (two HMAC-SHA256 passes per call).
func BenchmarkSealKey(b *testing.B) {
	e := newBenchEnclave(b)
	b.Run("cached", func(b *testing.B) {
		e.SealKey("hot-label") // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.SealKey("hot-label")
		}
	})
	b.Run("derive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = e.deriveSealKey("hot-label")
		}
	})
}

func newBenchEnclave(b *testing.B) *Enclave {
	b.Helper()
	p := NewPlatform("bench-platform")
	e, err := p.NewEnclave(TestConfig(), []byte("bench enclave"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Destroy() })
	return e
}
