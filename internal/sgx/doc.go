// Package sgx simulates Intel Software Guard Extensions (SGX) enclaves in
// pure Go, closely following the cost model that drives the TWINE paper's
// evaluation (ICDE'21, §III-A and §V):
//
//   - an enclave page cache (EPC) of limited size (128 MiB on the paper's
//     SGX1 testbed, ~93 MiB usable); touching a non-resident enclave page
//     triggers paging whose cost is paid with real AES work over the 4 KiB
//     page, so workloads larger than the EPC slow down exactly where the
//     paper's curves bend;
//   - expensive enclave transitions: ECALLs and OCALLs burn a calibrated
//     amount of CPU (the paper cites up to 13,100 cycles per crossing);
//   - switchless OCALLs (PR 2, after the follow-up paper "A Comprehensive
//     Trusted Runtime for WebAssembly with Intel SGX"): a bounded
//     request/response ring drained by an untrusted worker goroutine, so
//     hot host calls pay a small enqueue cost instead of two crossings —
//     see SwitchlessRing;
//   - an in-enclave heap allocator whose "system" mode reproduces the
//     above-linear allocation cost the paper observed (§IV-C), and a
//     "pool" mode reproducing the preallocated memsys3-style buffer that
//     TWINE uses to avoid it;
//   - measurement (MRENCLAVE), sealing keys bound to (platform, enclave)
//     and remote attestation through a simulated quoting/attestation
//     service;
//   - hardware vs simulation modes, mirroring SGX HW/SW builds (Figure 6):
//     simulation mode performs no memory-protection work.
//
// # Cost-model invariants
//
// Costs are paid with busy CPU work (never sleeps), so they show up in
// wall-clock measurements the way hardware costs do. The invariants later
// layers rely on:
//
//   - paging state (faults, evictions, the clock hand) advances only
//     through Memory.Touch and friends, never as a side effect of timing,
//     so identical touch sequences give bit-identical Stats regardless of
//     execution speed — the contract behind the EPC-TLB and switchless
//     differential tests;
//   - every boundary crossing is counted: Stats.OCalls counts real
//     two-transition calls (including switchless fallbacks) and
//     Stats.SwitchlessCalls counts ring rides, so with switchless disabled
//     the counters are bit-identical to the pre-switchless runtime and
//     with it enabled OCalls + SwitchlessCalls is conserved for unbatched
//     workloads;
//   - transition time is attributed to the "sgx.ocall" profiler timer and
//     ring time to "sgx.switchless", from which Figure 7's OCALL series is
//     reconstructed.
//
// The package is intentionally single-threaded per enclave, like the
// benchmarks in the paper: an Enclave and its Memory must not be used from
// multiple goroutines concurrently. The switchless worker is the one
// deliberate exception — it runs host closures on its own goroutine while
// the enclave thread blocks on the response handshake, which is exactly
// the synchronisation the hardware feature provides.
package sgx
