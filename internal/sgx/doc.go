// Package sgx simulates Intel Software Guard Extensions (SGX) enclaves in
// pure Go, closely following the cost model that drives the TWINE paper's
// evaluation (ICDE'21, §III-A and §V):
//
//   - an enclave page cache (EPC) of limited size (128 MiB on the paper's
//     SGX1 testbed, ~93 MiB usable); touching a non-resident enclave page
//     triggers paging whose cost is paid with real AES work over the 4 KiB
//     page, so workloads larger than the EPC slow down exactly where the
//     paper's curves bend;
//   - expensive enclave transitions: ECALLs and OCALLs burn a calibrated
//     amount of CPU (the paper cites up to 13,100 cycles per crossing);
//   - switchless OCALLs (PR 2, after the follow-up paper "A Comprehensive
//     Trusted Runtime for WebAssembly with Intel SGX"): a bounded
//     request/response ring drained by an untrusted worker goroutine, so
//     hot host calls pay a small enqueue cost instead of two crossings —
//     see SwitchlessRing;
//   - an in-enclave heap allocator whose "system" mode reproduces the
//     above-linear allocation cost the paper observed (§IV-C), and a
//     "pool" mode reproducing the preallocated memsys3-style buffer that
//     TWINE uses to avoid it;
//   - measurement (MRENCLAVE), sealing keys bound to (platform, enclave)
//     and remote attestation through a simulated quoting/attestation
//     service;
//   - hardware vs simulation modes, mirroring SGX HW/SW builds (Figure 6):
//     simulation mode performs no memory-protection work.
//
// # Cost-model invariants
//
// Costs are paid with busy CPU work (never sleeps), so they show up in
// wall-clock measurements the way hardware costs do. The invariants later
// layers rely on:
//
//   - paging state (faults, evictions, the clock hand) advances only
//     through Memory.Touch and friends, never as a side effect of timing,
//     so identical touch sequences give bit-identical Stats regardless of
//     execution speed — the contract behind the EPC-TLB and switchless
//     differential tests;
//   - every boundary crossing is counted: Stats.OCalls counts real
//     two-transition calls (including switchless fallbacks) and
//     Stats.SwitchlessCalls counts ring rides, so with switchless disabled
//     the counters are bit-identical to the pre-switchless runtime and
//     with it enabled OCalls + SwitchlessCalls is conserved for unbatched
//     workloads;
//   - transition time is attributed to the "sgx.ocall" profiler timer and
//     ring time to "sgx.switchless", from which Figure 7's OCALL series is
//     reconstructed.
//
// # Concurrency: the TCS pool (PR 3)
//
// Real SGX enclaves multiplex concurrent ECALLs over a fixed set of
// thread control structures (TCS): each ECALL binds one TCS for its whole
// duration (including its OCALLs — the outstanding frame keeps the TCS
// reserved for re-entry), and an ECALL that finds every TCS busy waits.
// The simulation models exactly that with Config.TCSNum: ECalls from
// distinct goroutines execute concurrently up to the TCS bound, excess
// callers park FIFO-ish on the pool, and Stats gains TCSWaits (saturated
// entries), TCSBusy and TCSMaxBusy (occupancy high-water mark).
//
// Concurrency invariants the concurrent runtime relies on:
//
//   - Enclave entry points (ECall, OCall, SwitchlessOCall) and all
//     counters are safe for concurrent use; paging is serialised by a
//     per-Memory lock (the EPC and its reclaim path are one shared
//     resource per enclave on hardware too) while the paging generation
//     is published atomically, so internal/wasm's EPC-TLB fast path
//     remains a single lock-free load;
//   - with TCSNum == 1 every entry serialises and the ECALL/OCALL/fault/
//     eviction counters of a sequential workload are bit-identical to
//     the pre-concurrency runtime (guarded by internal/core's fidelity
//     tests);
//   - the switchless ring admits requests from any number of enclave
//     threads, arrival-ordered under the ring lock; a request admitted
//     to the ring is always served, even when Destroy races the enqueue
//     (the poison request queues behind all admitted work);
//   - Destroy drains: it rejects new entries, wakes TCS waiters with
//     ErrDestroyed, and blocks until in-flight ECALLs exit before
//     scrubbing memory.
//
// Same-goroutine re-entry is still rejected (TWINE exposes a single entry
// point, §IV-C); nested ECALLs require distinct goroutines, each paying
// its own TCS.
//
// # Fault containment (PR 6)
//
// Two knobs keep a saturated or failing enclave from hanging its
// callers. Config.TCSWaitTimeout bounds how long an ECall parks waiting
// for a free TCS: on expiry it returns ErrTCSTimeout (counted in
// Stats.TCSTimeouts) instead of queueing unboundedly — the enclave-level
// analogue of the serving pool's admission control, and the signal a
// server uses to shed load. SwitchlessConfig.DrainChaos lets tests
// inject deterministic stalls into the untrusted drain worker (only the
// stall component applies; injected errors are ignored, because the
// drain executing a host call it was handed must not corrupt its
// result) — the harness behind the Destroy-during-stalled-drain and
// result-preservation tests in switchless_chaos_test.go.
//
// # Instance-granularity reclamation hooks (PR 9)
//
// The core-layer swap tier suspends whole idle instances instead of
// letting the clock sweep reclaim their pages one at a time. The
// primitives it builds on live here:
//
//   - Memory.Discard is EREMOVE, not EWB: it drops a range to
//     pageAbsent without touching the fault/eviction counters or paying
//     page-crypto work — releasing a suspended instance's arena is
//     free, only bringing it back (ELDU, via Touch) is priced;
//   - Memory.RangeResidency reports per-arena resident and referenced
//     page counts — the working-set signal victim selection sorts by
//     (a page still marked referenced survived the last clock sweep);
//   - Enclave.Seal/Unseal protect the suspended state in untrusted
//     storage (AES-256-GCM, label as AAD); SealKey memoises the derived
//     per-label key, so steady-state suspends pay AES over the delta,
//     not key derivation (sealkey_bench_test.go shows the win).
package sgx
