package sgx

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Platform models one SGX-capable processor: the source of the fused root
// secret from which sealing and attestation keys are derived. Two enclaves
// running the same code on the same Platform share sealing identity; the
// same code on different Platforms does not.
type Platform struct {
	id        [16]byte
	rootKey   [32]byte
	attestKey [32]byte
}

// NewPlatform creates a platform whose secrets are derived from seed.
// Deterministic seeding keeps tests and experiments reproducible; treat the
// seed as the fused secret.
func NewPlatform(seed string) *Platform {
	p := &Platform{}
	root := sha256.Sum256([]byte("twine-platform-root:" + seed))
	p.rootKey = root
	id := sha256.Sum256([]byte("twine-platform-id:" + seed))
	copy(p.id[:], id[:16])
	p.attestKey = hkdf(p.rootKey[:], nil, []byte("attestation-key"))
	return p
}

// ID returns the platform's public identifier (analogous to the EPID/PPID
// identity that Intel's attestation service keys on).
func (p *Platform) ID() [16]byte { return p.id }

// ReportDataSize is the user-data capacity of a report (as in SGX).
const ReportDataSize = 64

// Report is the locally produced enclave identity statement.
type Report struct {
	Measurement [32]byte
	Debug       bool
	Data        [ReportDataSize]byte
}

// Quote is a report signed by the platform's quoting identity. Verifiable
// only through an AttestationService that knows the platform.
type Quote struct {
	Report     Report
	PlatformID [16]byte
	MAC        [32]byte
}

// ReportFor builds a report for the enclave with caller-chosen report data
// (typically a hash of a public key for channel binding). Extra data beyond
// ReportDataSize is rejected rather than truncated.
func (e *Enclave) ReportFor(data []byte) (Report, error) {
	if len(data) > ReportDataSize {
		return Report{}, fmt.Errorf("sgx: report data %d bytes exceeds %d", len(data), ReportDataSize)
	}
	r := Report{Measurement: e.measurement, Debug: e.cfg.Debug}
	copy(r.Data[:], data)
	return r, nil
}

// Quote signs the enclave's report with the platform's attestation key,
// playing the role of the quoting enclave.
func (p *Platform) Quote(e *Enclave, data []byte) (Quote, error) {
	if e.platform != p {
		return Quote{}, fmt.Errorf("sgx: enclave does not run on this platform")
	}
	r, err := e.ReportFor(data)
	if err != nil {
		return Quote{}, err
	}
	q := Quote{Report: r, PlatformID: p.id}
	q.MAC = p.macReport(r)
	return q, nil
}

func (p *Platform) macReport(r Report) [32]byte {
	mac := hmac.New(sha256.New, p.attestKey[:])
	mac.Write(r.Measurement[:])
	if r.Debug {
		mac.Write([]byte{1})
	} else {
		mac.Write([]byte{0})
	}
	mac.Write(r.Data[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// AttestationService simulates the remote attestation authority (Intel's
// IAS/DCAP): it knows which platforms are genuine and can confirm that a
// quote was produced by a genuine platform.
type AttestationService struct {
	mu        sync.Mutex
	platforms map[[16]byte]*Platform
}

// NewAttestationService returns an empty service.
func NewAttestationService() *AttestationService {
	return &AttestationService{platforms: make(map[[16]byte]*Platform)}
}

// Register enrolls a platform as genuine.
func (s *AttestationService) Register(p *Platform) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[p.id] = p
}

// Verify checks that q was produced by a registered platform and has not
// been tampered with. On success the caller may trust q.Report.
func (s *AttestationService) Verify(q Quote) error {
	s.mu.Lock()
	p, ok := s.platforms[q.PlatformID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: unknown platform", ErrBadQuote)
	}
	want := p.macReport(q.Report)
	if !hmac.Equal(want[:], q.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrBadQuote)
	}
	return nil
}

// ExpectedMeasurement is a helper for verifiers: it checks a verified
// report against a known-good enclave measurement and refuses debug
// enclaves.
func ExpectedMeasurement(r Report, want [32]byte) error {
	if r.Debug {
		return fmt.Errorf("%w: debug enclave", ErrBadQuote)
	}
	if !bytes.Equal(r.Measurement[:], want[:]) {
		return fmt.Errorf("%w: measurement mismatch", ErrBadQuote)
	}
	return nil
}
