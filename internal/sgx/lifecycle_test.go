package sgx

import "testing"

// lifecycleMemory builds a bare Memory with a 4-page EPC over a 64-page
// enclave, the smallest geometry in which every clock behaviour
// (fault, second chance, downgrade, eviction) is reachable in a handful
// of touches.
func lifecycleMemory(t *testing.T) *Memory {
	t.Helper()
	m, err := newMemory(Config{
		Mode:      ModeSimulation, // counts only; no AES cost in unit tests
		EPCUsable: 4 * PageSize,
		HeapSize:  64 * PageSize,
	})
	if err != nil {
		t.Fatalf("newMemory: %v", err)
	}
	return m
}

// TestPageLifecycleExactCounts drives the clock through its full state
// machine and asserts the exact fault/eviction/resident counters after
// every step. These counts are the fidelity contract the interpreter's
// EPC-TLB relies on: any change here means the paging model moved and
// the TLB's correctness argument must be re-checked.
func TestPageLifecycleExactCounts(t *testing.T) {
	steps := []struct {
		name      string
		page      int64 // page to touch
		faults    int64 // cumulative expectations after the touch
		evictions int64
		resident  int
		// referenced lists pages that must hold a second chance after
		// the step; resident lists pages that must be in-EPC but swept.
		referenced []int64
		swept      []int64
		absent     []int64
	}{
		{name: "fault p0", page: 0, faults: 1, evictions: 0, resident: 1,
			referenced: []int64{0}},
		{name: "fault p1", page: 1, faults: 2, evictions: 0, resident: 2,
			referenced: []int64{0, 1}},
		{name: "fault p2", page: 2, faults: 3, evictions: 0, resident: 3,
			referenced: []int64{0, 1, 2}},
		{name: "fault p3 fills EPC", page: 3, faults: 4, evictions: 0, resident: 4,
			referenced: []int64{0, 1, 2, 3}},
		{name: "re-touch p0 is free", page: 0, faults: 4, evictions: 0, resident: 4,
			referenced: []int64{0, 1, 2, 3}},
		// p4 faults into a full EPC: the clock sweeps p0..p3 down to
		// resident (consuming their second chances), wraps, and evicts
		// p0 — the textbook second-chance outcome.
		{name: "fault p4 evicts p0", page: 4, faults: 5, evictions: 1, resident: 4,
			referenced: []int64{4}, swept: []int64{1, 2, 3}, absent: []int64{0}},
		{name: "re-reference p1", page: 1, faults: 5, evictions: 1, resident: 4,
			referenced: []int64{1, 4}, swept: []int64{2, 3}, absent: []int64{0}},
		// p0 faults again: the hand sits at p1, which spends its fresh
		// second chance, so p2 (plain resident) is the victim.
		{name: "fault p0 evicts p2", page: 0, faults: 6, evictions: 2, resident: 4,
			referenced: []int64{0, 4}, swept: []int64{1, 3}, absent: []int64{2}},
	}

	m := lifecycleMemory(t)
	for _, st := range steps {
		if err := m.Touch(st.page*PageSize, 1); err != nil {
			t.Fatalf("%s: Touch: %v", st.name, err)
		}
		if m.Faults() != st.faults {
			t.Errorf("%s: faults = %d, want %d", st.name, m.Faults(), st.faults)
		}
		if m.Evictions() != st.evictions {
			t.Errorf("%s: evictions = %d, want %d", st.name, m.Evictions(), st.evictions)
		}
		if m.Resident() != st.resident {
			t.Errorf("%s: resident = %d, want %d", st.name, m.Resident(), st.resident)
		}
		for _, p := range st.referenced {
			if !m.Referenced(p) {
				t.Errorf("%s: page %d not referenced (state %s)", st.name, p, m.PageState(p))
			}
		}
		for _, p := range st.swept {
			if got := m.PageState(p); got != "resident" {
				t.Errorf("%s: page %d state = %s, want resident", st.name, p, got)
			}
		}
		for _, p := range st.absent {
			if got := m.PageState(p); got != "absent" {
				t.Errorf("%s: page %d state = %s, want absent", st.name, p, got)
			}
		}
	}
}

// TestGenerationBumpsOnlyOnRegression pins down the generation-counter
// contract: gen moves exactly when page state can regress (a sweep/evict
// or a scrub) and never on faults into a non-full EPC or on reference
// upgrades. The EPC-TLB is sound if and only if this holds.
func TestGenerationBumpsOnlyOnRegression(t *testing.T) {
	m := lifecycleMemory(t)
	g0 := m.Gen()

	// Faults without eviction: gen must not move.
	for p := int64(0); p < 4; p++ {
		_ = m.Touch(p*PageSize, 1)
	}
	if m.Gen() != g0 {
		t.Fatalf("gen moved on fill-only faults: %d -> %d", g0, m.Gen())
	}

	// Upgrading a swept page back to referenced must not move gen either.
	_ = m.Touch(0, 1)
	if m.Gen() != g0 {
		t.Fatalf("gen moved on a no-op touch: %d -> %d", g0, m.Gen())
	}

	// An eviction must bump gen (here: exactly once per evict call).
	_ = m.Touch(4*PageSize, 1)
	if m.Gen() != g0+1 {
		t.Fatalf("gen = %d after one eviction, want %d", m.Gen(), g0+1)
	}
	if m.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", m.Evictions())
	}

	// The page evicted by the sweep is no longer referenced, and the
	// generation change is what tells TLB holders to notice.
	if m.Referenced(0) {
		t.Error("victim page still reports referenced")
	}

	// Scrub is a total regression: gen must move.
	g1 := m.Gen()
	m.scrub()
	if m.Gen() <= g1 {
		t.Errorf("gen = %d after scrub, want > %d", m.Gen(), g1)
	}
	if m.Resident() != 0 {
		t.Errorf("resident = %d after scrub, want 0", m.Resident())
	}
}

// TestReferencedMatchesTouchNoOp verifies the exact property the
// interpreter's TLB depends on: while Referenced(p) holds and Gen() is
// unchanged, a Touch of that page alters no counters.
func TestReferencedMatchesTouchNoOp(t *testing.T) {
	m := lifecycleMemory(t)
	_ = m.Touch(2*PageSize, 8)
	if !m.Referenced(2) {
		t.Fatal("page 2 not referenced after touch")
	}
	g, f, ev := m.Gen(), m.Faults(), m.Evictions()
	for i := 0; i < 100; i++ {
		_ = m.Touch(2*PageSize+int64(i*8), 8)
	}
	if m.Gen() != g || m.Faults() != f || m.Evictions() != ev {
		t.Errorf("re-touch of a referenced page changed state: gen %d->%d faults %d->%d evictions %d->%d",
			g, m.Gen(), f, m.Faults(), ev, m.Evictions())
	}
}

// TestReferencedOutOfRange exercises the bounds handling of the view
// accessors.
func TestReferencedOutOfRange(t *testing.T) {
	m := lifecycleMemory(t)
	if m.Referenced(-1) || m.Referenced(1<<30) {
		t.Error("out-of-range pages report referenced")
	}
	if got := m.PageState(-1); got != "out-of-range" {
		t.Errorf("PageState(-1) = %q", got)
	}
}

// TestViewTouchTranslates checks that a pre-translated view charges the
// underlying memory at base+off.
func TestViewTouchTranslates(t *testing.T) {
	m := lifecycleMemory(t)
	v := m.ViewAt(8 * PageSize)
	v.Touch(0, 1)
	if !m.Referenced(8) {
		t.Error("view touch at offset 0 did not reference page 8")
	}
	v.Touch(2*PageSize, 1)
	if !m.Referenced(10) {
		t.Error("view touch at offset 2 pages did not reference page 10")
	}
}
