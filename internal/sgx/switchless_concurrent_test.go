package sgx

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newRingEnclave(t *testing.T, tcs, slots int) *Enclave {
	t.Helper()
	cfg := TestConfig()
	cfg.TCSNum = tcs
	p := NewPlatform("ring-conc")
	e, err := p.NewEnclave(cfg, []byte("ring"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	e.EnableSwitchless(SwitchlessConfig{
		Slots:      slots,
		MaxPayload: 32 << 10,
		WorkerIdle: time.Second, // stay hot for the whole test
	})
	return e
}

// TestSwitchlessConcurrentEnqueuers hammers the ring from several enclave
// threads at once. Every request must be served exactly once (the served
// count equals the issued count), and the ring/fallback split must
// conserve: each issued request is either a ring ride or a classic OCall.
func TestSwitchlessConcurrentEnqueuers(t *testing.T) {
	const tcs, callers, perCaller = 4, 4, 200
	e := newRingEnclave(t, tcs, 8)
	defer e.Destroy()

	var served int64
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := e.ECall("main", func() error {
				for i := 0; i < perCaller; i++ {
					if err := e.SwitchlessOCall("host.op", 64, func() error {
						atomic.AddInt64(&served, 1)
						return nil
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("ECall: %v", err)
			}
		}()
	}
	wg.Wait()

	total := int64(callers * perCaller)
	if got := atomic.LoadInt64(&served); got != total {
		t.Errorf("served %d requests, issued %d", got, total)
	}
	s := e.Stats()
	if s.SwitchlessCalls+s.FallbackOCalls != total {
		t.Errorf("conservation: ring %d + fallback %d != issued %d",
			s.SwitchlessCalls, s.FallbackOCalls, total)
	}
	if s.OCalls != s.FallbackOCalls {
		t.Errorf("OCalls = %d, want %d (all classic calls here are fallbacks)",
			s.OCalls, s.FallbackOCalls)
	}
	if s.SwitchlessCalls == 0 {
		t.Error("no request rode the ring; the hot path never engaged")
	}
}

// TestSwitchlessFairnessUnderContention checks arrival-order service:
// with several enqueuers contending, no caller starves — every goroutine
// finishes its quota while the others keep submitting.
func TestSwitchlessFairnessUnderContention(t *testing.T) {
	const callers, perCaller = 3, 150
	e := newRingEnclave(t, callers, 4)
	defer e.Destroy()

	finished := make([]int64, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := e.ECall("main", func() error {
				for i := 0; i < perCaller; i++ {
					if err := e.SwitchlessOCall("host.op", 16, func() error { return nil }); err != nil {
						return err
					}
					atomic.AddInt64(&finished[g], 1)
				}
				return nil
			})
			if err != nil {
				t.Errorf("ECall[%d]: %v", g, err)
			}
		}()
	}
	wg.Wait()
	for g := range finished {
		if finished[g] != perCaller {
			t.Errorf("caller %d finished %d/%d requests", g, finished[g], perCaller)
		}
	}
}

// TestSwitchlessDestroyRacingEnqueues is the lost-wakeup regression test:
// Destroy fires while enclave threads are mid-enqueue. Every caller must
// return (served, fallen back, or ErrDestroyed) — none may block forever
// on a response that never comes — and Destroy itself must complete.
func TestSwitchlessDestroyRacingEnqueues(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := newRingEnclave(t, 4, 4)

		const callers = 4
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_ = e.ECall("main", func() error {
					for {
						err := e.SwitchlessOCall("host.op", 32, func() error { return nil })
						if err != nil {
							if !errors.Is(err, ErrDestroyed) {
								t.Errorf("unexpected enqueue error: %v", err)
							}
							return err
						}
					}
				})
			}()
		}
		close(start)
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		destroyed := make(chan struct{})
		go func() {
			e.Destroy()
			close(destroyed)
		}()

		doneAll := make(chan struct{})
		go func() {
			wg.Wait()
			close(doneAll)
		}()
		select {
		case <-doneAll:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: enqueuers still blocked 10s after Destroy — lost wakeup", round)
		}
		select {
		case <-destroyed:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: Destroy did not complete", round)
		}
	}
}
