package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the enclave's protected linear memory. Its layout is:
//
//	[0, reservedSize)              reserved-memory region (code loading)
//	[reservedSize, len(data))      enclave heap
//
// Every access must pass through Touch (directly or via the Read/Write
// helpers) so the EPC residency model can charge paging costs. Page
// residency is tracked with a clock (second-chance) policy, an adequate
// stand-in for the SGX driver's EPC reclaim behaviour.
//
// In ModeHardware, loading a page into the EPC and evicting one out both
// pay the cost of AES processing over the 4 KiB page, approximating the
// memory-encryption-engine plus EWB/ELDU work that makes EPC paging
// expensive on real hardware. In ModeSimulation the model is bypassed.
type Memory struct {
	data []byte

	// reservedBytes is the size of the reserved-memory region at the
	// bottom of enclave memory; set by newReserved before the allocator
	// is built.
	reservedBytes int64

	// mu serialises the paging state machine (pageState, resident, hand)
	// so concurrent ECALLs can touch memory safely. The TLB fast path in
	// internal/wasm never takes it: a page proven referenced at the
	// current generation is skipped on a single atomic load of gen.
	mu          sync.Mutex
	mode        Mode
	pageState   []uint8 // pageAbsent / pageResident / pageReferenced
	maxResident int
	resident    int
	hand        int

	// gen is the paging generation. It is bumped only when page state can
	// regress — a clock sweep downgrading referenced pages, an eviction, or
	// a scrub — never on faults or reference upgrades. While gen is stable a
	// referenced page therefore stays referenced, so a caller that proved a
	// page referenced at generation g may skip further touches of that page
	// for as long as Gen() == g: those touches would be no-ops. This is what
	// lets the Wasm interpreter keep a software EPC-TLB of hot pages.
	//
	// Written only under mu (with atomic stores); read lock-free with
	// atomic loads, so the EPC-TLB hot path costs one load even while
	// other enclave threads page.
	gen uint64

	faults    int64 // atomic
	evictions int64 // atomic

	block   cipher.Block
	scratch [PageSize]byte // guarded by mu (paging cost cipher buffer)
}

const (
	pageAbsent uint8 = iota
	pageResident
	pageReferenced
)

func newMemory(cfg Config) (*Memory, error) {
	total := cfg.ReservedSize + cfg.HeapSize
	if total%PageSize != 0 {
		return nil, fmt.Errorf("sgx: enclave memory size %d is not page aligned", total)
	}
	m := &Memory{
		data:        make([]byte, total),
		mode:        cfg.Mode,
		pageState:   make([]uint8, total/PageSize),
		maxResident: int(cfg.EPCUsable / PageSize),
		gen:         1,
	}
	if m.maxResident < 2 {
		return nil, fmt.Errorf("sgx: EPC usable size %d too small", cfg.EPCUsable)
	}
	// The paging cost cipher. The key's value is irrelevant (the work is
	// what matters); a fixed key keeps the model deterministic.
	block, err := aes.NewCipher([]byte("twine-epc-paging-cost-key-32by!!"))
	if err != nil {
		return nil, err
	}
	m.block = block
	return m, nil
}

// Size returns the total enclave memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// Faults returns the number of EPC page faults so far.
func (m *Memory) Faults() int64 { return atomic.LoadInt64(&m.faults) }

// Evictions returns the number of EPC page evictions so far.
func (m *Memory) Evictions() int64 { return atomic.LoadInt64(&m.evictions) }

// Resident returns the number of currently resident EPC pages.
func (m *Memory) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident
}

// Gen returns the current paging generation (see the field comment).
func (m *Memory) Gen() uint64 { return atomic.LoadUint64(&m.gen) }

// GenRef returns a stable pointer to the paging generation so hot paths
// can poll it with a single atomic load instead of a call. The word is
// only written under the paging lock; concurrent readers must use atomic
// loads (internal/wasm's EPC-TLB does).
func (m *Memory) GenRef() *uint64 { return &m.gen }

// Referenced reports whether enclave page p currently holds a second
// chance (the clock has not swept it since its last access). Touching a
// referenced page is a no-op; combined with Gen this lets callers prove a
// touch redundant.
func (m *Memory) Referenced(p int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return p >= 0 && p < int64(len(m.pageState)) && m.pageState[p] == pageReferenced
}

// PageState returns the residency state of page p as one of "absent",
// "resident" or "referenced" (a debugging/introspection view).
func (m *Memory) PageState(p int64) string {
	if p < 0 || p >= int64(len(m.pageState)) {
		return "out-of-range"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.pageState[p] {
	case pageReferenced:
		return "referenced"
	case pageResident:
		return "resident"
	default:
		return "absent"
	}
}

// Touch marks the byte range [off, off+n) as accessed, faulting in any
// non-resident pages and paying the associated paging cost. It returns
// ErrBounds if the range falls outside enclave memory. Touch is safe for
// concurrent use; the paging state machine is serialised, mirroring the
// EPC (and its reclaim path) being a shared per-enclave resource on
// hardware.
func (m *Memory) Touch(off, n int64) error {
	if n <= 0 {
		return nil
	}
	if off < 0 || off+n > int64(len(m.data)) {
		return fmt.Errorf("%w: [%d, %d) of %d", ErrBounds, off, off+n, len(m.data))
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	m.mu.Lock()
	for p := first; p <= last; p++ {
		switch m.pageState[p] {
		case pageReferenced:
			// Hot page: nothing to do.
		case pageResident:
			m.pageState[p] = pageReferenced
		default:
			m.fault(int(p))
		}
	}
	m.mu.Unlock()
	return nil
}

// fault brings page p into the EPC, evicting a victim if the EPC is full.
// Called with mu held.
func (m *Memory) fault(p int) {
	atomic.AddInt64(&m.faults, 1)
	if m.resident >= m.maxResident {
		m.evict()
	}
	if m.mode == ModeHardware {
		m.pageWork(p) // ELDU: decrypt + integrity-check the incoming page.
	}
	m.pageState[p] = pageReferenced
	m.resident++
}

// evict selects a victim with the clock algorithm and pays the EWB
// (encrypt + write back) cost for it. Both things the sweep does — the
// referenced→resident downgrade and the eviction itself — can regress
// page state, so the paging generation is bumped here (once per sweep,
// before any state changes). Called with mu held; the bump is an atomic
// store so lock-free TLB readers observe it before any regressed state
// can matter to them.
func (m *Memory) evict() {
	atomic.AddUint64(&m.gen, 1)
	for {
		if m.hand >= len(m.pageState) {
			m.hand = 0
		}
		switch m.pageState[m.hand] {
		case pageReferenced:
			m.pageState[m.hand] = pageResident
		case pageResident:
			victim := m.hand
			m.pageState[victim] = pageAbsent
			m.resident--
			atomic.AddInt64(&m.evictions, 1)
			if m.mode == ModeHardware {
				m.pageWork(victim)
			}
			m.hand++
			return
		}
		m.hand++
	}
}

// pageWork performs one page's worth of AES as the paging cost. ECB over
// the scratch buffer, in place: no allocation, deterministic, and close
// in magnitude to the MEE work per 4 KiB. The live page bytes are
// deliberately not read — the data value is irrelevant to the cost model,
// and an evicted victim may belong to another enclave thread's arena that
// is being written concurrently. Called with mu held.
func (m *Memory) pageWork(p int) {
	_ = p
	for i := 0; i < PageSize; i += aes.BlockSize {
		m.block.Encrypt(m.scratch[i:i+aes.BlockSize], m.scratch[i:i+aes.BlockSize])
	}
}

// Discard removes the pages covering [off, off+n) from the EPC without
// paying eviction cost — EREMOVE semantics, not EWB: the owner declares
// the contents dead (a released guest arena, a suspended instance whose
// state now lives in a sealed blob), so there is nothing to encrypt and
// write back, and no fault or eviction is counted. Page state can regress
// (referenced → absent), so the paging generation is bumped — once, if
// anything changed — before the state changes, keeping the EPC-TLB
// contract: a TLB entry proven at the old generation never survives a
// discard. Only pages fully contained in the range are discarded; the
// contents of the backing bytes are untouched (Allocator.Free owns reuse,
// scrub owns wiping).
func (m *Memory) Discard(off, n int64) {
	if n <= 0 {
		return
	}
	if off < 0 {
		off = 0
	}
	end := off + n
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	first := (off + PageSize - 1) / PageSize
	last := end/PageSize - 1
	if first > last {
		return
	}
	m.mu.Lock()
	bumped := false
	for p := first; p <= last; p++ {
		if m.pageState[p] == pageAbsent {
			continue
		}
		if !bumped {
			atomic.AddUint64(&m.gen, 1)
			bumped = true
		}
		m.pageState[p] = pageAbsent
		m.resident--
	}
	m.mu.Unlock()
}

// RangeResidency counts the EPC pages of [off, off+n) that are currently
// resident, and how many of those hold a second chance (referenced — the
// clock has not swept them since their last access). It is the
// per-instance working-set probe behind swap-tier victim selection: an
// instance whose arena has few referenced pages is cold, one with many
// resident pages is expensive to keep. Pages partially covered by the
// range are counted.
func (m *Memory) RangeResidency(off, n int64) (resident, referenced int) {
	if n <= 0 {
		return 0, 0
	}
	if off < 0 {
		off = 0
	}
	end := off + n
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	first := off / PageSize
	last := (end - 1) / PageSize
	m.mu.Lock()
	for p := first; p <= last; p++ {
		switch m.pageState[p] {
		case pageReferenced:
			resident++
			referenced++
		case pageResident:
			resident++
		}
	}
	m.mu.Unlock()
	return resident, referenced
}

// Read copies len(p) bytes from enclave memory at off into p.
func (m *Memory) Read(off int64, p []byte) error {
	if err := m.Touch(off, int64(len(p))); err != nil {
		return err
	}
	copy(p, m.data[off:])
	return nil
}

// Write copies p into enclave memory at off.
func (m *Memory) Write(off int64, p []byte) error {
	if err := m.Touch(off, int64(len(p))); err != nil {
		return err
	}
	copy(m.data[off:], p)
	return nil
}

// Slice returns a view of enclave memory [off, off+n) after touching it.
// The returned slice aliases enclave memory; it is valid until the enclave
// is destroyed. Callers on hot paths use Slice to avoid copies, paying the
// EPC model once per call rather than per byte.
func (m *Memory) Slice(off, n int64) ([]byte, error) {
	if err := m.Touch(off, n); err != nil {
		return nil, err
	}
	return m.data[off : off+n : off+n], nil
}

// Zero clears [off, off+n). It models an in-enclave memset: the work is
// real and the pages are touched.
func (m *Memory) Zero(off, n int64) error {
	if err := m.Touch(off, n); err != nil {
		return err
	}
	s := m.data[off : off+n]
	for i := range s {
		s[i] = 0
	}
	return nil
}

// scrub wipes all memory on destroy. The caller (Destroy) has already
// drained the TCS pool, so no enclave thread is executing.
func (m *Memory) scrub() {
	m.mu.Lock()
	defer m.mu.Unlock()
	atomic.AddUint64(&m.gen, 1)
	for i := range m.data {
		m.data[i] = 0
	}
	for i := range m.pageState {
		m.pageState[i] = pageAbsent
	}
	m.resident = 0
}

// View is a window of enclave memory starting at a fixed, pre-translated
// base offset. TWINE reserves one arena per guest instance and installs
// view.Touch as the linear-memory hook, so the hot path adds the arena
// base exactly once per access with no captured-instance indirection.
type View struct {
	m    *Memory
	base int64
}

// ViewAt returns a view whose offset 0 is enclave offset base.
func (m *Memory) ViewAt(base int64) View { return View{m: m, base: base} }

// Touch charges the access [off, off+n) of the view against the EPC
// model. Errors are impossible for in-arena accesses (the caller bounds
// checks against the guest memory, which the arena fully covers), so the
// signature matches the runtime's touch hook directly.
func (v View) Touch(off, n int64) {
	_ = v.m.Touch(v.base+off, n)
}
