package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// Memory is the enclave's protected linear memory. Its layout is:
//
//	[0, reservedSize)              reserved-memory region (code loading)
//	[reservedSize, len(data))      enclave heap
//
// Every access must pass through Touch (directly or via the Read/Write
// helpers) so the EPC residency model can charge paging costs. Page
// residency is tracked with a clock (second-chance) policy, an adequate
// stand-in for the SGX driver's EPC reclaim behaviour.
//
// In ModeHardware, loading a page into the EPC and evicting one out both
// pay the cost of AES processing over the 4 KiB page, approximating the
// memory-encryption-engine plus EWB/ELDU work that makes EPC paging
// expensive on real hardware. In ModeSimulation the model is bypassed.
type Memory struct {
	data []byte

	// reservedBytes is the size of the reserved-memory region at the
	// bottom of enclave memory; set by newReserved before the allocator
	// is built.
	reservedBytes int64

	mode        Mode
	pageState   []uint8 // pageAbsent / pageResident / pageReferenced
	maxResident int
	resident    int
	hand        int

	faults    int64
	evictions int64

	block   cipher.Block
	scratch [PageSize]byte
}

const (
	pageAbsent uint8 = iota
	pageResident
	pageReferenced
)

func newMemory(cfg Config) (*Memory, error) {
	total := cfg.ReservedSize + cfg.HeapSize
	if total%PageSize != 0 {
		return nil, fmt.Errorf("sgx: enclave memory size %d is not page aligned", total)
	}
	m := &Memory{
		data:        make([]byte, total),
		mode:        cfg.Mode,
		pageState:   make([]uint8, total/PageSize),
		maxResident: int(cfg.EPCUsable / PageSize),
	}
	if m.maxResident < 2 {
		return nil, fmt.Errorf("sgx: EPC usable size %d too small", cfg.EPCUsable)
	}
	// The paging cost cipher. The key's value is irrelevant (the work is
	// what matters); a fixed key keeps the model deterministic.
	block, err := aes.NewCipher([]byte("twine-epc-paging-cost-key-32by!!"))
	if err != nil {
		return nil, err
	}
	m.block = block
	return m, nil
}

// Size returns the total enclave memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// Faults returns the number of EPC page faults so far.
func (m *Memory) Faults() int64 { return m.faults }

// Evictions returns the number of EPC page evictions so far.
func (m *Memory) Evictions() int64 { return m.evictions }

// Resident returns the number of currently resident EPC pages.
func (m *Memory) Resident() int { return m.resident }

// Touch marks the byte range [off, off+n) as accessed, faulting in any
// non-resident pages and paying the associated paging cost. It returns
// ErrBounds if the range falls outside enclave memory.
func (m *Memory) Touch(off, n int64) error {
	if n <= 0 {
		return nil
	}
	if off < 0 || off+n > int64(len(m.data)) {
		return fmt.Errorf("%w: [%d, %d) of %d", ErrBounds, off, off+n, len(m.data))
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		switch m.pageState[p] {
		case pageReferenced:
			// Hot page: nothing to do.
		case pageResident:
			m.pageState[p] = pageReferenced
		default:
			m.fault(int(p))
		}
	}
	return nil
}

// fault brings page p into the EPC, evicting a victim if the EPC is full.
func (m *Memory) fault(p int) {
	m.faults++
	if m.resident >= m.maxResident {
		m.evict()
	}
	if m.mode == ModeHardware {
		m.pageWork(p) // ELDU: decrypt + integrity-check the incoming page.
	}
	m.pageState[p] = pageReferenced
	m.resident++
}

// evict selects a victim with the clock algorithm and pays the EWB
// (encrypt + write back) cost for it.
func (m *Memory) evict() {
	for {
		if m.hand >= len(m.pageState) {
			m.hand = 0
		}
		switch m.pageState[m.hand] {
		case pageReferenced:
			m.pageState[m.hand] = pageResident
		case pageResident:
			victim := m.hand
			m.pageState[victim] = pageAbsent
			m.resident--
			m.evictions++
			if m.mode == ModeHardware {
				m.pageWork(victim)
			}
			m.hand++
			return
		}
		m.hand++
	}
}

// pageWork performs one page's worth of AES as the paging cost. ECB over
// the page into a scratch buffer: no allocation, deterministic, and close
// in magnitude to the MEE work per 4 KiB.
func (m *Memory) pageWork(p int) {
	src := m.data[p*PageSize : (p+1)*PageSize]
	for i := 0; i < PageSize; i += aes.BlockSize {
		m.block.Encrypt(m.scratch[i:i+aes.BlockSize], src[i:i+aes.BlockSize])
	}
}

// Read copies len(p) bytes from enclave memory at off into p.
func (m *Memory) Read(off int64, p []byte) error {
	if err := m.Touch(off, int64(len(p))); err != nil {
		return err
	}
	copy(p, m.data[off:])
	return nil
}

// Write copies p into enclave memory at off.
func (m *Memory) Write(off int64, p []byte) error {
	if err := m.Touch(off, int64(len(p))); err != nil {
		return err
	}
	copy(m.data[off:], p)
	return nil
}

// Slice returns a view of enclave memory [off, off+n) after touching it.
// The returned slice aliases enclave memory; it is valid until the enclave
// is destroyed. Callers on hot paths use Slice to avoid copies, paying the
// EPC model once per call rather than per byte.
func (m *Memory) Slice(off, n int64) ([]byte, error) {
	if err := m.Touch(off, n); err != nil {
		return nil, err
	}
	return m.data[off : off+n : off+n], nil
}

// Zero clears [off, off+n). It models an in-enclave memset: the work is
// real and the pages are touched.
func (m *Memory) Zero(off, n int64) error {
	if err := m.Touch(off, n); err != nil {
		return err
	}
	s := m.data[off : off+n]
	for i := range s {
		s[i] = 0
	}
	return nil
}

// scrub wipes all memory on destroy.
func (m *Memory) scrub() {
	for i := range m.data {
		m.data[i] = 0
	}
	for i := range m.pageState {
		m.pageState[i] = pageAbsent
	}
	m.resident = 0
}
