package sgx

import (
	"sync"
	"testing"
	"time"

	"twine/internal/chaos"
)

// batchRingConfig is ringConfig with batched cold-start admission enabled
// (PR 8).
func batchRingConfig() SwitchlessConfig {
	cfg := ringConfig()
	cfg.Batch = true
	return cfg
}

// With batching the cold-start request rides the ring instead of taking the
// SDK's cold-worker fallback: one wakeup, zero classic OCalls.
func TestSwitchlessBatchColdStartRidesRing(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(batchRingConfig())
	var ran bool
	err := e.ECall("main", func() error {
		return e.SwitchlessOCall("io", 16, func() error { ran = true; return nil })
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if !ran {
		t.Fatal("request was not served")
	}
	st := e.Stats()
	if st.WorkerWakeups != 1 || st.FallbackOCalls != 0 || st.SwitchlessCalls != 1 {
		t.Errorf("stats = %+v, want 1 wakeup + 1 ring ride + 0 fallbacks", st)
	}
	if st.OCalls != 0 {
		t.Errorf("OCalls = %d, want 0 (the cold start rode the ring)", st.OCalls)
	}
	if st.BatchedWakeups != 0 {
		t.Errorf("BatchedWakeups = %d, want 0 (a lone request has nothing to batch with)", st.BatchedWakeups)
	}
}

// The conservation law holds with batching on: every request is exactly one
// of a ring ride or a real OCall, so Calls + fallback OCalls == requests.
func TestSwitchlessBatchConservation(t *testing.T) {
	e := newTestEnclave(t)
	e.EnableSwitchless(batchRingConfig())
	const n = 10
	err := e.ECall("main", func() error {
		for i := 0; i < n; i++ {
			if err := e.SwitchlessOCall("io", 16, func() error { return nil }); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	st := e.Stats()
	if st.OCalls+st.SwitchlessCalls != n {
		t.Errorf("OCalls(%d) + SwitchlessCalls(%d) != %d requests", st.OCalls, st.SwitchlessCalls, n)
	}
	if st.FallbackOCalls != 0 {
		t.Errorf("FallbackOCalls = %d, want 0 with batching on", st.FallbackOCalls)
	}
}

// Requests admitted while the drain worker is busy with an earlier request
// pile up behind it and share its wakeup: the second follower must observe a
// non-empty ring and be counted in BatchedWakeups.
func TestSwitchlessBatchAmortisesWakeups(t *testing.T) {
	e := newTestEnclave(t, func(c *Config) { c.TCSNum = 4 })
	cfg := batchRingConfig()
	// Stall the worker on the leader's request so the followers are
	// admitted while it is still held: the ring stays non-empty for the
	// whole stall window.
	cfg.DrainChaos = chaos.New(chaos.Plan{At: 1, Stall: 200 * time.Millisecond})
	r := e.EnableSwitchless(cfg)

	call := func(done chan<- error) {
		done <- e.ECall("main", func() error {
			return e.SwitchlessOCall("io", 16, func() error { return nil })
		})
	}
	waitCalls := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for r.Stats().Calls < want {
			if time.Now().After(deadline) {
				t.Fatalf("ring never admitted %d calls: %+v", want, r.Stats())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	leader := make(chan error, 1)
	go call(leader)
	waitCalls(1) // leader admitted; the worker dequeues it and stalls

	f1 := make(chan error, 1)
	go call(f1)
	waitCalls(2) // first follower queued behind the stalled drain

	f2 := make(chan error, 1)
	go call(f2)
	waitCalls(3) // second follower joins a non-empty ring → batched

	for _, ch := range []chan error{leader, f1, f2} {
		if err := <-ch; err != nil {
			t.Fatalf("batched call: %v", err)
		}
	}
	st := e.Stats()
	if st.WorkerWakeups != 1 {
		t.Errorf("WorkerWakeups = %d, want 1 (one wakeup for the whole batch)", st.WorkerWakeups)
	}
	if st.BatchedWakeups < 1 {
		t.Errorf("BatchedWakeups = %d, want >= 1 (f2 joined a non-empty ring)", st.BatchedWakeups)
	}
	if st.SwitchlessCalls != 3 || st.FallbackOCalls != 0 {
		t.Errorf("stats = %+v, want all 3 requests on the ring", st)
	}
}

// Concurrent hammer with batching on: admission, wakeup election and poison
// shutdown share the ring lock, so this is the -race coverage for the new
// admission path.
func TestSwitchlessBatchConcurrent(t *testing.T) {
	e := newTestEnclave(t, func(c *Config) { c.TCSNum = 4 })
	e.EnableSwitchless(batchRingConfig())
	const (
		goroutines = 4
		perG       = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := e.ECall("main", func() error {
					return e.SwitchlessOCall("io", 16, func() error { return nil })
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent batched call: %v", err)
	}
	st := e.Stats()
	if got := st.OCalls + st.SwitchlessCalls; got != goroutines*perG {
		t.Errorf("OCalls + SwitchlessCalls = %d, want %d (conservation)", got, goroutines*perG)
	}
	e.Destroy()
	if err := e.ECall("late", func() error { return nil }); err == nil {
		t.Error("ECall after Destroy succeeded")
	}
}
