package sgx

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Allocator manages the enclave heap (the region of Memory above the
// reserved area). It implements two strategies, selected by Config.HeapMode:
//
//   - HeapSystem reproduces the SGX SDK allocator behaviour observed in the
//     paper (§IV-C): freshly committed pages must be zeroed, and each heap
//     growth performs bookkeeping proportional to the already-committed
//     heap, which makes N growing allocations cost above-linear in total.
//   - HeapPool reproduces TWINE's preallocated-buffer configuration
//     (SQLite's memsys3): the whole heap is committed and zeroed once at
//     start-up, so each allocation is a cheap free-list operation.
//
// Blocks carry a 16-byte header written into enclave memory itself
// ({size, state}), so invalid frees and double frees are detectable.
//
// The allocator is safe for concurrent use: instances of a concurrent
// runtime carve their arenas (and the protected FS its node-buffer
// arena) while other enclave threads run.
type Allocator struct {
	mem  *Memory
	mode HeapMode

	mu sync.Mutex

	base int64 // first heap byte (after reserved region)
	end  int64 // one past last heap byte
	brk  int64 // high-water mark of committed memory

	free map[int64]int64 // offset -> block size (payload) of freed blocks

	committedPages int64
	pageDirectory  []uint8 // bookkeeping structure walked on growth (HeapSystem)

	allocs int64
	frees  int64
	inUse  int64
}

const (
	allocHeaderSize = 16
	allocMagicLive  = 0xA11C0C0DE
	allocMagicFree  = 0xF4EE0C0DE
)

func newAllocator(mem *Memory, mode HeapMode) *Allocator {
	a := &Allocator{
		mem:  mem,
		mode: mode,
		free: make(map[int64]int64),
	}
	// The reserved region occupies the bottom of enclave memory.
	a.base = mem.Size() - heapSizeOf(mem)
	a.end = mem.Size()
	a.brk = a.base
	a.pageDirectory = make([]uint8, (a.end-a.base)/PageSize)
	if mode == HeapPool {
		// Commit and clear the entire pool up front; this is the one-time
		// cost that makes later allocations cheap. brk still tracks the
		// allocation high-water mark — only the *commit* is eager.
		_ = mem.Zero(a.base, a.end-a.base)
		a.committedPages = (a.end - a.base) / PageSize
		for i := range a.pageDirectory {
			a.pageDirectory[i] = 1
		}
	}
	return a
}

// heapSizeOf recovers the heap size from the memory layout. The reserved
// region is created before the allocator, so the allocator derives its
// bounds from what remains.
func heapSizeOf(mem *Memory) int64 {
	return int64(len(mem.data)) - mem.reservedBytes
}

// Alloc reserves n bytes of enclave heap and returns the payload offset.
func (a *Allocator) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sgx: alloc of %d bytes", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n = align8(n)
	// First fit from the free list.
	for off, size := range a.free {
		if size >= n {
			delete(a.free, off)
			a.writeHeader(off, size, allocMagicLive)
			a.allocs++
			a.inUse += size
			return off + allocHeaderSize, nil
		}
	}
	// Grow from the break.
	need := n + allocHeaderSize
	if a.brk+need > a.end {
		return 0, ErrOutOfMemory
	}
	off := a.brk
	if a.mode == HeapSystem {
		a.commit(off, need)
	}
	a.brk += need
	a.writeHeader(off, n, allocMagicLive)
	a.allocs++
	a.inUse += n
	return off + allocHeaderSize, nil
}

// commit models committing fresh enclave pages in HeapSystem mode: the new
// pages are zeroed (EAUG semantics) and the allocator's page directory is
// re-walked, which is the above-linear component the paper measured.
func (a *Allocator) commit(off, n int64) {
	firstPage := (off - a.base) / PageSize
	lastPage := (off + n - 1 - a.base) / PageSize
	for p := firstPage; p <= lastPage; p++ {
		if a.pageDirectory[p] == 0 {
			a.pageDirectory[p] = 1
			a.committedPages++
			_ = a.mem.Zero(a.base+p*PageSize, PageSize)
		}
	}
	// Bookkeeping walk over all committed pages (checksum keeps the loop
	// from being optimised away).
	var sum uint8
	for p := int64(0); p <= lastPage; p++ {
		sum ^= a.pageDirectory[p]
	}
	a.pageDirectory[0] |= sum & 1
}

// Free releases the block whose payload starts at off.
func (a *Allocator) Free(off int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	hdr := off - allocHeaderSize
	if hdr < a.base || off >= a.brk {
		return fmt.Errorf("%w: offset %d outside heap", ErrBadFree, off)
	}
	size, magic, err := a.readHeader(hdr)
	if err != nil {
		return err
	}
	if magic != allocMagicLive {
		if magic == allocMagicFree {
			return fmt.Errorf("%w: double free at %d", ErrBadFree, off)
		}
		return fmt.Errorf("%w: corrupt header at %d", ErrBadFree, off)
	}
	a.writeHeader(hdr, size, allocMagicFree)
	a.free[hdr] = size
	a.frees++
	a.inUse -= size
	return nil
}

// Stats returns (allocations, frees, bytes in use).
func (a *Allocator) Stats() (allocs, frees, inUse int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.frees, a.inUse
}

// CommittedPages returns the number of heap pages committed so far.
func (a *Allocator) CommittedPages() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committedPages
}

// Base returns the first usable heap offset (useful for carving a single
// large arena out of the enclave, as the database variants do).
func (a *Allocator) Base() int64 { return a.base }

func (a *Allocator) writeHeader(off, size int64, magic uint64) {
	var h [allocHeaderSize]byte
	binary.LittleEndian.PutUint64(h[0:], uint64(size))
	binary.LittleEndian.PutUint64(h[8:], magic)
	_ = a.mem.Write(off, h[:])
}

func (a *Allocator) readHeader(off int64) (size int64, magic uint64, err error) {
	var h [allocHeaderSize]byte
	if err := a.mem.Read(off, h[:]); err != nil {
		return 0, 0, err
	}
	return int64(binary.LittleEndian.Uint64(h[0:])), binary.LittleEndian.Uint64(h[8:]), nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }
