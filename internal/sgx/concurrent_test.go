package sgx

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func newConcEnclave(t *testing.T, tcs int) *Enclave {
	t.Helper()
	cfg := TestConfig()
	cfg.TCSNum = tcs
	p := NewPlatform("conc-test")
	e, err := p.NewEnclave(cfg, []byte("conc"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	return e
}

// TestConcurrentECalls drives many goroutines through a small TCS pool:
// every call must complete, the ECALL counter must be exact, and observed
// occupancy must never exceed the pool size.
func TestConcurrentECalls(t *testing.T) {
	const tcs, callers, perCaller = 4, 16, 8
	e := newConcEnclave(t, tcs)
	defer e.Destroy()

	var cur, peak int64
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				err := e.ECall("work", func() error {
					n := atomic.AddInt64(&cur, 1)
					for {
						p := atomic.LoadInt64(&peak)
						if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
							break
						}
					}
					// Touch some enclave memory so the paging path runs
					// under contention too.
					if err := e.Memory().Touch(0, 8*PageSize); err != nil {
						return err
					}
					atomic.AddInt64(&cur, -1)
					return nil
				})
				if err != nil {
					t.Errorf("ECall: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s := e.Stats()
	if want := int64(callers * perCaller); s.ECalls != want {
		t.Errorf("ECalls = %d, want %d", s.ECalls, want)
	}
	if peak > tcs {
		t.Errorf("observed %d concurrent enclave threads, TCS pool is %d", peak, tcs)
	}
	if s.TCSMaxBusy > tcs {
		t.Errorf("TCSMaxBusy = %d exceeds pool size %d", s.TCSMaxBusy, tcs)
	}
	if s.TCSBusy != 0 {
		t.Errorf("TCSBusy = %d after all calls returned", s.TCSBusy)
	}
}

// TestTCSWaitCounted pins the saturation counter: with a single TCS, a
// second concurrent ECALL must park and be counted in TCSWaits.
func TestTCSWaitCounted(t *testing.T) {
	e := newConcEnclave(t, 1)
	defer e.Destroy()

	inside := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = e.ECall("holder", func() error {
			close(inside)
			<-release
			return nil
		})
	}()
	<-inside

	done := make(chan error, 1)
	go func() {
		done <- e.ECall("waiter", func() error { return nil })
	}()
	// The waiter can only complete after the holder releases.
	for e.Stats().TCSWaits == 0 {
		select {
		case err := <-done:
			t.Fatalf("waiter completed while TCS was held (err=%v)", err)
		default:
			runtime.Gosched()
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if s := e.Stats(); s.TCSWaits == 0 {
		t.Error("TCSWaits = 0, want at least 1")
	}
}

// TestNestedECallStillRejected keeps the single-entry contract: the same
// goroutine may not re-enter, while a different goroutine may.
func TestNestedECallStillRejected(t *testing.T) {
	e := newConcEnclave(t, 2)
	defer e.Destroy()

	err := e.ECall("outer", func() error {
		// Same goroutine: rejected.
		if nerr := e.ECall("inner", func() error { return nil }); !errors.Is(nerr, ErrInsideEnclave) {
			t.Errorf("same-goroutine nested ECall = %v, want ErrInsideEnclave", nerr)
		}
		// Different goroutine: its own TCS.
		other := make(chan error, 1)
		go func() {
			other <- e.ECall("sibling", func() error { return nil })
		}()
		if oerr := <-other; oerr != nil {
			t.Errorf("sibling-goroutine ECall = %v, want nil", oerr)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("outer ECall: %v", err)
	}
}

// TestDestroyWakesTCSWaiters: goroutines parked on a saturated pool must
// fail with ErrDestroyed instead of hanging when the enclave dies.
func TestDestroyWakesTCSWaiters(t *testing.T) {
	e := newConcEnclave(t, 1)

	inside := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		holderDone <- e.ECall("holder", func() error {
			close(inside)
			<-release
			return nil
		})
	}()
	<-inside

	waiterDone := make(chan error, 1)
	go func() {
		waiterDone <- e.ECall("waiter", func() error { return nil })
	}()
	for e.Stats().TCSWaits == 0 {
		runtime.Gosched()
	}

	// Destroy must first release the holder (it blocks until in-flight
	// calls drain), so let it go from a third goroutine once destruction
	// has begun rejecting new entries.
	go func() {
		for !e.isDestroyed() {
			runtime.Gosched()
		}
		close(release)
	}()
	e.Destroy()

	if err := <-waiterDone; !errors.Is(err, ErrDestroyed) {
		t.Errorf("parked waiter = %v, want ErrDestroyed", err)
	}
	if err := <-holderDone; err != nil {
		t.Errorf("holder = %v, want nil (it entered before Destroy)", err)
	}
	if err := e.ECall("late", func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Errorf("post-destroy ECall = %v, want ErrDestroyed", err)
	}
}

// TestConcurrentTouchConservation: concurrent touches of disjoint page
// sets must conserve fault accounting — every page faulted at least once,
// and residency never exceeds the EPC bound.
func TestConcurrentTouchConservation(t *testing.T) {
	cfg := TestConfig()
	cfg.TCSNum = 4
	cfg.EPCUsable = 64 << 10 // 16 resident pages: force churn
	p := NewPlatform("conc-touch")
	e, err := p.NewEnclave(cfg, []byte("conc"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	defer e.Destroy()

	const goroutines, pagesEach = 4, 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(g) * pagesEach * PageSize
			for round := 0; round < 8; round++ {
				for pg := int64(0); pg < pagesEach; pg++ {
					if err := e.Memory().Touch(base+pg*PageSize, 1); err != nil {
						t.Errorf("Touch: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	m := e.Memory()
	if m.Resident() > int(cfg.EPCUsable/PageSize) {
		t.Errorf("resident = %d pages, EPC holds %d", m.Resident(), cfg.EPCUsable/PageSize)
	}
	if m.Faults() < goroutines*pagesEach {
		t.Errorf("faults = %d, want at least %d (every page faults once)", m.Faults(), goroutines*pagesEach)
	}
	if m.Faults()-m.Evictions() != int64(m.Resident()) {
		t.Errorf("conservation violated: faults %d - evictions %d != resident %d",
			m.Faults(), m.Evictions(), m.Resident())
	}
}
