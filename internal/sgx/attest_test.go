package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	e := newTestEnclave(t)
	blob, err := e.Seal("db-key", []byte("top secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(blob, []byte("top secret")) {
		t.Fatal("sealed blob contains plaintext")
	}
	pt, err := e.Unseal("db-key", blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if string(pt) != "top secret" {
		t.Errorf("Unseal = %q", pt)
	}
}

func TestUnsealRejectsWrongLabel(t *testing.T) {
	e := newTestEnclave(t)
	blob, _ := e.Seal("a", []byte("x"))
	if _, err := e.Unseal("b", blob); err == nil {
		t.Error("Unseal with wrong label succeeded")
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	e := newTestEnclave(t)
	blob, _ := e.Seal("a", []byte("payload"))
	blob[len(blob)-1] ^= 0x01
	if _, err := e.Unseal("a", blob); err == nil {
		t.Error("Unseal of tampered blob succeeded")
	}
	if _, err := e.Unseal("a", blob[:4]); err == nil {
		t.Error("Unseal of truncated blob succeeded")
	}
}

// TestSealKeyPortability encodes the IPFS key-portability limitation from
// §IV-E: same enclave + same platform regenerates the key; a different
// platform or different enclave code cannot.
func TestSealKeyPortability(t *testing.T) {
	p1 := NewPlatform("cpu-1")
	p2 := NewPlatform("cpu-2")
	code := []byte("twine-enclave")
	e1a, _ := p1.NewEnclave(TestConfig(), code)
	e1b, _ := p1.NewEnclave(TestConfig(), code)
	e1c, _ := p1.NewEnclave(TestConfig(), []byte("other-code"))
	e2, _ := p2.NewEnclave(TestConfig(), code)

	k := func(e *Enclave) [32]byte { return e.SealKey("fs") }
	if k(e1a) != k(e1b) {
		t.Error("same code, same platform: keys differ")
	}
	if k(e1a) == k(e1c) {
		t.Error("different code, same platform: keys match")
	}
	if k(e1a) == k(e2) {
		t.Error("same code, different platform: keys match")
	}
	if e1a.SealKey("fs") == e1a.SealKey("other") {
		t.Error("different labels: keys match")
	}
}

func TestQuoteVerification(t *testing.T) {
	p := NewPlatform("genuine")
	e, _ := p.NewEnclave(TestConfig(), []byte("code"))
	svc := NewAttestationService()
	svc.Register(p)

	q, err := p.Quote(e, []byte("channel-binding"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := svc.Verify(q); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Tampered measurement must fail.
	bad := q
	bad.Report.Measurement[0] ^= 1
	if err := svc.Verify(bad); !errors.Is(err, ErrBadQuote) {
		t.Errorf("tampered quote verified: %v", err)
	}

	// Tampered report data must fail.
	bad = q
	bad.Report.Data[0] ^= 1
	if err := svc.Verify(bad); !errors.Is(err, ErrBadQuote) {
		t.Errorf("tampered report data verified: %v", err)
	}
}

func TestQuoteFromUnknownPlatformRejected(t *testing.T) {
	p := NewPlatform("rogue")
	e, _ := p.NewEnclave(TestConfig(), []byte("code"))
	svc := NewAttestationService() // rogue not registered
	q, _ := p.Quote(e, nil)
	if err := svc.Verify(q); !errors.Is(err, ErrBadQuote) {
		t.Errorf("quote from unknown platform verified: %v", err)
	}
}

func TestQuoteForeignEnclaveRejected(t *testing.T) {
	p1 := NewPlatform("a")
	p2 := NewPlatform("b")
	e, _ := p1.NewEnclave(TestConfig(), []byte("code"))
	if _, err := p2.Quote(e, nil); err == nil {
		t.Error("platform quoted an enclave it does not host")
	}
}

func TestReportDataSizeLimit(t *testing.T) {
	e := newTestEnclave(t)
	if _, err := e.ReportFor(make([]byte, ReportDataSize+1)); err == nil {
		t.Error("oversized report data accepted")
	}
	if _, err := e.ReportFor(make([]byte, ReportDataSize)); err != nil {
		t.Errorf("exact-size report data rejected: %v", err)
	}
}

func TestExpectedMeasurement(t *testing.T) {
	e := newTestEnclave(t)
	r, _ := e.ReportFor(nil)
	if err := ExpectedMeasurement(r, e.Measurement()); err != nil {
		t.Errorf("matching measurement rejected: %v", err)
	}
	var other [32]byte
	if err := ExpectedMeasurement(r, other); err == nil {
		t.Error("mismatched measurement accepted")
	}
	dbg := newTestEnclave(t, func(c *Config) { c.Debug = true })
	rd, _ := dbg.ReportFor(nil)
	if err := ExpectedMeasurement(rd, dbg.Measurement()); err == nil {
		t.Error("debug enclave accepted")
	}
}

func TestReservedMemoryLifecycle(t *testing.T) {
	e := newTestEnclave(t)
	r := e.Reserved()
	off, err := r.Load([]byte("wasm-aot-code"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	r.Protect(PermRX)
	if _, err := r.Load([]byte("more")); !errors.Is(err, ErrPerm) {
		t.Errorf("Load after PermRX = %v, want ErrPerm", err)
	}
	got, err := r.Bytes(off, 13)
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if string(got) != "wasm-aot-code" {
		t.Errorf("Bytes = %q", got)
	}
	if _, err := r.Bytes(off, 1<<30); !errors.Is(err, ErrBounds) {
		t.Errorf("oversized Bytes = %v, want ErrBounds", err)
	}
}

func TestReservedMemoryCapacity(t *testing.T) {
	cfg := TestConfig()
	cfg.ReservedSize = PageSize
	e, err := NewPlatform("r").NewEnclave(cfg, nil)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	if _, err := e.Reserved().Load(make([]byte, 2*PageSize)); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized Load = %v, want ErrOutOfMemory", err)
	}
}
