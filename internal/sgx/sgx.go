package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/prof"
)

// PageSize is the SGX enclave page granularity (4 KiB).
const PageSize = 4096

// Mode selects between the SGX hardware cost model and the software
// simulation mode (no memory protection, used by Figure 6's "SW" series).
type Mode int

const (
	// ModeHardware models real SGX: EPC paging and transition costs apply.
	ModeHardware Mode = iota
	// ModeSimulation models SGX "simulation/software mode": enclave
	// semantics are preserved but memory-protection work is skipped.
	ModeSimulation
)

func (m Mode) String() string {
	switch m {
	case ModeHardware:
		return "hardware"
	case ModeSimulation:
		return "simulation"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// HeapMode selects the in-enclave allocator strategy (§IV-C of the paper).
type HeapMode int

const (
	// HeapSystem models the SGX SDK allocator: committing fresh pages
	// requires zeroing plus bookkeeping that grows with the committed
	// heap, yielding the above-linear behaviour the paper measured.
	HeapSystem HeapMode = iota
	// HeapPool models a preallocated buffer (SQLITE_ENABLE_MEMSYS3 in the
	// paper): all pages are committed when the enclave starts, so
	// allocation is cheap.
	HeapPool
)

func (m HeapMode) String() string {
	switch m {
	case HeapSystem:
		return "system"
	case HeapPool:
		return "pool"
	default:
		return fmt.Sprintf("HeapMode(%d)", int(m))
	}
}

// Config describes an enclave to create. The zero value is not usable;
// start from DefaultConfig or TestConfig.
type Config struct {
	// Mode selects hardware or simulation cost model.
	Mode Mode
	// EPCSize is the total enclave page cache size in bytes.
	EPCSize int64
	// EPCUsable is the fraction of the EPC available to enclave pages
	// (the rest is consumed by SGX metadata). The paper's testbed: 128 MiB
	// EPC, 93 MiB usable.
	EPCUsable int64
	// HeapSize is the size of the enclave heap in bytes.
	HeapSize int64
	// ReservedSize is the size of the reserved-memory region used to load
	// executable artifacts (the Wasm AoT code) at run time (§IV-B).
	ReservedSize int64
	// TransitionCost is the one-way cost of crossing the enclave boundary.
	// An ECALL or OCALL pays it twice (exit + re-enter).
	TransitionCost time.Duration
	// TCSNum is the number of thread control structures: the bound on
	// concurrently executing ECALLs. Extra callers block until a TCS
	// frees (counted in Stats.TCSWaits). 0 selects DefaultTCSNum. A TCS
	// stays bound across the OCALLs of its ECALL, exactly as the SGX SDK
	// reserves the TCS for the outstanding enclave frame.
	TCSNum int
	// TCSWaitTimeout bounds how long an ECALL parks waiting for a free
	// TCS (0 = forever, the historical behaviour). On expiry the ECALL
	// fails with ErrTCSTimeout instead of queueing without bound — the
	// enclave-level half of PR 6's admission control (the pool-level half
	// is core.PoolConfig.MaxQueue/SubmitTimeout).
	TCSWaitTimeout time.Duration
	// HeapMode selects the allocator strategy.
	HeapMode HeapMode
	// Debug marks the enclave as debuggable; it is reflected in reports
	// so that attestation can reject debug enclaves.
	Debug bool
	// Prof optionally receives transition counts and timing.
	Prof *prof.Registry
}

// DefaultConfig mirrors the paper's testbed: 128 MiB EPC with 93 MiB
// usable, and a transition cost calibrated from the paper's 13,100 cycles
// at 3.8 GHz (~3.4 µs per round trip, so ~1.7 µs one way).
func DefaultConfig() Config {
	return Config{
		Mode:           ModeHardware,
		EPCSize:        128 << 20,
		EPCUsable:      93 << 20,
		HeapSize:       256 << 20,
		ReservedSize:   16 << 20,
		TransitionCost: 1700 * time.Nanosecond,
		HeapMode:       HeapPool,
	}
}

// TestConfig returns a small, fast configuration for unit tests: a tiny EPC
// so paging is easy to provoke, and free transitions so tests stay quick.
func TestConfig() Config {
	return Config{
		Mode:           ModeHardware,
		EPCSize:        1 << 20,
		EPCUsable:      768 << 10,
		HeapSize:       4 << 20,
		ReservedSize:   1 << 20,
		TransitionCost: 0,
		HeapMode:       HeapPool,
	}
}

// Package errors.
var (
	ErrDestroyed      = errors.New("sgx: enclave destroyed")
	ErrTCSTimeout     = errors.New("sgx: no TCS freed within the wait bound")
	ErrOutsideEnclave = errors.New("sgx: OCALL issued from outside the enclave")
	ErrInsideEnclave  = errors.New("sgx: ECALL issued from inside the enclave")
	ErrOutOfMemory    = errors.New("sgx: enclave out of memory")
	ErrBadFree        = errors.New("sgx: invalid free")
	ErrBounds         = errors.New("sgx: memory access out of enclave bounds")
	ErrPerm           = errors.New("sgx: permission denied on reserved memory")
	ErrBadQuote       = errors.New("sgx: quote verification failed")
)

// Stats reports enclave activity counters.
//
// OCalls counts real two-transition boundary crossings, including those
// taken as switchless fallbacks; SwitchlessCalls counts requests served by
// the ring without a crossing. Every request is exactly one of the two, so
// OCalls(switchless off) == OCalls + SwitchlessCalls (switchless on) — the
// conservation law internal/core's differential tests enforce. Batched
// admission (PR 8) preserves it: it only moves cold-start requests from
// the fallback column to the ring column.
//
// All counters are maintained with atomic operations, so Stats stays
// coherent while concurrent ECALLs execute on the TCS pool.
type Stats struct {
	ECalls     int64
	OCalls     int64
	PageFaults int64
	Evictions  int64
	// SwitchlessCalls is the number of OCALLs served through the
	// switchless ring (no enclave transition).
	SwitchlessCalls int64
	// FallbackOCalls is the number of would-be switchless calls that took
	// the classic path (ring full, worker parked, oversized payload). They
	// are included in OCalls.
	FallbackOCalls int64
	// WorkerWakeups counts signals to a parked switchless worker.
	WorkerWakeups int64
	// BatchedWakeups counts ring admissions that joined requests already
	// staged in the ring and so shared a wakeup another caller paid
	// (switchless batched admission, PR 8). 0 unless
	// SwitchlessConfig.Batch is enabled.
	BatchedWakeups int64
	// TCSWaits counts ECALLs that found every TCS busy and had to park
	// until a slot freed — the enclave's saturation signal.
	TCSWaits int64
	// TCSTimeouts counts parked ECALLs abandoned on TCSWaitTimeout.
	TCSTimeouts int64
	// TCSBusy is the number of TCS bound at the instant of the snapshot.
	TCSBusy int64
	// TCSMaxBusy is the high-water mark of simultaneously bound TCS.
	TCSMaxBusy int64
}

// Enclave is a simulated SGX enclave: a measured, isolated memory region
// with explicit entry/exit points. ECalls from distinct goroutines execute
// concurrently, bounded by the TCS pool; ECalls, OCalls and Stats are safe
// for concurrent use. EnableSwitchless and Destroy are lifecycle
// operations: enable the ring before spinning up concurrent callers, and
// Destroy blocks until every in-flight ECALL has drained.
type Enclave struct {
	cfg         Config
	platform    *Platform
	mem         *Memory
	alloc       *Allocator
	reserved    *Reserved
	measurement [32]byte
	sealRoot    [32]byte

	// sealKeys caches per-label derived sealing keys. Key derivation is
	// pure (platform, measurement, label) — the cache can never go stale —
	// and the swap tier seals/unseals under a small set of per-worker
	// labels on its hot path, so the HKDF runs once per label instead of
	// once per Seal/Unseal.
	sealMu   sync.RWMutex
	sealKeys map[string][32]byte

	tcs  *tcsPool
	gate goroutineGate // rejects same-goroutine ECALL re-entry

	inside    int64 // atomic: logical threads currently inside the enclave
	destroyed int32 // atomic flag; destroyCh is closed alongside it
	destroyCh chan struct{}

	destroyOnce sync.Once

	ecalls int64 // atomic
	ocalls int64 // atomic

	ring *SwitchlessRing // nil until EnableSwitchless
}

// NewEnclave creates and initialises an enclave on platform p. The code
// argument is the enclave binary; it determines the measurement
// (MRENCLAVE) exactly as SGX hashes enclave contents at creation.
func (p *Platform) NewEnclave(cfg Config, code []byte) (*Enclave, error) {
	if cfg.EPCUsable <= 0 || cfg.EPCUsable > cfg.EPCSize {
		return nil, fmt.Errorf("sgx: invalid EPC configuration (size=%d usable=%d)", cfg.EPCSize, cfg.EPCUsable)
	}
	if cfg.HeapSize <= 0 {
		return nil, errors.New("sgx: heap size must be positive")
	}
	e := &Enclave{cfg: cfg, platform: p, destroyCh: make(chan struct{}), sealKeys: make(map[string][32]byte)}
	e.tcs = newTCSPool(cfg.TCSNum)
	e.measurement = measure(cfg, code)
	e.sealRoot = p.deriveSealRoot(e.measurement)
	mem, err := newMemory(cfg)
	if err != nil {
		return nil, err
	}
	e.mem = mem
	// The reserved region claims the bottom of enclave memory; the
	// allocator manages everything above it, so order matters here.
	e.reserved = newReserved(mem, cfg.ReservedSize)
	e.alloc = newAllocator(mem, cfg.HeapMode)
	return e, nil
}

// measure computes the MRENCLAVE-equivalent: a SHA-256 over the enclave
// code and the security-relevant configuration.
func measure(cfg Config, code []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("twine-sgx-measurement-v1"))
	var meta [17]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(cfg.HeapSize))
	binary.LittleEndian.PutUint64(meta[8:], uint64(cfg.ReservedSize))
	if cfg.Debug {
		meta[16] = 1
	}
	h.Write(meta[:])
	h.Write(code)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Measurement returns the enclave's MRENCLAVE-equivalent hash.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Config returns the enclave's configuration.
func (e *Enclave) Config() Config { return e.cfg }

// Memory returns the enclave's protected memory.
func (e *Enclave) Memory() *Memory { return e.mem }

// Allocator returns the in-enclave heap allocator.
func (e *Enclave) Allocator() *Allocator { return e.alloc }

// Reserved returns the reserved-memory region used for loading code.
func (e *Enclave) Reserved() *Reserved { return e.reserved }

// Stats returns a coherent copy of the enclave activity counters.
func (e *Enclave) Stats() Stats {
	s := Stats{
		ECalls:      atomic.LoadInt64(&e.ecalls),
		OCalls:      atomic.LoadInt64(&e.ocalls),
		PageFaults:  e.mem.Faults(),
		Evictions:   e.mem.Evictions(),
		TCSWaits:    atomic.LoadInt64(&e.tcs.waits),
		TCSBusy:     atomic.LoadInt64(&e.tcs.busy),
		TCSMaxBusy:  atomic.LoadInt64(&e.tcs.maxBusy),
		TCSTimeouts: atomic.LoadInt64(&e.tcs.timeouts),
	}
	if e.ring != nil {
		rs := e.ring.Stats()
		s.SwitchlessCalls = rs.Calls
		s.FallbackOCalls = rs.Fallbacks
		s.WorkerWakeups = rs.Wakeups
		s.BatchedWakeups = rs.BatchedWakeups
	}
	return s
}

// TCSCount returns the size of the enclave's TCS pool.
func (e *Enclave) TCSCount() int { return e.tcs.size }

// Inside reports whether any logical thread is currently executing inside
// the enclave. (With concurrent ECALLs this is a global property, not a
// per-goroutine one; the per-goroutine re-entry check lives in ECall.)
func (e *Enclave) Inside() bool { return atomic.LoadInt64(&e.inside) > 0 }

func (e *Enclave) isDestroyed() bool { return atomic.LoadInt32(&e.destroyed) != 0 }

// ECall enters the enclave, runs fn inside it, and exits. It pays the
// transition cost in both directions and is the only way in, mirroring
// SGX's ECALL mechanism. ECalls may not be nested on one goroutine (TWINE
// enclaves expose a single entry and do not re-enter, §IV-C), but ECalls
// from distinct goroutines run concurrently, each bound to a TCS; when
// every TCS is busy the call blocks until one frees.
func (e *Enclave) ECall(name string, fn func() error) error {
	if e.isDestroyed() {
		return ErrDestroyed
	}
	id := goid()
	if !e.gate.enter(id) {
		return fmt.Errorf("%w: %s", ErrInsideEnclave, name)
	}
	defer e.gate.exit(id)
	if err := e.tcs.acquire(e.destroyCh, e.cfg.TCSWaitTimeout); err != nil {
		return err
	}
	defer e.tcs.release()
	if e.isDestroyed() {
		// Destroy won the race while we were parked on the TCS pool.
		return ErrDestroyed
	}
	atomic.AddInt64(&e.ecalls, 1)
	e.cfg.Prof.Incr("sgx.ecall")
	e.transition()
	atomic.AddInt64(&e.inside, 1)
	err := fn()
	atomic.AddInt64(&e.inside, -1)
	e.transition()
	return err
}

// OCall exits the enclave, runs fn outside it, and re-enters. It must be
// issued from a goroutine currently executing inside an ECall — that is
// the whole contract: a goroutine that never entered must not call OCall
// (the guard below is a global any-thread-inside check, kept deliberately
// cheap for the hot path, so it catches the no-one-inside misuse but not
// a wrong-goroutine one). It pays the transition cost in both directions;
// the TCS stays bound to the outstanding enclave frame while fn runs
// outside, as on hardware. The time spent crossing is attributed to the
// "sgx.ocall" timer so Figure 7's OCALL series can be reconstructed.
func (e *Enclave) OCall(name string, fn func() error) error {
	if e.isDestroyed() {
		return ErrDestroyed
	}
	if atomic.LoadInt64(&e.inside) == 0 {
		return fmt.Errorf("%w: %s", ErrOutsideEnclave, name)
	}
	atomic.AddInt64(&e.ocalls, 1)
	e.cfg.Prof.Incr("sgx.ocall")
	sp := e.cfg.Prof.Start("sgx.ocall")
	e.transition()
	atomic.AddInt64(&e.inside, -1)
	err := fn()
	atomic.AddInt64(&e.inside, 1)
	e.transition()
	sp.Stop()
	return err
}

// transition burns the configured enclave-crossing cost. The cost is paid
// with a busy spin (real CPU time) rather than a sleep so that it shows up
// in wall-clock measurements the way hardware transitions do.
func (e *Enclave) transition() {
	if e.cfg.TransitionCost <= 0 {
		return
	}
	burn(e.cfg.TransitionCost)
}

// burn busy-waits for approximately d.
func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Destroy terminates the enclave and scrubs its memory. Any later entry
// attempt fails with ErrDestroyed, callers parked on the TCS pool are
// woken with ErrDestroyed, and in-flight ECALLs see their next boundary
// crossing fail. Destroy blocks until every in-flight ECALL has drained,
// so memory is never scrubbed under a running enclave thread. It must not
// be called from inside an ECALL.
func (e *Enclave) Destroy() {
	e.destroyOnce.Do(func() {
		atomic.StoreInt32(&e.destroyed, 1)
		close(e.destroyCh)
		// Retire the switchless worker first: queued requests are still
		// served (FIFO ahead of the poison), so enclave threads blocked on
		// a ring response are released before we wait for them to exit.
		e.ring.stop()
		e.tcs.drain()
		e.mem.scrub()
	})
}
