package sgx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"twine/internal/chaos"
)

// PR 6 fault-injection coverage for the enclave layer: injected drain
// stalls must delay (not corrupt) switchless responses, Destroy must stay
// lossless while the drain worker is stalled mid-request, and a bounded
// TCS wait must convert enclave saturation into ErrTCSTimeout.

// TestSwitchlessDrainStallPreservesResults: with every drained request
// stalled, the ring is slower but semantically untouched — each request's
// closure runs exactly once and its genuine result comes back.
func TestSwitchlessDrainStallPreservesResults(t *testing.T) {
	e := newTestEnclave(t)
	inj := chaos.New(chaos.Plan{EveryK: 1, Stall: 100 * time.Microsecond})
	cfg := ringConfig()
	cfg.DrainChaos = inj
	e.EnableSwitchless(cfg)

	boom := errors.New("boom")
	var served int
	err := e.ECall("main", func() error {
		for i := 0; i < 8; i++ {
			err := e.SwitchlessOCall("io", 16, func() error { served++; return nil })
			if err != nil {
				return err
			}
		}
		// Host-closure errors still propagate verbatim through a stalled
		// drain.
		if err := e.SwitchlessOCall("io", 16, func() error { return boom }); !errors.Is(err, boom) {
			return errors.New("stalled drain lost the closure's error")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if served != 8 {
		t.Errorf("served = %d, want 8", served)
	}
	st := e.Stats()
	if st.SwitchlessCalls+st.FallbackOCalls != 9 {
		t.Errorf("conservation broke under stalls: ring %d + fallback %d != 9",
			st.SwitchlessCalls, st.FallbackOCalls)
	}
	// Every ring-served request consulted the injector and stalled.
	if s := inj.Stats(); s.Stalls != st.SwitchlessCalls {
		t.Errorf("injector stalled %d ops, ring served %d", s.Stalls, st.SwitchlessCalls)
	}
}

// TestSwitchlessDestroyDuringStalledDrain: Destroy fires while enqueuers
// are racing a drain worker that chaos keeps stalling mid-request — the
// exact window where a lost poison or an unsignalled response channel
// would strand an enclave thread. Every caller must return and Destroy
// must complete.
func TestSwitchlessDestroyDuringStalledDrain(t *testing.T) {
	for round := 0; round < 10; round++ {
		e := newRingEnclave(t, 4, 4)
		// Reach into the ring config: stall every drained request long
		// enough that Destroy reliably lands while one is held.
		e.ring.cfg.DrainChaos = chaos.New(chaos.Plan{EveryK: 1, Stall: 200 * time.Microsecond})

		const callers = 4
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_ = e.ECall("main", func() error {
					for {
						err := e.SwitchlessOCall("host.op", 32, func() error { return nil })
						if err != nil {
							if !errors.Is(err, ErrDestroyed) {
								t.Errorf("unexpected enqueue error: %v", err)
							}
							return err
						}
					}
				})
			}()
		}
		close(start)
		time.Sleep(time.Duration(round%4) * 150 * time.Microsecond)
		destroyed := make(chan struct{})
		go func() {
			e.Destroy()
			close(destroyed)
		}()

		doneAll := make(chan struct{})
		go func() {
			wg.Wait()
			close(doneAll)
		}()
		select {
		case <-doneAll:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: enqueuers still blocked 10s after Destroy under drain stalls", round)
		}
		select {
		case <-destroyed:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: Destroy did not complete under drain stalls", round)
		}
	}
}

// TestECallTCSWaitTimeout: with every TCS held, a bounded-wait ECALL
// fails with ErrTCSTimeout (and is counted) instead of parking forever;
// with the holder gone the next ECALL succeeds.
func TestECallTCSWaitTimeout(t *testing.T) {
	cfg := TestConfig()
	cfg.TCSNum = 1
	cfg.TCSWaitTimeout = 2 * time.Millisecond
	e, err := NewPlatform("tcs-timeout").NewEnclave(cfg, []byte("code"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	defer e.Destroy()

	inside := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = e.ECall("holder", func() error {
			close(inside)
			<-release
			return nil
		})
	}()
	<-inside

	if err := e.ECall("starved", func() error { return nil }); !errors.Is(err, ErrTCSTimeout) {
		t.Fatalf("ECall with all TCS busy = %v, want ErrTCSTimeout", err)
	}
	st := e.Stats()
	if st.TCSTimeouts != 1 || st.TCSWaits != 1 {
		t.Errorf("stats = %+v, want 1 TCS wait and 1 timeout", st)
	}

	close(release)
	// The freed TCS admits the next caller; retry briefly to absorb the
	// holder's exit latency.
	deadline := time.Now().Add(time.Second)
	for {
		if err := e.ECall("retry", func() error { return nil }); err == nil {
			break
		} else if !errors.Is(err, ErrTCSTimeout) {
			t.Fatalf("retry ECall: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("TCS never freed after the holder exited")
		}
	}
}
