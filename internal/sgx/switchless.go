package sgx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/chaos"
)

// Switchless OCALLs (the follow-up paper's transition-killing mechanism).
//
// A classic OCALL pays two enclave crossings (§III-A: up to 13,100 cycles
// each way). A switchless OCALL instead writes a request into a shared ring
// buffer that an *untrusted worker thread* drains: the enclave thread never
// leaves the enclave, it only pays a small enqueue cost and then waits for
// the worker's response. The cost model is:
//
//	classic OCALL:    2 × TransitionCost            (≈ 3.4 µs on the testbed)
//	switchless OCALL: EnqueueCost + handshake       (≪ TransitionCost)
//	cold worker:      WakeupCost + one classic OCALL (the SDK's fallback)
//
// Fidelity invariants, guarded by internal/core's differential tests:
//
//   - every request either rides the ring (SwitchlessCalls) or becomes a
//     real OCall (counted in Stats.OCalls, flagged in FallbackOCalls), so
//     OCalls_off == OCalls_on + SwitchlessCalls_on. Batched admission
//     (SwitchlessConfig.Batch, PR 8) preserves the law — it only moves the
//     cold-start request from the fallback column to the ring column;
//   - the protocol is synchronous (the caller blocks until its request is
//     served), so observable side-effect ordering is identical to the
//     two-transition path.

// SwitchlessConfig tunes the ring. The zero value is not useful; start from
// DefaultSwitchlessConfig.
type SwitchlessConfig struct {
	// Slots is the ring capacity. A request that finds the ring full falls
	// back to a classic OCall.
	Slots int
	// MaxPayload is the largest request payload (in bytes) eligible for the
	// ring. Larger transfers take the classic path: marshalling them
	// through the shared buffer would cost more than the crossing saves.
	MaxPayload int
	// EnqueueCost is the CPU burned inside the enclave to stage a request
	// in the shared ring (calibrated ≪ TransitionCost).
	EnqueueCost time.Duration
	// WakeupCost is the CPU burned signalling a parked worker back to its
	// polling loop.
	WakeupCost time.Duration
	// WorkerIdle is how long the worker polls an empty ring before parking.
	// While parked it consumes no CPU; the next request pays WakeupCost and
	// falls back, exactly like the SGX SDK when no worker is available.
	WorkerIdle time.Duration
	// DrainChaos, when set, is consulted once per request the drain worker
	// serves (PR 6's fault harness). Only the plan's stall applies — a
	// descheduled or preempted untrusted worker delays responses but must
	// not corrupt them, so a plan error here is ignored: the request's own
	// closure still runs and its genuine result is delivered. nil disables
	// injection with zero cost.
	DrainChaos *chaos.Injector
	// Batch enables batched cold-start admission (PR 8): a request that
	// finds the worker parked is staged in the ring *before* the worker is
	// signalled, so the caller rides its own wakeup instead of paying the
	// SDK's cold-worker fallback (a classic two-transition OCall), and
	// every request admitted while the ring is non-empty shares that one
	// wakeup (counted in SwitchlessStats.BatchedWakeups). Off by default:
	// the unbatched ring is bit-identical to PR 2 and is what the fidelity
	// tests pin.
	Batch bool
}

// DefaultSwitchlessConfig derives ring costs from the enclave's transition
// cost: enqueueing is an order of magnitude cheaper than one crossing, and
// waking a parked worker costs about half a crossing (IPI + scheduler).
func DefaultSwitchlessConfig(cfg Config) SwitchlessConfig {
	return SwitchlessConfig{
		Slots:       8,
		MaxPayload:  32 << 10,
		EnqueueCost: cfg.TransitionCost / 8,
		WakeupCost:  cfg.TransitionCost / 2,
		WorkerIdle:  50 * time.Millisecond,
	}
}

// SwitchlessStats counts ring activity. The counters are also surfaced
// through Enclave.Stats so figure drivers can reconstruct the OCALL series.
type SwitchlessStats struct {
	// Calls is the number of requests served through the ring.
	Calls int64
	// Fallbacks is the number of requests that became classic OCalls
	// because the ring was full, the worker was parked, or the payload
	// exceeded MaxPayload. Each is also counted in Stats.OCalls.
	Fallbacks int64
	// Wakeups is the number of times a request found the worker parked and
	// had to signal it awake.
	Wakeups int64
	// BatchedWakeups is the number of ring admissions that joined requests
	// already staged in the ring and therefore rode a wakeup (or a hot
	// drain pass) another caller paid — the amortisation batched admission
	// buys. Always 0 unless SwitchlessConfig.Batch is set.
	BatchedWakeups int64
}

// slreq is one ring slot: a named host-call closure plus the response
// channel the enclave thread blocks on.
type slreq struct {
	fn    func() error
	done  chan error
	panic any
}

var slreqPool = sync.Pool{
	New: func() any { return &slreq{done: make(chan error, 1)} },
}

// SwitchlessRing is the shared request/response ring between an enclave
// and its untrusted worker goroutine. Any number of enclave threads may
// enqueue concurrently (the TCS pool bounds them): requests are admitted
// under the ring lock and served FIFO, so contending enqueuers are
// ordered fairly by arrival, and a request admitted to the ring is always
// served — Destroy retires the worker with a poison request queued
// *behind* every admitted request, so none is lost. Counters are atomic;
// Stats is safe to read while enqueuers run.
type SwitchlessRing struct {
	e   *Enclave
	cfg SwitchlessConfig

	mu      sync.Mutex
	queue   chan *slreq
	running bool // worker goroutine alive and polling
	stopped bool

	stats SwitchlessStats // atomic fields
}

// EnableSwitchless attaches a switchless ring to the enclave and returns
// it. The worker is spawned lazily on first use and parks itself after
// WorkerIdle of inactivity, so an idle ring holds no goroutine. Enabling is
// idempotent; the existing ring is returned if one is already attached.
func (e *Enclave) EnableSwitchless(cfg SwitchlessConfig) *SwitchlessRing {
	if e.ring != nil {
		return e.ring
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = 32 << 10
	}
	if cfg.WorkerIdle <= 0 {
		cfg.WorkerIdle = 50 * time.Millisecond
	}
	e.ring = &SwitchlessRing{e: e, cfg: cfg, queue: make(chan *slreq, cfg.Slots)}
	return e.ring
}

// Switchless returns the enclave's ring, or nil when switchless calls are
// not enabled.
func (e *Enclave) Switchless() *SwitchlessRing { return e.ring }

// SwitchlessEnabled reports whether OCALLs can ride the ring.
func (e *Enclave) SwitchlessEnabled() bool { return e.ring != nil && !e.ring.stoppedNow() }

func (r *SwitchlessRing) stoppedNow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// Stats returns a coherent copy of the ring counters.
func (r *SwitchlessRing) Stats() SwitchlessStats {
	if r == nil {
		return SwitchlessStats{}
	}
	return SwitchlessStats{
		Calls:          atomic.LoadInt64(&r.stats.Calls),
		Fallbacks:      atomic.LoadInt64(&r.stats.Fallbacks),
		Wakeups:        atomic.LoadInt64(&r.stats.Wakeups),
		BatchedWakeups: atomic.LoadInt64(&r.stats.BatchedWakeups),
	}
}

// SwitchlessOCall performs a host call through the ring when possible and
// falls back to a classic OCall otherwise. payload is the number of bytes
// the request marshals across the boundary (0 for metadata-only calls);
// requests above SwitchlessConfig.MaxPayload take the classic path. With no
// ring enabled this is exactly OCall, so call sites can route through it
// unconditionally without disturbing the fidelity of the slow path.
func (e *Enclave) SwitchlessOCall(name string, payload int, fn func() error) error {
	if e.ring == nil {
		return e.OCall(name, fn)
	}
	if e.isDestroyed() {
		return ErrDestroyed
	}
	if atomic.LoadInt64(&e.inside) == 0 {
		return fmt.Errorf("%w: %s", ErrOutsideEnclave, name)
	}
	return e.ring.call(name, payload, fn)
}

// call implements the adaptive dispatch: ring when hot and small, classic
// OCall when cold, full, stopped or oversized. Safe for any number of
// concurrent enclave-side callers: admission happens under the ring lock
// (arrival-ordered, so contending enqueuers are served fairly FIFO) and
// each request carries its own response channel.
func (r *SwitchlessRing) call(name string, payload int, fn func() error) error {
	e := r.e
	if payload > r.cfg.MaxPayload {
		atomic.AddInt64(&r.stats.Fallbacks, 1)
		e.cfg.Prof.Incr("sgx.switchless.fallback")
		return e.OCall(name, fn)
	}

	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return e.OCall(name, fn)
	}
	wake := false
	if !r.running {
		if !r.cfg.Batch {
			// Worker parked: signal it awake for subsequent requests, but
			// take the slow path for this one (the SDK's cold-worker
			// fallback).
			r.running = true
			atomic.AddInt64(&r.stats.Wakeups, 1)
			atomic.AddInt64(&r.stats.Fallbacks, 1)
			go r.worker()
			r.mu.Unlock()
			e.cfg.Prof.Incr("sgx.switchless.wakeup")
			e.cfg.Prof.Incr("sgx.switchless.fallback")
			if r.cfg.WakeupCost > 0 {
				burn(r.cfg.WakeupCost)
			}
			return e.OCall(name, fn)
		}
		// Batched cold start: stage the request in the ring *before* the
		// worker is signalled, so this caller rides its own wakeup and
		// every caller admitted behind it shares the same one.
		wake = true
	}
	req := slreqPool.Get().(*slreq)
	req.fn = fn
	req.panic = nil
	select {
	case r.queue <- req:
		atomic.AddInt64(&r.stats.Calls, 1)
		if wake {
			r.running = true
			atomic.AddInt64(&r.stats.Wakeups, 1)
			go r.worker()
		} else if r.cfg.Batch && len(r.queue) > 1 {
			// At least one earlier request is still staged: this admission
			// joined an existing batch and amortises its wakeup/drain pass.
			atomic.AddInt64(&r.stats.BatchedWakeups, 1)
		}
		r.mu.Unlock()
	default:
		// Ring full: classic OCall. (With a parked worker the ring is
		// empty — the worker only parks on an empty ring — so the batch
		// path cannot land here; the guard keeps the invariant local.)
		atomic.AddInt64(&r.stats.Fallbacks, 1)
		r.mu.Unlock()
		req.fn = nil
		slreqPool.Put(req)
		e.cfg.Prof.Incr("sgx.switchless.fallback")
		return e.OCall(name, fn)
	}

	if wake {
		e.cfg.Prof.Incr("sgx.switchless.wakeup")
		if r.cfg.WakeupCost > 0 {
			burn(r.cfg.WakeupCost)
		}
	}
	e.cfg.Prof.Incr("sgx.switchless")
	sp := e.cfg.Prof.Start("sgx.switchless")
	if r.cfg.EnqueueCost > 0 {
		burn(r.cfg.EnqueueCost)
	}
	// Spin for the response first — the hardware mechanism busy-polls the
	// shared slot, and parking on the channel costs a scheduler round
	// trip that can exceed the transition cost we are saving. Gosched
	// keeps the worker runnable on single-CPU hosts.
	var err error
	received := false
	for spins := 0; spins < callerSpins; spins++ {
		select {
		case err = <-req.done:
			received = true
		default:
			runtime.Gosched()
			continue
		}
		break
	}
	if !received {
		err = <-req.done
	}
	sp.Stop()
	pan := req.panic
	req.fn = nil
	req.panic = nil
	slreqPool.Put(req)
	if pan != nil {
		// Preserve OCall semantics: a panicking host closure unwinds the
		// enclave thread, not the worker.
		panic(pan)
	}
	return err
}

// Spin budgets. The worker busy-polls (yielding the processor each miss,
// so single-CPU hosts make progress) before blocking on its queue, and
// the caller busy-polls the response slot before blocking — both mirror
// the hardware mechanism, where enclave and worker sides spin on shared
// memory and only fall back to sleeping after a calibrated interval. The
// worker budget is deliberately small: while the enclave thread computes
// between bursts, every worker poll steals a scheduling slot from it, so
// the worker should reach its (cheap, channel-blocked) wait quickly;
// requests still reach a blocked worker in ~1 µs, well under a
// transition. The caller budget is large because the caller spins only
// while its request is being served — time it cannot use anyway.
const (
	workerSpins = 64
	callerSpins = 4096
)

// worker is the untrusted thread draining the ring. It serves requests
// until the ring stays empty for WorkerIdle, then parks (exits); the next
// request re-spawns it through the wakeup path.
func (r *SwitchlessRing) worker() {
	var idle *time.Timer
	defer func() {
		if idle != nil {
			idle.Stop()
		}
	}()
	spins := 0
	for {
		// Hot path: drain by polling, no timers or channel parking.
		select {
		case req := <-r.queue:
			if req.fn == nil { // poison: the ring was stopped
				r.mu.Lock()
				r.running = false
				r.mu.Unlock()
				return
			}
			r.serve(req)
			spins = 0
			continue
		default:
		}
		if spins < workerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		// Cold: arm the park timer and block.
		if idle == nil {
			idle = time.NewTimer(r.cfg.WorkerIdle)
		} else {
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(r.cfg.WorkerIdle)
		}
		select {
		case req := <-r.queue:
			if req.fn == nil {
				r.mu.Lock()
				r.running = false
				r.mu.Unlock()
				return
			}
			r.serve(req)
			spins = 0
		case <-idle.C:
			r.mu.Lock()
			if len(r.queue) == 0 {
				r.running = false
				r.mu.Unlock()
				return
			}
			r.mu.Unlock()
		}
	}
}

// serve runs one request outside the enclave and hands the result back.
// Panics are captured and re-raised on the enclave thread.
func (r *SwitchlessRing) serve(req *slreq) {
	// Injected drain stalls happen before the closure runs: the worker was
	// descheduled holding the request, exactly the window Destroy's poison
	// protocol must tolerate (see TestSwitchlessDestroyDuringStalledDrain).
	_ = r.cfg.DrainChaos.Op()
	var err error
	func() {
		defer func() {
			if p := recover(); p != nil {
				req.panic = p
			}
		}()
		err = req.fn()
	}()
	req.done <- err
}

// stop marks the ring unusable and retires the worker with a poison
// request. Admission is serialised with stopping under the ring lock, so
// every admitted request sits ahead of the poison in the FIFO queue and
// is served before the worker exits — an enqueuer racing Destroy either
// loses admission (and falls back to a classic OCall, which reports
// ErrDestroyed) or has its response delivered; no enqueuer is left
// blocked on a response that will never come. A worker that already
// parked simply never restarts.
func (r *SwitchlessRing) stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	alreadyStopped := r.stopped
	wasRunning := r.running
	r.stopped = true
	r.mu.Unlock()
	if alreadyStopped || !wasRunning {
		return
	}
	// Blocking send: the queue may be full of admitted requests, which
	// the live worker is draining. Bounded by Slots serves. If the worker
	// parked between the check above and this send, the poison simply
	// stays queued — the stopped flag already prevents any respawn.
	r.queue <- &slreq{}
}
