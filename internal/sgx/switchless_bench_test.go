package sgx

import (
	"testing"
	"time"
)

func benchEnclave(b *testing.B) *Enclave {
	cfg := TestConfig()
	cfg.TransitionCost = 1700 * time.Nanosecond
	e, err := NewPlatform("bench").NewEnclave(cfg, []byte("code"))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkOCall(b *testing.B) {
	e := benchEnclave(b)
	_ = e.ECall("main", func() error {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.OCall("io", func() error { return nil })
		}
		return nil
	})
}

func BenchmarkSwitchlessOCall(b *testing.B) {
	e := benchEnclave(b)
	e.EnableSwitchless(DefaultSwitchlessConfig(e.Config()))
	_ = e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.SwitchlessOCall("io", 0, func() error { return nil })
		}
		return nil
	})
}

func BenchmarkOCallCopy4K(b *testing.B) {
	e := benchEnclave(b)
	src, dst := make([]byte, 4096), make([]byte, 4096)
	_ = e.ECall("main", func() error {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.OCall("io", func() error { copy(dst, src); return nil })
		}
		return nil
	})
}

func BenchmarkSwitchlessOCallCopy4K(b *testing.B) {
	e := benchEnclave(b)
	e.EnableSwitchless(DefaultSwitchlessConfig(e.Config()))
	src, dst := make([]byte, 4096), make([]byte, 4096)
	_ = e.ECall("main", func() error {
		_ = e.SwitchlessOCall("warm", 0, func() error { return nil })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.SwitchlessOCall("io", 4096, func() error { copy(dst, src); return nil })
		}
		return nil
	})
}
