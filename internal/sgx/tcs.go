package sgx

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Thread control structures (TCS).
//
// A hardware enclave exposes a fixed number of TCS pages, each of which
// admits exactly one logical thread at a time: an ECALL binds a TCS on
// entry and releases it when the call returns. OCALLs do NOT release the
// TCS — the outstanding enclave frame keeps it reserved so the thread can
// re-enter through ORET, which is why the SGX SDK sizes its thread pool to
// the TCS count. When every TCS is busy a new ECALL blocks until one
// frees up (the SDK's sgx_ecall behaviour with SGX_ERROR_OUT_OF_TCS
// retries).
//
// The reproduction models exactly that: Config.TCSNum bounds the number
// of concurrently executing ECALLs; excess callers park on the pool and
// are admitted FIFO-ish as slots free. Stats counts how many ECALLs had
// to wait (TCSWaits) and the high-water mark of simultaneously busy TCS
// (TCSMaxBusy), the two numbers a capacity planner needs.

// DefaultTCSNum is the TCS count of enclaves whose Config does not set
// one — the follow-up paper's multi-threaded runtime configuration.
const DefaultTCSNum = 8

// tcsPool is the bounded entry gate of one enclave.
type tcsPool struct {
	slots chan struct{} // send = acquire, receive = release
	size  int

	busy     int64 // currently bound TCS (atomic)
	maxBusy  int64 // high-water mark (atomic)
	waits    int64 // ECALLs that found every TCS busy (atomic)
	timeouts int64 // parked ECALLs abandoned on the wait bound (atomic)
}

func newTCSPool(n int) *tcsPool {
	if n <= 0 {
		n = DefaultTCSNum
	}
	return &tcsPool{slots: make(chan struct{}, n), size: n}
}

// acquire binds a TCS, blocking while all are busy. destroyed is closed
// when the enclave is torn down so parked callers fail with ErrDestroyed
// instead of waiting forever; timeout > 0 additionally bounds the wait
// (Config.TCSWaitTimeout), failing the caller with ErrTCSTimeout so a
// saturated enclave surfaces backpressure instead of unbounded latency.
func (p *tcsPool) acquire(destroyed <-chan struct{}, timeout time.Duration) error {
	select {
	case p.slots <- struct{}{}:
	default:
		atomic.AddInt64(&p.waits, 1)
		var expire <-chan time.Time
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			expire = t.C
		}
		select {
		case p.slots <- struct{}{}:
		case <-expire:
			atomic.AddInt64(&p.timeouts, 1)
			return ErrTCSTimeout
		case <-destroyed:
			return ErrDestroyed
		}
	}
	busy := atomic.AddInt64(&p.busy, 1)
	for {
		max := atomic.LoadInt64(&p.maxBusy)
		if busy <= max || atomic.CompareAndSwapInt64(&p.maxBusy, max, busy) {
			break
		}
	}
	return nil
}

func (p *tcsPool) release() {
	atomic.AddInt64(&p.busy, -1)
	<-p.slots
}

// drain claims every TCS, waiting for in-flight ECALLs to exit. Used by
// Destroy so memory is never scrubbed under a running enclave thread.
// The slots are deliberately not released: the enclave is dead.
func (p *tcsPool) drain() {
	for i := 0; i < p.size; i++ {
		p.slots <- struct{}{}
	}
}

// goroutineGate tracks which goroutines are currently executing an ECALL,
// so re-entry on the same logical thread can be rejected (TWINE exposes a
// single entry point and does not re-enter, §IV-C) while independent
// goroutines enter freely through their own TCS.
type goroutineGate struct {
	mu sync.Mutex
	in map[uint64]struct{}
}

// enter registers the calling goroutine; it reports false when the
// goroutine is already inside the enclave.
func (g *goroutineGate) enter(id uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.in == nil {
		g.in = make(map[uint64]struct{})
	}
	if _, ok := g.in[id]; ok {
		return false
	}
	g.in[id] = struct{}{}
	return true
}

func (g *goroutineGate) exit(id uint64) {
	g.mu.Lock()
	delete(g.in, id)
	g.mu.Unlock()
}

// goid returns the current goroutine's id. The runtime does not expose
// it, so it is parsed from the first stack-trace line ("goroutine N [...")
// — the standard trick, paid once per ECALL (not per OCALL: entry is the
// rare edge, host calls are the hot one).
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
