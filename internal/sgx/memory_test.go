package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	base := e.Allocator().Base()
	want := []byte("the quick brown fox")
	if err := m.Write(base, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if err := m.Read(base, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Read = %q, want %q", got, want)
	}
}

func TestMemoryBounds(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	if err := m.Touch(-1, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("negative offset: %v, want ErrBounds", err)
	}
	if err := m.Touch(m.Size()-2, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("overrun: %v, want ErrBounds", err)
	}
	if err := m.Touch(0, 0); err != nil {
		t.Errorf("zero-length touch: %v, want nil", err)
	}
	if _, err := m.Slice(m.Size(), 1); !errors.Is(err, ErrBounds) {
		t.Errorf("slice overrun: %v, want ErrBounds", err)
	}
}

func TestSliceAliasesMemory(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	base := e.Allocator().Base()
	s, err := m.Slice(base, 8)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	copy(s, "abcdefgh")
	got := make([]byte, 8)
	_ = m.Read(base, got)
	if string(got) != "abcdefgh" {
		t.Errorf("write through slice not visible: %q", got)
	}
}

func TestZeroClears(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	base := e.Allocator().Base()
	_ = m.Write(base, bytes.Repeat([]byte{0xFF}, 64))
	if err := m.Zero(base, 64); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	got := make([]byte, 64)
	_ = m.Read(base, got)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after Zero", i, b)
		}
	}
}

// TestEPCPagingKicksInPastLimit is the EPC-cliff sanity check from
// DESIGN.md: touching a working set larger than the usable EPC must cause
// evictions, while a small working set must not.
func TestEPCPagingKicksInPastLimit(t *testing.T) {
	// 256 KiB usable EPC = 64 resident pages, 4 MiB heap. HeapSystem so
	// construction does not pre-touch the pool and skew the counters.
	cfg := TestConfig()
	cfg.EPCUsable = 256 << 10
	cfg.EPCSize = 512 << 10
	cfg.HeapMode = HeapSystem
	e, err := NewPlatform("epc").NewEnclave(cfg, nil)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	m := e.Memory()

	// Working set of 32 pages: fits, so repeated touching never evicts.
	for round := 0; round < 4; round++ {
		for p := int64(0); p < 32; p++ {
			if err := m.Touch(p*PageSize, 1); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
	}
	if ev := m.Evictions(); ev != 0 {
		t.Fatalf("evictions = %d for an EPC-resident working set, want 0", ev)
	}
	small := m.Faults()

	// Working set of 128 pages: twice the EPC, must page.
	for round := 0; round < 4; round++ {
		for p := int64(0); p < 128; p++ {
			if err := m.Touch(p*PageSize, 1); err != nil {
				t.Fatalf("Touch: %v", err)
			}
		}
	}
	if ev := m.Evictions(); ev == 0 {
		t.Error("no evictions with a working set 2x the EPC")
	}
	if f := m.Faults(); f <= small {
		t.Errorf("faults did not grow past EPC limit: %d <= %d", f, small)
	}
	if r := m.Resident(); r > 64 {
		t.Errorf("resident pages %d exceed EPC capacity 64", r)
	}
}

func TestSimulationModeStillTracksResidency(t *testing.T) {
	cfg := TestConfig()
	cfg.Mode = ModeSimulation
	e, err := NewPlatform("sw").NewEnclave(cfg, nil)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	m := e.Memory()
	if err := m.Touch(0, PageSize*3); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if m.Faults() == 0 {
		t.Error("simulation mode should still count faults (it only skips the crypto cost)")
	}
}

func TestTouchSpansPages(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	before := m.Faults()
	// Crossing a page boundary with a 2-byte touch must fault both pages.
	if err := m.Touch(PageSize-1, 2); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if got := m.Faults() - before; got != 2 {
		t.Errorf("faults = %d, want 2 for boundary-crossing touch", got)
	}
}

func TestDestroyScrubsMemory(t *testing.T) {
	e := newTestEnclave(t)
	m := e.Memory()
	base := e.Allocator().Base()
	_ = m.Write(base, []byte("secret"))
	e.Destroy()
	// Direct inspection of the backing array (the "cold boot" view).
	if !bytes.Equal(m.data[base:base+6], make([]byte, 6)) {
		t.Error("secret survived Destroy")
	}
}
