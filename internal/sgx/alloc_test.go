package sgx

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	e := newTestEnclave(t)
	a := e.Allocator()
	off, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := e.Memory().Write(off, make([]byte, 100)); err != nil {
		t.Fatalf("Write into allocation: %v", err)
	}
	if err := a.Free(off); err != nil {
		t.Fatalf("Free: %v", err)
	}
	allocs, frees, inUse := a.Stats()
	if allocs != 1 || frees != 1 || inUse != 0 {
		t.Errorf("stats = (%d,%d,%d), want (1,1,0)", allocs, frees, inUse)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	e := newTestEnclave(t)
	a := e.Allocator()
	off, _ := a.Alloc(64)
	if err := a.Free(off); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := a.Free(off); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
}

func TestBadFreeDetected(t *testing.T) {
	e := newTestEnclave(t)
	a := e.Allocator()
	if err := a.Free(a.Base() + 12345); !errors.Is(err, ErrBadFree) {
		t.Errorf("bad free = %v, want ErrBadFree", err)
	}
	if err := a.Free(-5); !errors.Is(err, ErrBadFree) {
		t.Errorf("negative free = %v, want ErrBadFree", err)
	}
}

func TestFreeListReuse(t *testing.T) {
	e := newTestEnclave(t)
	a := e.Allocator()
	off1, _ := a.Alloc(256)
	if err := a.Free(off1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	off2, err := a.Alloc(256)
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	if off1 != off2 {
		t.Errorf("freed block not reused: %d then %d", off1, off2)
	}
}

func TestAllocExhaustion(t *testing.T) {
	cfg := TestConfig()
	cfg.HeapSize = 64 << 10
	cfg.ReservedSize = 4 << 10
	e, err := NewPlatform("x").NewEnclave(cfg, nil)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	a := e.Allocator()
	var offs []int64
	for {
		off, err := a.Alloc(4 << 10)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("Alloc failed with %v, want ErrOutOfMemory", err)
			}
			break
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("no allocation succeeded")
	}
	// Free everything; allocation must succeed again.
	for _, off := range offs {
		if err := a.Free(off); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if _, err := a.Alloc(4 << 10); err != nil {
		t.Errorf("Alloc after mass free: %v", err)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	e := newTestEnclave(t)
	if _, err := e.Allocator().Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := e.Allocator().Alloc(-8); err == nil {
		t.Error("Alloc(-8) succeeded")
	}
}

func TestSystemHeapCommitsLazily(t *testing.T) {
	cfg := TestConfig()
	cfg.HeapMode = HeapSystem
	e, err := NewPlatform("sys").NewEnclave(cfg, nil)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	a := e.Allocator()
	if got := a.CommittedPages(); got != 0 {
		t.Fatalf("system heap pre-committed %d pages", got)
	}
	if _, err := a.Alloc(3 * PageSize); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := a.CommittedPages(); got < 3 {
		t.Errorf("committed pages = %d, want >= 3", got)
	}
}

func TestPoolHeapPrecommits(t *testing.T) {
	e := newTestEnclave(t) // TestConfig uses HeapPool
	a := e.Allocator()
	if got, want := a.CommittedPages(), (a.end-a.base)/PageSize; got != want {
		t.Errorf("pool committed %d pages, want %d", got, want)
	}
}

// TestAllocatorNeverOverlaps is the property-based allocator invariant:
// for any sequence of allocation sizes, live blocks never overlap and all
// stay within the heap.
func TestAllocatorNeverOverlaps(t *testing.T) {
	check := func(sizes []uint16) bool {
		e, err := NewPlatform("q").NewEnclave(TestConfig(), nil)
		if err != nil {
			return false
		}
		a := e.Allocator()
		type block struct{ off, size int64 }
		var live []block
		for i, s := range sizes {
			n := int64(s%2048) + 1
			off, err := a.Alloc(n)
			if err != nil {
				break
			}
			for _, b := range live {
				if off < b.off+b.size && b.off < off+n {
					t.Logf("overlap: [%d,%d) with [%d,%d)", off, off+n, b.off, b.off+b.size)
					return false
				}
			}
			if off < a.Base() || off+n > e.Memory().Size() {
				return false
			}
			live = append(live, block{off, n})
			// Free every third block to exercise reuse.
			if i%3 == 2 && len(live) > 0 {
				victim := live[0]
				live = live[1:]
				if err := a.Free(victim.off); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
