package chaos

import (
	"time"

	"twine/internal/hostfs"
)

// WrapFS returns an untrusted host file system whose every operation —
// path operations and per-handle data operations alike — consults inj
// first, stalling and/or failing the operations the plan selects. It is
// the plan-driven generalisation of hostfs.Faulty: where Faulty hardwires
// one fail-after schedule, WrapFS runs any Plan (windows, strides,
// seeded probabilities, stalls) against the same operation stream.
//
// With a nil injector (or a zero Plan) the wrapper is transparent: the
// operation sequence, results and errors are exactly the wrapped FS's.
func WrapFS(fs hostfs.FS, inj *Injector) hostfs.FS {
	return &chaosFS{fs: fs, inj: inj}
}

type chaosFS struct {
	fs  hostfs.FS
	inj *Injector
}

func (c *chaosFS) OpenFile(name string, flag int) (hostfs.File, error) {
	if err := c.inj.Op(); err != nil {
		return nil, err
	}
	f, err := c.fs.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: f, inj: c.inj}, nil
}

func (c *chaosFS) Mkdir(name string) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.Mkdir(name)
}

func (c *chaosFS) Remove(name string) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.Remove(name)
}

func (c *chaosFS) Rename(oldName, newName string) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.Rename(oldName, newName)
}

func (c *chaosFS) Stat(name string) (hostfs.FileInfo, error) {
	if err := c.inj.Op(); err != nil {
		return hostfs.FileInfo{}, err
	}
	return c.fs.Stat(name)
}

func (c *chaosFS) Lstat(name string) (hostfs.FileInfo, error) {
	if err := c.inj.Op(); err != nil {
		return hostfs.FileInfo{}, err
	}
	return c.fs.Lstat(name)
}

func (c *chaosFS) ReadDir(name string) ([]hostfs.FileInfo, error) {
	if err := c.inj.Op(); err != nil {
		return nil, err
	}
	return c.fs.ReadDir(name)
}

func (c *chaosFS) Symlink(target, link string) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.Symlink(target, link)
}

func (c *chaosFS) Readlink(name string) (string, error) {
	if err := c.inj.Op(); err != nil {
		return "", err
	}
	return c.fs.Readlink(name)
}

func (c *chaosFS) Link(oldName, newName string) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.Link(oldName, newName)
}

func (c *chaosFS) UTimes(name string, atime, mtime time.Time) error {
	if err := c.inj.Op(); err != nil {
		return err
	}
	return c.fs.UTimes(name, atime, mtime)
}

// chaosFile intercepts the data-plane operations (the hostfs.Faulty
// precedent: ReadAt/WriteAt/Sync are the untrusted-host calls a database
// workload hammers); Truncate/Stat/Close pass through via embedding.
type chaosFile struct {
	hostfs.File
	inj *Injector
}

func (f *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.inj.Op(); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *chaosFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.inj.Op(); err != nil {
		return 0, err
	}
	return f.File.WriteAt(p, off)
}

func (f *chaosFile) Sync() error {
	if err := f.inj.Op(); err != nil {
		return err
	}
	return f.File.Sync()
}
