package chaos

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"twine/internal/hostfs"
)

// TestZeroPlanNeverInjects: the fidelity rule's foundation — a zero plan
// (and a nil injector) never selects, so wired-but-disabled harness code
// is a strict no-op.
func TestZeroPlanNeverInjects(t *testing.T) {
	inj := New(Plan{})
	for i := 0; i < 1000; i++ {
		if err := inj.Op(); err != nil {
			t.Fatalf("zero plan injected at op %d: %v", i+1, err)
		}
	}
	if s := inj.Stats(); s.Faults != 0 || s.Stalls != 0 || s.Ops != 1000 {
		t.Errorf("stats = %+v, want 1000 ops, 0 faults, 0 stalls", s)
	}

	var nilInj *Injector
	if err := nilInj.Op(); err != nil {
		t.Errorf("nil injector injected: %v", err)
	}
	if s := nilInj.Stats(); s != (Stats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}
}

// TestWindowSelection: At+Window fails exactly the ops in [At, At+W) —
// the recovery-path schedule (errors, then health again).
func TestWindowSelection(t *testing.T) {
	boom := errors.New("boom")
	inj := New(Plan{At: 5, Window: 3, Err: boom})
	for op := int64(1); op <= 12; op++ {
		err := inj.Op()
		want := op >= 5 && op < 8
		if (err != nil) != want {
			t.Errorf("op %d: err=%v, want fault=%v", op, err, want)
		}
	}
	if s := inj.Stats(); s.Faults != 3 {
		t.Errorf("Faults = %d, want 3", s.Faults)
	}

	// Window omitted: exactly one op fails.
	single := New(Plan{At: 4, Err: boom})
	var faults int
	for op := 0; op < 10; op++ {
		if single.Op() != nil {
			faults++
		}
	}
	if faults != 1 {
		t.Errorf("At-only plan faulted %d ops, want 1", faults)
	}
}

// TestEveryKDeterministicPhase: the stride schedule fails exactly one op
// per K, at a phase derived from the seed — same seed, same ops; a
// different seed (generally) moves the phase but keeps the rate.
func TestEveryKDeterministicPhase(t *testing.T) {
	boom := errors.New("boom")
	const k, n = 7, 70
	record := func(seed int64) []int64 {
		inj := New(Plan{Seed: seed, EveryK: k, Err: boom})
		var failed []int64
		for op := int64(1); op <= n; op++ {
			if inj.Op() != nil {
				failed = append(failed, op)
			}
		}
		return failed
	}
	a, b := record(42), record(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) != n/k {
		t.Errorf("seed 42 failed %d ops over %d, want %d", len(a), n, n/k)
	}
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] != k {
			t.Errorf("fault stride %d between ops %d and %d, want %d", a[i]-a[i-1], a[i-1], a[i], k)
		}
	}
}

// TestProbSeededDeterminism: the probabilistic schedule is a pure hash of
// (seed, op): replays are identical, and the realised rate is in the
// right ballpark.
func TestProbSeededDeterminism(t *testing.T) {
	boom := errors.New("boom")
	const n = 10000
	record := func(seed int64) map[int64]bool {
		inj := New(Plan{Seed: seed, Prob: 0.01, Err: boom})
		failed := make(map[int64]bool)
		for op := int64(1); op <= n; op++ {
			if inj.Op() != nil {
				failed[op] = true
			}
		}
		return failed
	}
	a, b := record(7), record(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for op := range a {
		if !b[op] {
			t.Fatalf("op %d faulted in one replay only", op)
		}
	}
	// 1% of 10k = 100 expected; allow generous slack (binomial sd ~10).
	if len(a) < 50 || len(a) > 200 {
		t.Errorf("realised fault rate %d/%d, want ~100", len(a), n)
	}
	// Selected() is the same pure function the injector consumed.
	inj := New(Plan{Seed: 7, Prob: 0.01, Err: boom})
	for op := int64(1); op <= n; op++ {
		if inj.Selected(op) != a[op] {
			t.Fatalf("Selected(%d) disagrees with the consumed decision", op)
		}
	}
}

// TestConcurrentOpsConserveFaults: under concurrent callers the set of
// faulted *ordinals* is fixed by the plan, so the total fault count is
// exactly the number of selected ordinals regardless of interleaving.
func TestConcurrentOpsConserveFaults(t *testing.T) {
	boom := errors.New("boom")
	const callers, perCaller, k = 8, 250, 5
	inj := New(Plan{Seed: 3, EveryK: k, Err: boom})
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				_ = inj.Op()
			}
		}()
	}
	wg.Wait()
	total := int64(callers * perCaller)
	s := inj.Stats()
	if s.Ops != total {
		t.Errorf("Ops = %d, want %d", s.Ops, total)
	}
	if s.Faults != total/k {
		t.Errorf("Faults = %d, want %d", s.Faults, total/k)
	}
}

// TestStallOnlyPlan: a plan with Stall but no Err delays selected ops and
// returns nil — the descheduled-worker fault.
func TestStallOnlyPlan(t *testing.T) {
	inj := New(Plan{EveryK: 2, Stall: 1}) // 1ns: presence, not duration
	for op := 0; op < 10; op++ {
		if err := inj.Op(); err != nil {
			t.Fatalf("stall-only plan returned error: %v", err)
		}
	}
	if s := inj.Stats(); s.Stalls != 5 || s.Faults != 0 {
		t.Errorf("stats = %+v, want 5 stalls, 0 faults", s)
	}
}

// TestTransientClassification: Transient wraps are recognised, plain
// errors are not, and the wrapped cause stays visible to errors.Is.
func TestTransientClassification(t *testing.T) {
	cause := errors.New("host thread stalled")
	if !IsTransient(Transient(cause)) {
		t.Error("Transient(err) not classified transient")
	}
	if !IsTransient(Transient(nil)) {
		t.Error("Transient(nil) not classified transient")
	}
	if IsTransient(cause) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
	if !errors.Is(Transient(cause), cause) {
		t.Error("Transient lost the wrapped cause")
	}
}

// TestWrapFSInjects: the FS wrapper consults the plan on path and handle
// operations alike, and a replay with Reset sees the same faults.
func TestWrapFSInjects(t *testing.T) {
	boom := Transient(errors.New("disk glitch"))
	inj := New(Plan{At: 2, Err: boom})
	fs := WrapFS(hostfs.NewMemFS(), inj)

	f, err := fs.OpenFile("/a", hostfs.OWrite|hostfs.OCreate) // op 1: ok
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, boom) { // op 2: fault
		t.Errorf("WriteAt = %v, want injected fault", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil { // op 3: recovered
		t.Errorf("WriteAt after window = %v", err)
	}
	if err := f.Close(); err != nil { // pass-through, not an op
		t.Errorf("Close: %v", err)
	}
	if s := inj.Stats(); s.Ops != 3 || s.Faults != 1 {
		t.Errorf("stats = %+v, want 3 ops, 1 fault", s)
	}

	inj.Reset()
	if _, err := fs.Stat("/a"); err != nil { // op 1 again: ok
		t.Errorf("Stat after Reset: %v", err)
	}
	if _, err := fs.Stat("/a"); !errors.Is(err, boom) { // op 2 again: fault
		t.Errorf("replayed op 2 = %v, want injected fault", err)
	}
}

// TestWrapFSTransparentWhenNil: a nil injector wrapper behaves exactly
// like the wrapped FS.
func TestWrapFSTransparentWhenNil(t *testing.T) {
	fs := WrapFS(hostfs.NewMemFS(), nil)
	f, err := fs.OpenFile("/x", hostfs.OWrite|hostfs.OCreate)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := fs.Stat("/x")
	if err != nil || info.Size != 4 {
		t.Fatalf("Stat = %+v, %v; want size 4", info, err)
	}
}
