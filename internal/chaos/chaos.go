// Package chaos is the cross-layer fault-injection harness (PR 6). It
// generalises the ad-hoc hostfs.Faulty wrapper into a seeded,
// deterministic fault *plan* that any layer can consult: the untrusted
// host file system (WrapFS), the WASI backend boundary
// (wasi.HostBackend.Chaos), the switchless ring's drain worker
// (sgx.SwitchlessConfig.DrainChaos) and the serving pool's per-request
// host I/O (bench fault series).
//
// The design contract is determinism: whether operation i is selected is
// a pure function of (Plan, i). Two runs with the same plan against the
// same operation sequence inject exactly the same faults, so a failure
// found under chaos is replayable from its seed — and a plan that selects
// nothing (the zero Plan) makes every Op call a no-op, which is what the
// fidelity rule relies on: faults off is bit-identical to no harness at
// all.
//
// A selected operation can stall (Plan.Stall — modelling a descheduled
// drain worker or a slow host), fail (Plan.Err), or both. Transient wraps
// errors that model recoverable untrusted-host conditions; the WASI
// boundary's bounded retry (wasi.RetryPolicy) keys off IsTransient.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Plan is a deterministic fault schedule over an operation sequence.
// Selection predicates compose with OR; the zero Plan selects nothing.
type Plan struct {
	// Seed perturbs the EveryK phase and the Prob hash, so distinct seeds
	// fault distinct operations while each seed stays replayable.
	Seed int64
	// At selects operation At (1-based). With Window > 0 the selection
	// extends to the window [At, At+Window) — failing a run of operations
	// rather than a single one, so recovery paths (not just
	// first-failure paths) are exercised.
	At     int64
	Window int64
	// EveryK selects every Kth operation, at a seeded phase within each
	// stride.
	EveryK int64
	// Prob selects each operation independently with this probability.
	// The decision hashes (Seed, op), so it is deterministic per
	// operation and stable under concurrency: which ordinal faults never
	// depends on goroutine interleaving.
	Prob float64
	// Stall is slept on each selected operation before any error is
	// returned — the "slow host" / "descheduled worker" fault.
	Stall time.Duration
	// Err is returned by Op on each selected operation (nil = stall-only
	// plan).
	Err error
}

// Stats counts injector activity. Ops counts every consultation, Faults
// the selected operations that returned an error, Stalls the selected
// operations that slept.
type Stats struct {
	Ops    int64
	Faults int64
	Stalls int64
}

// Injector hands out fault decisions for a Plan. It is safe for any
// number of concurrent callers; a nil *Injector is valid and never
// injects, so call sites need no guard.
type Injector struct {
	plan      Plan
	phase     int64  // seeded EveryK phase
	threshold uint64 // Prob as a 64-bit fixed-point threshold

	ops    int64 // atomic
	faults int64 // atomic
	stalls int64 // atomic
}

// New builds an injector for p.
func New(p Plan) *Injector {
	inj := &Injector{plan: p}
	if p.EveryK > 0 {
		inj.phase = int64(splitmix64(uint64(p.Seed)^0x9e3779b97f4a7c15) % uint64(p.EveryK))
	}
	if p.Prob > 0 {
		if p.Prob >= 1 {
			inj.threshold = ^uint64(0)
		} else {
			inj.threshold = uint64(p.Prob * float64(1<<63) * 2)
		}
	}
	return inj
}

// Plan returns the injector's schedule.
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Selected reports whether operation op (1-based) is faulted — a pure
// function of the plan, usable to precompute the expected fault set.
func (i *Injector) Selected(op int64) bool {
	if i == nil {
		return false
	}
	p := &i.plan
	if p.At > 0 {
		w := p.Window
		if w <= 0 {
			w = 1
		}
		if op >= p.At && op < p.At+w {
			return true
		}
	}
	if p.EveryK > 0 && (op-1)%p.EveryK == i.phase {
		return true
	}
	if i.threshold > 0 && splitmix64(uint64(p.Seed)^uint64(op)*0xbf58476d1ce4e5b9) < i.threshold {
		return true
	}
	return false
}

// Op consumes the next operation ordinal and applies the plan: it stalls
// for Plan.Stall and/or returns Plan.Err when the operation is selected,
// and is a no-op (nil) otherwise. Safe for concurrent use; on a nil
// injector it always returns nil.
func (i *Injector) Op() error {
	if i == nil {
		return nil
	}
	op := atomic.AddInt64(&i.ops, 1)
	if !i.Selected(op) {
		return nil
	}
	if i.plan.Stall > 0 {
		atomic.AddInt64(&i.stalls, 1)
		time.Sleep(i.plan.Stall)
	}
	if i.plan.Err != nil {
		atomic.AddInt64(&i.faults, 1)
		return i.plan.Err
	}
	return nil
}

// Stats returns a coherent copy of the injector counters; zero on nil.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return Stats{
		Ops:    atomic.LoadInt64(&i.ops),
		Faults: atomic.LoadInt64(&i.faults),
		Stalls: atomic.LoadInt64(&i.stalls),
	}
}

// Reset rewinds the operation counter (and stats) so the same plan can
// replay from the start.
func (i *Injector) Reset() {
	if i == nil {
		return
	}
	atomic.StoreInt64(&i.ops, 0)
	atomic.StoreInt64(&i.faults, 0)
	atomic.StoreInt64(&i.stalls, 0)
}

// splitmix64 is the SplitMix64 finaliser: a cheap, high-quality 64-bit
// mix, used so per-operation decisions are deterministic hashes instead
// of stateful RNG draws (which would make the fault set depend on
// concurrency order).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ErrTransient is the marker for recoverable untrusted-host faults: the
// class of failures a bounded retry is allowed to absorb (EINTR-like
// conditions, a momentarily stalled host thread). Permanent errors must
// not wrap it — retrying them only delays the failure.
var ErrTransient = errors.New("chaos: transient host fault")

// Transient wraps err (nil-safe) so IsTransient reports it recoverable.
func Transient(err error) error {
	if err == nil {
		return ErrTransient
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err models a recoverable untrusted-host
// condition.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }
