package wasi

import (
	"errors"
	"fmt"
	"io"

	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Errno is a WASI errno value.
type Errno uint16

// WASI errno values (snapshot_preview1 encodings).
const (
	ErrnoSuccess    Errno = 0
	ErrnoAcces      Errno = 2
	ErrnoBadf       Errno = 8
	ErrnoExist      Errno = 20
	ErrnoFault      Errno = 21
	ErrnoInval      Errno = 28
	ErrnoIo         Errno = 29
	ErrnoIsdir      Errno = 31
	ErrnoLoop       Errno = 32
	ErrnoNoent      Errno = 44
	ErrnoNosys      Errno = 52
	ErrnoNotdir     Errno = 54
	ErrnoNotempty   Errno = 55
	ErrnoNotsup     Errno = 58
	ErrnoPerm       Errno = 63
	ErrnoSpipe      Errno = 70
	ErrnoNotcapable Errno = 76
)

// Rights are WASI capability bits (snapshot_preview1 values).
type Rights uint64

// Rights bits.
const (
	RightFdDatasync Rights = 1 << iota
	RightFdRead
	RightFdSeek
	RightFdFdstatSetFlags
	RightFdSync
	RightFdTell
	RightFdWrite
	RightFdAdvise
	RightFdAllocate
	RightPathCreateDirectory
	RightPathCreateFile
	RightPathLinkSource
	RightPathLinkTarget
	RightPathOpen
	RightFdReaddir
	RightPathReadlink
	RightPathRenameSource
	RightPathRenameTarget
	RightPathFilestatGet
	RightPathFilestatSetSize
	RightPathFilestatSetTimes
	RightFdFilestatGet
	RightFdFilestatSetSize
	RightFdFilestatSetTimes
	RightPathSymlink
	RightPathRemoveDirectory
	RightPathUnlinkFile
	RightPollFdReadwrite
	RightSockShutdown
)

// RightsAll grants everything.
const RightsAll Rights = (1 << 29) - 1

// rightsDir / rightsFile are the default capability sets for preopened
// directories and regular files.
const (
	rightsFile = RightFdDatasync | RightFdRead | RightFdSeek | RightFdFdstatSetFlags |
		RightFdSync | RightFdTell | RightFdWrite | RightFdAdvise | RightFdAllocate |
		RightFdFilestatGet | RightFdFilestatSetSize | RightFdFilestatSetTimes |
		RightPollFdReadwrite
	rightsDir = RightsAll &^ (RightFdRead | RightFdWrite | RightFdSeek | RightFdTell)
)

// File types (WASI filetype encodings).
const (
	filetypeUnknown      = 0
	filetypeDir          = 3
	filetypeRegular      = 4
	filetypeSymlink      = 7
	filetypeCharacterDev = 2
)

// Open flags (WASI oflags).
const (
	oflagCreat     = 1 << 0
	oflagDirectory = 1 << 1
	oflagExcl      = 1 << 2
	oflagTrunc     = 1 << 3
)

// FD flags (WASI fdflags).
const (
	fdflagAppend   = 1 << 0
	fdflagDsync    = 1 << 1
	fdflagNonblock = 1 << 2
	fdflagRsync    = 1 << 3
	fdflagSync     = 1 << 4
)

// Whence values.
const (
	whenceSet = 0
	whenceCur = 1
	whenceEnd = 2
)

// Clock IDs.
const (
	clockRealtime  = 0
	clockMonotonic = 1
)

// Config assembles a System.
type Config struct {
	// Args and Env populate args_get / environ_get.
	Args []string
	Env  []string
	// Stdin, Stdout, Stderr are the stdio channels. Writes leave the
	// enclave (OCALL) when an enclave is attached.
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
	// FS is the file backend serving preopened trees (IPFS-backed trusted
	// storage in TWINE's configuration, or the untrusted host layer).
	FS Backend
	// Preopens maps guest paths (e.g. "/data") to backend directories.
	// Iteration order is fixed by sorting the guest paths.
	Preopens map[string]string
	// Clock is the untrusted time source (nil = hostfs.RealClock).
	Clock hostfs.Clock
	// Enclave, when set, charges OCALL costs for every untrusted
	// interaction and supplies the trusted entropy source.
	Enclave *sgx.Enclave
	// DisableUntrustedPOSIX globally disables the generic untrusted layer
	// (§IV-C): host-backend file systems and the host clock return
	// ErrnoNotcapable / fall back to a logical clock.
	DisableUntrustedPOSIX bool
	// Prof receives call counts ("wasi.<name>") and timing.
	Prof *prof.Registry
}

// System is one WASI instance: the descriptor table plus routing state.
// It is bound to a single Wasm instance and is not safe for concurrent use.
type System struct {
	cfg Config

	fds    map[int32]*fdEntry
	nextFD int32

	lastMono int64 // monotonic guard (§IV-C)
	logical  int64 // logical clock when the untrusted clock is disabled

	exited   bool
	exitCode uint32
}

type fdKind int

const (
	kindStdin fdKind = iota
	kindStdout
	kindStderr
	kindDir
	kindFile
)

type fdEntry struct {
	kind    fdKind
	handle  FileHandle // kindFile
	path    string     // backend path (kindDir/kindFile)
	guest   string     // guest-visible path for preopens
	prestat bool

	rights     Rights
	inheriting Rights
	fdflags    uint16

	readdirNames []hostfs.FileInfo // snapshot for cookie-based readdir
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		cfg.Clock = hostfs.NewRealClock()
	}
	s := &System{cfg: cfg, fds: make(map[int32]*fdEntry), nextFD: 3}
	s.fds[0] = &fdEntry{kind: kindStdin, rights: RightFdRead}
	s.fds[1] = &fdEntry{kind: kindStdout, rights: RightFdWrite}
	s.fds[2] = &fdEntry{kind: kindStderr, rights: RightFdWrite}
	for _, guest := range sortedKeys(cfg.Preopens) {
		backendPath := cfg.Preopens[guest]
		fd := s.nextFD
		s.nextFD++
		s.fds[fd] = &fdEntry{
			kind: kindDir, path: backendPath, guest: guest, prestat: true,
			rights: rightsDir | RightFdReaddir, inheriting: RightsAll,
		}
	}
	return s, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// Exited reports whether proc_exit ran, and with which code.
func (s *System) Exited() (bool, uint32) { return s.exited, s.exitCode }

// FdFingerprint summarises the descriptor-table shape: the number of open
// descriptors and the next descriptor to be issued. The table starts at a
// fixed fingerprint (3 stdio fds + the preopens, nextFD past them) and
// nextFD is monotonic, so any open or close a guest performed — even a
// balanced open-then-close pair — moves the fingerprint. The serving
// pool's warm-reset path (PR 8) uses it as the cheap dirty check deciding
// whether per-request isolation requires a fresh WASI clone.
func (s *System) FdFingerprint() (open int, next int32) { return len(s.fds), s.nextFD }

// forInstance resolves the System serving a call from in: the instance's
// own System when one was bound through the wasm HostCtx, the registering
// System otherwise. This is what lets a single registered ImportObject
// back many concurrent instances with isolated WASI state.
func (s *System) forInstance(in *wasm.Instance) *System {
	if in != nil {
		if sys, ok := in.HostCtx().(*System); ok && sys != nil {
			return sys
		}
	}
	return s
}

// CloneOptions overrides per-instance state when cloning a System.
type CloneOptions struct {
	// Args, when non-nil, replaces the program arguments.
	Args []string
	// Env, when non-nil, replaces the environment.
	Env []string
	// Stdin/Stdout/Stderr, when non-nil, replace the stdio channels.
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
}

// Clone builds a sibling System for another instance of the same runtime:
// a fresh descriptor table, preopens re-established, its own clock guards
// and exit state — over the same storage, enclave and profiling registry.
// The file backend is cloned too (CloneBackend), so write-behind batching
// state is per-instance while the underlying store stays shared. This is
// the WASI half of multi-instance serving: state that POSIX scopes
// per-process is per-System, everything else is shared.
func (s *System) Clone(opt CloneOptions) (*System, error) {
	cfg := s.cfg
	cfg.FS = CloneBackend(cfg.FS)
	if opt.Args != nil {
		cfg.Args = opt.Args
	}
	if opt.Env != nil {
		cfg.Env = opt.Env
	}
	if opt.Stdin != nil {
		cfg.Stdin = opt.Stdin
	}
	if opt.Stdout != nil {
		cfg.Stdout = opt.Stdout
	}
	if opt.Stderr != nil {
		cfg.Stderr = opt.Stderr
	}
	return NewSystem(cfg)
}

// ocall crosses the enclave boundary for untrusted work through the
// classic two-transition path (used for blocking calls such as sleeps,
// which must not occupy the switchless worker).
func (s *System) ocall(name string, fn func() error) error {
	if s.cfg.Enclave == nil || !s.cfg.Enclave.Inside() {
		return fn()
	}
	return s.cfg.Enclave.OCall(name, fn)
}

// ocallN is the size-aware variant: hot, small calls (clock reads, stdio
// traffic) ride the switchless ring when the enclave has one, and fall
// back to a classic OCall otherwise.
func (s *System) ocallN(name string, payload int, fn func() error) error {
	if s.cfg.Enclave == nil || !s.cfg.Enclave.Inside() {
		return fn()
	}
	return s.cfg.Enclave.SwitchlessOCall(name, payload, fn)
}

// backendFlusher is implemented by backends that can hold write-behind
// state (the host backend's batched small writes).
type backendFlusher interface{ FlushPending() error }

// FlushFS submits any write-behind state the file backend holds, making
// every completed write visible on the untrusted store. It is called on
// proc_exit and by the runtime at the end of every guest entry, so
// batched writes can never outlive guest execution — the guarantee the
// switchless differential tests rely on.
func (s *System) FlushFS() error {
	if f, ok := s.cfg.FS.(backendFlusher); ok {
		return f.FlushPending()
	}
	return nil
}

// fsDenied reports whether the generic untrusted layer is disabled for
// this backend.
func (s *System) fsDenied() bool {
	return s.cfg.DisableUntrustedPOSIX && (s.cfg.FS == nil || !s.cfg.FS.Trusted())
}

func (s *System) get(fd int32) (*fdEntry, Errno) {
	e, ok := s.fds[fd]
	if !ok {
		return nil, ErrnoBadf
	}
	return e, ErrnoSuccess
}

func (s *System) getWithRights(fd int32, need Rights) (*fdEntry, Errno) {
	e, errno := s.get(fd)
	if errno != ErrnoSuccess {
		return nil, errno
	}
	if e.rights&need != need {
		return nil, ErrnoNotcapable
	}
	return e, ErrnoSuccess
}

// resolvePath joins a directory descriptor with a guest-relative path,
// confined to the preopened subtree (chroot-like, §IV "capabilities
// offered by chroot").
func (e *fdEntry) resolvePath(rel string) (string, Errno) {
	if e.kind != kindDir {
		return "", ErrnoNotdir
	}
	joined := e.path + "/" + rel
	// hostfs path cleaning rejects escapes; do a cheap pre-check here so
	// the error maps to the sandbox errno.
	depth := 0
	start := 0
	p := joined + "/"
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		seg := p[start:i]
		start = i + 1
		switch seg {
		case "", ".":
		case "..":
			depth--
			if depth < 0 {
				return "", ErrnoNotcapable
			}
		default:
			depth++
		}
	}
	return joined, ErrnoSuccess
}

// mapError converts backend errors to WASI errnos.
func mapError(err error) Errno {
	switch {
	case err == nil:
		return ErrnoSuccess
	case errors.Is(err, hostfs.ErrNotExist):
		return ErrnoNoent
	case errors.Is(err, hostfs.ErrExist):
		return ErrnoExist
	case errors.Is(err, hostfs.ErrIsDir):
		return ErrnoIsdir
	case errors.Is(err, hostfs.ErrNotDir):
		return ErrnoNotdir
	case errors.Is(err, hostfs.ErrNotEmpty):
		return ErrnoNotempty
	case errors.Is(err, hostfs.ErrPermission):
		return ErrnoAcces
	case errors.Is(err, hostfs.ErrInvalid):
		return ErrnoInval
	case errors.Is(err, hostfs.ErrUnsupported):
		return ErrnoNotsup
	case errors.Is(err, ipfs.ErrSeekPastEnd):
		return ErrnoInval
	case errors.Is(err, ipfs.ErrReadOnly):
		return ErrnoPerm
	case errors.Is(err, ipfs.ErrIntegrity), errors.Is(err, ipfs.ErrBadName):
		return ErrnoIo
	case errors.Is(err, io.EOF):
		return ErrnoSuccess
	default:
		return ErrnoIo
	}
}

// String renders an errno for diagnostics.
func (e Errno) String() string {
	names := map[Errno]string{
		ErrnoSuccess: "ESUCCESS", ErrnoBadf: "EBADF", ErrnoExist: "EEXIST",
		ErrnoInval: "EINVAL", ErrnoIo: "EIO", ErrnoIsdir: "EISDIR",
		ErrnoNoent: "ENOENT", ErrnoNosys: "ENOSYS", ErrnoNotdir: "ENOTDIR",
		ErrnoNotempty: "ENOTEMPTY", ErrnoPerm: "EPERM", ErrnoNotcapable: "ENOTCAPABLE",
		ErrnoAcces: "EACCES", ErrnoNotsup: "ENOTSUP", ErrnoFault: "EFAULT",
		ErrnoSpipe: "ESPIPE", ErrnoLoop: "ELOOP",
	}
	if n, ok := names[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", uint16(e))
}

// count instruments one WASI call.
func (s *System) count(name string) prof.Span {
	s.cfg.Prof.Incr("wasi." + name)
	return s.cfg.Prof.Start("wasi.time")
}
