package wasi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/sgx"
	"twine/internal/wasm"
	"twine/wasmgen"
)

// newGuest builds a minimal instance whose memory the WASI functions
// operate on.
func newGuest(t *testing.T) *wasm.Instance {
	t.Helper()
	m := wasmgen.NewModule()
	m.Memory(4, 4)
	f := m.Func(wasmgen.Sig().Returns())
	f.End()
	m.Export("noop", f)
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	return in
}

// newSystem builds a System over the given backend with one preopen "/".
func newSystem(t *testing.T, be Backend, mutate ...func(*Config)) *System {
	t.Helper()
	cfg := Config{
		Args:     []string{"prog", "arg1"},
		Env:      []string{"KEY=value"},
		FS:       be,
		Preopens: map[string]string{"/": ""},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func hostBE() Backend { return NewHostBackend(hostfs.NewMemFS(), nil) }

func ipfsBE() Backend {
	mem := hostfs.NewMemFS()
	host := NewHostBackend(mem, nil)
	return NewIPFSBackend(ipfs.New(nil, mem, ipfs.Options{}), host)
}

// eachBackend runs a subtest against the host (untrusted POSIX) and IPFS
// (trusted) backends; WASI behaviour must match.
func eachBackend(t *testing.T, fn func(t *testing.T, s *System, in *wasm.Instance)) {
	t.Helper()
	t.Run("host", func(t *testing.T) { fn(t, newSystem(t, hostBE()), newGuest(t)) })
	t.Run("ipfs", func(t *testing.T) { fn(t, newSystem(t, ipfsBE()), newGuest(t)) })
}

// writeGuestString places s at addr in guest memory.
func writeGuestString(t *testing.T, in *wasm.Instance, addr uint32, s string) {
	t.Helper()
	b, err := in.Memory().Bytes(addr, uint32(len(s)))
	if err != nil {
		t.Fatalf("guest write: %v", err)
	}
	copy(b, s)
}

// writeIovec places a single iovec (base, len) at addr.
func writeIovec(t *testing.T, in *wasm.Instance, addr, base, n uint32) {
	t.Helper()
	in.Memory().WriteU32(addr, base)
	in.Memory().WriteU32(addr+4, n)
}

// openFile performs path_open against the preopened root (fd 3) and
// returns the new fd.
func openFile(t *testing.T, s *System, in *wasm.Instance, name string, oflags uint32, rights Rights) int32 {
	t.Helper()
	writeGuestString(t, in, 1024, name)
	errno := s.pathOpen(in, []uint64{
		3, 0, 1024, uint64(len(name)), uint64(oflags),
		uint64(rights), uint64(RightsAll), 0, 2048,
	})
	if errno != ErrnoSuccess {
		t.Fatalf("path_open(%s) = %v", name, errno)
	}
	fd, _ := in.Memory().ReadU32(2048)
	return int32(fd)
}

func TestArgsAndEnviron(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	if errno := s.argsSizesGet(in, []uint64{100, 104}); errno != ErrnoSuccess {
		t.Fatalf("args_sizes_get = %v", errno)
	}
	argc, _ := in.Memory().ReadU32(100)
	bufsz, _ := in.Memory().ReadU32(104)
	if argc != 2 || bufsz != uint32(len("prog\x00arg1\x00")) {
		t.Errorf("sizes = %d, %d", argc, bufsz)
	}
	if errno := s.argsGet(in, []uint64{200, 300}); errno != ErrnoSuccess {
		t.Fatalf("args_get = %v", errno)
	}
	buf, _ := in.Memory().Bytes(300, bufsz)
	if string(buf) != "prog\x00arg1\x00" {
		t.Errorf("args buf = %q", buf)
	}
	if errno := s.environSizesGet(in, []uint64{100, 104}); errno != ErrnoSuccess {
		t.Fatalf("environ_sizes_get = %v", errno)
	}
	n, _ := in.Memory().ReadU32(100)
	if n != 1 {
		t.Errorf("environ count = %d", n)
	}
}

type backwardsClock struct {
	t    int64
	step int64
}

func (c *backwardsClock) Now() time.Time            { return time.Unix(0, c.t) }
func (c *backwardsClock) Monotonic() int64          { c.t += c.step; return c.t }
func (c *backwardsClock) Resolution() time.Duration { return time.Nanosecond }

func TestClockMonotonicGuard(t *testing.T) {
	// A malicious host returns decreasing monotonic time; the enclave-side
	// guard must keep values strictly increasing (§IV-C).
	clk := &backwardsClock{t: 1000, step: -10}
	s := newSystem(t, hostBE(), func(c *Config) { c.Clock = clk })
	in := newGuest(t)
	var last uint64
	for i := 0; i < 5; i++ {
		if errno := s.clockTimeGet(in, []uint64{clockMonotonic, 0, 64}); errno != ErrnoSuccess {
			t.Fatalf("clock_time_get = %v", errno)
		}
		v, _ := in.Memory().ReadU64(64)
		if v <= last {
			t.Fatalf("monotonic clock went backwards: %d then %d", last, v)
		}
		last = v
	}
}

func TestClockDisabledUntrustedPOSIX(t *testing.T) {
	s := newSystem(t, hostBE(), func(c *Config) { c.DisableUntrustedPOSIX = true })
	in := newGuest(t)
	if errno := s.clockTimeGet(in, []uint64{clockMonotonic, 0, 64}); errno != ErrnoSuccess {
		t.Fatalf("clock_time_get = %v", errno)
	}
	v1, _ := in.Memory().ReadU64(64)
	s.clockTimeGet(in, []uint64{clockMonotonic, 0, 64})
	v2, _ := in.Memory().ReadU64(64)
	if v2 <= v1 {
		t.Error("logical clock not increasing")
	}
	if errno := s.clockResGet(in, []uint64{99, 64}); errno != ErrnoInval {
		t.Errorf("bad clock id = %v", errno)
	}
}

func TestRandomGet(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	if errno := s.randomGet(in, []uint64{512, 64}); errno != ErrnoSuccess {
		t.Fatalf("random_get = %v", errno)
	}
	buf, _ := in.Memory().Bytes(512, 64)
	if bytes.Equal(buf, make([]byte, 64)) {
		t.Error("random_get produced all zeros")
	}
}

func TestFileWriteReadSeek(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		fd := openFile(t, s, in, "test.db", oflagCreat, rightsFile)

		// fd_write "hello world" via two iovecs.
		writeGuestString(t, in, 4096, "hello ")
		writeGuestString(t, in, 4200, "world")
		writeIovec(t, in, 8192, 4096, 6)
		writeIovec(t, in, 8200, 4200, 5)
		if errno := s.fdWrite(in, []uint64{uint64(fd), 8192, 2, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_write = %v", errno)
		}
		n, _ := in.Memory().ReadU32(300)
		if n != 11 {
			t.Fatalf("nwritten = %d", n)
		}

		// fd_tell / fd_seek.
		if errno := s.fdTell(in, []uint64{uint64(fd), 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_tell = %v", errno)
		}
		pos, _ := in.Memory().ReadU64(300)
		if pos != 11 {
			t.Fatalf("tell = %d", pos)
		}
		if errno := s.fdSeek(in, []uint64{uint64(fd), 0, whenceSet, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_seek = %v", errno)
		}

		// fd_read back.
		writeIovec(t, in, 8192, 16384, 32)
		if errno := s.fdRead(in, []uint64{uint64(fd), 8192, 1, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_read = %v", errno)
		}
		nr, _ := in.Memory().ReadU32(300)
		got, _ := in.Memory().Bytes(16384, nr)
		if string(got) != "hello world" {
			t.Errorf("read back %q", got)
		}

		// fd_filestat_get reports the size.
		if errno := s.fdFilestatGet(in, []uint64{uint64(fd), 1000}); errno != ErrnoSuccess {
			t.Fatalf("fd_filestat_get = %v", errno)
		}
		size, _ := in.Memory().ReadU64(1032)
		if size != 11 {
			t.Errorf("filestat size = %d", size)
		}

		if errno := s.fdClose(in, []uint64{uint64(fd)}); errno != ErrnoSuccess {
			t.Fatalf("fd_close = %v", errno)
		}
		if errno := s.fdClose(in, []uint64{uint64(fd)}); errno != ErrnoBadf {
			t.Errorf("double close = %v", errno)
		}
	})
}

func TestSeekPastEndExtends(t *testing.T) {
	// The §IV-E SQLite pattern: seek well past EOF and write; with IPFS
	// the file is extended with null bytes.
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		fd := openFile(t, s, in, "sparse.db", oflagCreat, rightsFile)
		if errno := s.fdSeek(in, []uint64{uint64(fd), 10000, whenceSet, 300}); errno != ErrnoSuccess {
			t.Fatalf("seek past end = %v", errno)
		}
		writeGuestString(t, in, 4096, "tail")
		writeIovec(t, in, 8192, 4096, 4)
		if errno := s.fdWrite(in, []uint64{uint64(fd), 8192, 1, 300}); errno != ErrnoSuccess {
			t.Fatalf("write after far seek = %v", errno)
		}
		if errno := s.fdFilestatGet(in, []uint64{uint64(fd), 1000}); errno != ErrnoSuccess {
			t.Fatalf("filestat = %v", errno)
		}
		size, _ := in.Memory().ReadU64(1032)
		if size != 10004 {
			t.Errorf("size = %d, want 10004", size)
		}
		// The gap reads as zeros.
		s.fdSeek(in, []uint64{uint64(fd), 9996, whenceSet, 300})
		writeIovec(t, in, 8192, 16384, 8)
		s.fdRead(in, []uint64{uint64(fd), 8192, 1, 300})
		got, _ := in.Memory().Bytes(16384, 8)
		if !bytes.Equal(got[:4], make([]byte, 4)) || string(got[4:]) != "tail" {
			t.Errorf("gap content = %q", got)
		}
	})
}

func TestPreadPwritePreserveCursor(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		fd := openFile(t, s, in, "pp.db", oflagCreat, rightsFile)
		writeGuestString(t, in, 4096, "0123456789")
		writeIovec(t, in, 8192, 4096, 10)
		s.fdWrite(in, []uint64{uint64(fd), 8192, 1, 300})
		s.fdSeek(in, []uint64{uint64(fd), 2, whenceSet, 300})

		// pwrite at 5 must not move the cursor.
		writeGuestString(t, in, 4200, "XX")
		writeIovec(t, in, 8200, 4200, 2)
		if errno := s.fdPwrite(in, []uint64{uint64(fd), 8200, 1, 5, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_pwrite = %v", errno)
		}
		s.fdTell(in, []uint64{uint64(fd), 300})
		pos, _ := in.Memory().ReadU64(300)
		if pos != 2 {
			t.Errorf("cursor after pwrite = %d, want 2", pos)
		}

		// pread at 4.
		writeIovec(t, in, 8200, 16384, 4)
		if errno := s.fdPread(in, []uint64{uint64(fd), 8200, 1, 4, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_pread = %v", errno)
		}
		got, _ := in.Memory().Bytes(16384, 4)
		if string(got) != "4XX7" {
			t.Errorf("pread = %q, want 4XX7", got)
		}
	})
}

func TestSandboxEscapeRejected(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		name := "../../etc/passwd"
		writeGuestString(t, in, 1024, name)
		errno := s.pathOpen(in, []uint64{3, 0, 1024, uint64(len(name)), 0, uint64(RightsAll), 0, 0, 2048})
		if errno != ErrnoNotcapable {
			t.Errorf("escape open = %v, want ENOTCAPABLE", errno)
		}
	})
}

func TestRightsEnforced(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		// Create the file first with full rights.
		fd := openFile(t, s, in, "ro.db", oflagCreat, rightsFile)
		s.fdClose(in, []uint64{uint64(fd)})

		// Re-open read-only: writes must be refused at the rights layer.
		ro := openFile(t, s, in, "ro.db", 0, RightFdRead|RightFdSeek)
		writeIovec(t, in, 8192, 4096, 4)
		if errno := s.fdWrite(in, []uint64{uint64(ro), 8192, 1, 300}); errno != ErrnoNotcapable {
			t.Errorf("write without right = %v, want ENOTCAPABLE", errno)
		}
		if errno := s.fdTell(in, []uint64{uint64(ro), 300}); errno != ErrnoNotcapable {
			t.Errorf("tell without right = %v, want ENOTCAPABLE", errno)
		}
	})
}

func TestFdstatAndSetRights(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	fd := openFile(t, s, in, "st.db", oflagCreat, rightsFile)
	if errno := s.fdFdstatGet(in, []uint64{uint64(fd), 100}); errno != ErrnoSuccess {
		t.Fatalf("fd_fdstat_get = %v", errno)
	}
	ft, _ := in.Memory().Bytes(100, 1)
	if ft[0] != filetypeRegular {
		t.Errorf("filetype = %d", ft[0])
	}
	// Shrink rights, then try to grow them back (must fail).
	if errno := s.fdFdstatSetRights(in, []uint64{uint64(fd), uint64(RightFdRead), 0}); errno != ErrnoSuccess {
		t.Fatalf("shrink rights = %v", errno)
	}
	if errno := s.fdFdstatSetRights(in, []uint64{uint64(fd), uint64(rightsFile), 0}); errno != ErrnoNotcapable {
		t.Errorf("grow rights = %v, want ENOTCAPABLE", errno)
	}
}

func TestPrestat(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	if errno := s.fdPrestatGet(in, []uint64{3, 100}); errno != ErrnoSuccess {
		t.Fatalf("fd_prestat_get = %v", errno)
	}
	tag, _ := in.Memory().Bytes(100, 1)
	nameLen, _ := in.Memory().ReadU32(104)
	if tag[0] != 0 || nameLen != 1 {
		t.Errorf("prestat = tag %d len %d", tag[0], nameLen)
	}
	if errno := s.fdPrestatDirName(in, []uint64{3, 200, uint64(nameLen)}); errno != ErrnoSuccess {
		t.Fatalf("fd_prestat_dir_name = %v", errno)
	}
	name, _ := in.Memory().Bytes(200, nameLen)
	if string(name) != "/" {
		t.Errorf("preopen name = %q", name)
	}
	// fd 4 is not a preopen.
	if errno := s.fdPrestatGet(in, []uint64{4, 100}); errno != ErrnoBadf {
		t.Errorf("prestat of non-preopen = %v", errno)
	}
}

func TestDirectoryOps(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		mk := func(name string) {
			writeGuestString(t, in, 1024, name)
			if errno := s.pathCreateDirectory(in, []uint64{3, 1024, uint64(len(name))}); errno != ErrnoSuccess {
				t.Fatalf("mkdir %s = %v", name, errno)
			}
		}
		mk("sub")
		// Create files inside.
		for _, n := range []string{"sub/a", "sub/b"} {
			fd := openFile(t, s, in, n, oflagCreat, rightsFile)
			s.fdClose(in, []uint64{uint64(fd)})
		}
		// Open the directory.
		writeGuestString(t, in, 1024, "sub")
		if errno := s.pathOpen(in, []uint64{3, 0, 1024, 3, oflagDirectory, uint64(RightsAll), uint64(RightsAll), 0, 2048}); errno != ErrnoSuccess {
			t.Fatalf("open dir = %v", errno)
		}
		dirFD, _ := in.Memory().ReadU32(2048)

		// fd_readdir.
		if errno := s.fdReaddir(in, []uint64{uint64(dirFD), 8192, 4096, 0, 300}); errno != ErrnoSuccess {
			t.Fatalf("fd_readdir = %v", errno)
		}
		used, _ := in.Memory().ReadU32(300)
		raw, _ := in.Memory().Bytes(8192, used)
		var names []string
		for off := 0; off+24 <= len(raw); {
			nameLen := int(binary.LittleEndian.Uint32(raw[off+16:]))
			if off+24+nameLen > len(raw) {
				break
			}
			names = append(names, string(raw[off+24:off+24+nameLen]))
			off += 24 + nameLen
		}
		if strings.Join(names, ",") != "a,b" {
			t.Errorf("readdir names = %v", names)
		}

		// path_rename and path_unlink_file.
		writeGuestString(t, in, 1024, "sub/a")
		writeGuestString(t, in, 1124, "sub/c")
		if errno := s.pathRename(in, []uint64{3, 1024, 5, 3, 1124, 5}); errno != ErrnoSuccess {
			t.Fatalf("rename = %v", errno)
		}
		writeGuestString(t, in, 1024, "sub/b")
		if errno := s.pathUnlinkFile(in, []uint64{3, 1024, 5}); errno != ErrnoSuccess {
			t.Fatalf("unlink = %v", errno)
		}
		writeGuestString(t, in, 1024, "sub/c")
		if errno := s.pathUnlinkFile(in, []uint64{3, 1024, 5}); errno != ErrnoSuccess {
			t.Fatalf("unlink c = %v", errno)
		}
		// Remove the (now empty) directory.
		writeGuestString(t, in, 1024, "sub")
		if errno := s.pathRemoveDirectory(in, []uint64{3, 1024, 3}); errno != ErrnoSuccess {
			t.Fatalf("rmdir = %v", errno)
		}
		writeGuestString(t, in, 1024, "sub")
		if errno := s.pathFilestatGet(in, []uint64{3, 1, 1024, 3, 4000}); errno != ErrnoNoent {
			t.Errorf("stat removed dir = %v", errno)
		}
	})
}

func TestFilestatSetSizeAndAllocate(t *testing.T) {
	eachBackend(t, func(t *testing.T, s *System, in *wasm.Instance) {
		fd := openFile(t, s, in, "sz.db", oflagCreat, rightsFile)
		if errno := s.fdFilestatSetSize(in, []uint64{uint64(fd), 5000}); errno != ErrnoSuccess {
			t.Fatalf("set_size = %v", errno)
		}
		s.fdFilestatGet(in, []uint64{uint64(fd), 1000})
		size, _ := in.Memory().ReadU64(1032)
		if size != 5000 {
			t.Errorf("size after set_size = %d", size)
		}
		if errno := s.fdAllocate(in, []uint64{uint64(fd), 4000, 3000}); errno != ErrnoSuccess {
			t.Fatalf("fd_allocate = %v", errno)
		}
		s.fdFilestatGet(in, []uint64{uint64(fd), 1000})
		size, _ = in.Memory().ReadU64(1032)
		if size != 7000 {
			t.Errorf("size after allocate = %d", size)
		}
	})
}

func TestFdRenumber(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	fd := openFile(t, s, in, "rn.db", oflagCreat, rightsFile)
	if errno := s.fdRenumber(in, []uint64{uint64(fd), 17}); errno != ErrnoSuccess {
		t.Fatalf("fd_renumber = %v", errno)
	}
	if errno := s.fdTell(in, []uint64{17, 300}); errno != ErrnoSuccess {
		t.Errorf("renumbered fd unusable: %v", errno)
	}
	if errno := s.fdTell(in, []uint64{uint64(fd), 300}); errno != ErrnoBadf {
		t.Errorf("old fd still live: %v", errno)
	}
}

func TestDisableUntrustedPOSIX(t *testing.T) {
	// Host backend blocked; IPFS backend (trusted) still works.
	s := newSystem(t, hostBE(), func(c *Config) { c.DisableUntrustedPOSIX = true })
	in := newGuest(t)
	writeGuestString(t, in, 1024, "f")
	errno := s.pathOpen(in, []uint64{3, 0, 1024, 1, oflagCreat, uint64(rightsFile), 0, 0, 2048})
	if errno != ErrnoNotcapable {
		t.Errorf("host open with POSIX disabled = %v, want ENOTCAPABLE", errno)
	}

	s2 := newSystem(t, ipfsBE(), func(c *Config) { c.DisableUntrustedPOSIX = true })
	in2 := newGuest(t)
	fd := openFile(t, s2, in2, "f", oflagCreat, rightsFile)
	if errno := s2.fdClose(in2, []uint64{uint64(fd)}); errno != ErrnoSuccess {
		t.Errorf("trusted backend blocked: %v", errno)
	}
}

func TestSocketsUnsupported(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	if errno := s.sockRecv(in, make([]uint64, 6)); errno != ErrnoNosys {
		t.Errorf("sock_recv = %v", errno)
	}
	if errno := s.sockSend(in, make([]uint64, 5)); errno != ErrnoNosys {
		t.Errorf("sock_send = %v", errno)
	}
	if errno := s.sockShutdown(in, make([]uint64, 2)); errno != ErrnoNosys {
		t.Errorf("sock_shutdown = %v", errno)
	}
	if errno := s.procRaise(in, []uint64{9}); errno != ErrnoNosys {
		t.Errorf("proc_raise = %v", errno)
	}
	if errno := s.schedYield(in, nil); errno != ErrnoSuccess {
		t.Errorf("sched_yield = %v", errno)
	}
}

func TestPollOneoffClock(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	// One clock subscription with a 1ms relative timeout.
	base := uint32(1024)
	in.Memory().WriteU64(base, 0xCAFE)       // userdata
	in.Memory().WriteByteAt(base+8, 0)       // tag: clock
	in.Memory().WriteU32(base+16, 1)         // clock id
	in.Memory().WriteU64(base+24, 1_000_000) // timeout 1ms
	start := time.Now()
	if errno := s.pollOneoff(in, []uint64{uint64(base), 2048, 1, 300}); errno != ErrnoSuccess {
		t.Fatalf("poll_oneoff = %v", errno)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("poll did not sleep")
	}
	n, _ := in.Memory().ReadU32(300)
	if n != 1 {
		t.Fatalf("nevents = %d", n)
	}
	userdata, _ := in.Memory().ReadU64(2048)
	if userdata != 0xCAFE {
		t.Errorf("event userdata = %#x", userdata)
	}
}

// TestEndToEndHelloWorld runs a real Wasm module through the registered
// WASI imports: _start writes to stdout and exits.
func TestEndToEndHelloWorld(t *testing.T) {
	m := wasmgen.NewModule()
	fdWrite := m.ImportFunc(ModuleName, "fd_write",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	procExit := m.ImportFunc(ModuleName, "proc_exit", wasmgen.Sig(wasmgen.I32))
	m.Memory(1, 1)
	m.Data(16, []byte("hello from wasi\n"))
	start := m.Func(wasmgen.Sig())
	// iovec at 0: base=16 len=16
	start.I32Const(0).I32Const(16).I32Store(0)
	start.I32Const(4).I32Const(16).I32Store(0)
	start.I32Const(1).I32Const(0).I32Const(1).I32Const(8).Call(fdWrite).Drop()
	start.I32Const(0).Call(procExit)
	start.End()
	m.Export("_start", start)

	var out bytes.Buffer
	s, err := NewSystem(Config{Stdout: &out, FS: hostBE()})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	imp := wasm.NewImportObject()
	s.Register(imp)

	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in, err := wasm.Instantiate(c, imp, wasm.Config{})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	_, err = in.Invoke("_start")
	var tr *wasm.Trap
	if !errors.As(err, &tr) || tr.Kind != wasm.TrapExit || tr.Code != 0 {
		t.Fatalf("_start = %v, want clean TrapExit", err)
	}
	if out.String() != "hello from wasi\n" {
		t.Errorf("stdout = %q", out.String())
	}
	if exited, code := s.Exited(); !exited || code != 0 {
		t.Errorf("Exited = %v, %d", exited, code)
	}
}

func TestOCallAccounting(t *testing.T) {
	// With an enclave attached, untrusted file operations must cross the
	// boundary; random_get (trusted) must not.
	platform := sgx.NewPlatform("wasi")
	enclave, err := platform.NewEnclave(sgx.TestConfig(), []byte("twine"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	be := NewHostBackend(hostfs.NewMemFS(), enclave)
	s := newSystem(t, be, func(c *Config) { c.Enclave = enclave })
	in := newGuest(t)

	err = enclave.ECall("main", func() error {
		fd := openFile(t, s, in, "x", oflagCreat, rightsFile)
		writeGuestString(t, in, 4096, "data")
		writeIovec(t, in, 8192, 4096, 4)
		s.fdWrite(in, []uint64{uint64(fd), 8192, 1, 300})
		s.fdClose(in, []uint64{uint64(fd)})
		base := enclave.Stats().OCalls
		if base == 0 {
			t.Error("file I/O caused no OCALLs")
		}
		s.randomGet(in, []uint64{512, 16})
		if enclave.Stats().OCalls != base {
			t.Error("random_get crossed the enclave boundary")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
}

func TestStdinRead(t *testing.T) {
	s := newSystem(t, hostBE(), func(c *Config) { c.Stdin = strings.NewReader("input") })
	in := newGuest(t)
	writeIovec(t, in, 8192, 4096, 16)
	if errno := s.fdRead(in, []uint64{0, 8192, 1, 300}); errno != ErrnoSuccess {
		t.Fatalf("stdin read = %v", errno)
	}
	n, _ := in.Memory().ReadU32(300)
	got, _ := in.Memory().Bytes(4096, n)
	if string(got) != "input" {
		t.Errorf("stdin = %q", got)
	}
}

func TestBadFDEverywhere(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	bad := uint64(99)
	checks := map[string]Errno{
		"fd_close":    s.fdClose(in, []uint64{bad}),
		"fd_read":     s.fdRead(in, []uint64{bad, 0, 0, 0}),
		"fd_write":    s.fdWrite(in, []uint64{bad, 0, 0, 0}),
		"fd_seek":     s.fdSeek(in, []uint64{bad, 0, 0, 0}),
		"fd_tell":     s.fdTell(in, []uint64{bad, 0}),
		"fd_sync":     s.fdSync(in, []uint64{bad}),
		"fd_readdir":  s.fdReaddir(in, []uint64{bad, 0, 0, 0, 0}),
		"fd_renumber": s.fdRenumber(in, []uint64{bad, 100}),
	}
	for name, errno := range checks {
		if errno != ErrnoBadf {
			t.Errorf("%s(bad fd) = %v, want EBADF", name, errno)
		}
	}
}

func TestSymlinkOps(t *testing.T) {
	s := newSystem(t, hostBE())
	in := newGuest(t)
	fd := openFile(t, s, in, "target", oflagCreat, rightsFile)
	s.fdClose(in, []uint64{uint64(fd)})

	writeGuestString(t, in, 1024, "target")
	writeGuestString(t, in, 1124, "ln")
	if errno := s.pathSymlink(in, []uint64{1024, 6, 3, 1124, 2}); errno != ErrnoSuccess {
		t.Fatalf("path_symlink = %v", errno)
	}
	if errno := s.pathReadlink(in, []uint64{3, 1124, 2, 4096, 64, 300}); errno != ErrnoSuccess {
		t.Fatalf("path_readlink = %v", errno)
	}
	n, _ := in.Memory().ReadU32(300)
	got, _ := in.Memory().Bytes(4096, n)
	if string(got) != "target" {
		t.Errorf("readlink = %q", got)
	}
	// Hard link.
	writeGuestString(t, in, 1224, "hard")
	if errno := s.pathLink(in, []uint64{3, 0, 1024, 6, 3, 1224, 4}); errno != ErrnoSuccess {
		t.Fatalf("path_link = %v", errno)
	}
	writeGuestString(t, in, 1024, "hard")
	if errno := s.pathFilestatGet(in, []uint64{3, 1, 1024, 4, 4000}); errno != ErrnoSuccess {
		t.Errorf("stat hard link = %v", errno)
	}
}
