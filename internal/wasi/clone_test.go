package wasi

import (
	"bytes"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/ipfs"
)

// TestCloneIsolatesState: a cloned System gets its own descriptor table,
// stdio and backend batching state while sharing the underlying storage.
func TestCloneIsolatesState(t *testing.T) {
	host := hostfs.NewMemFS()
	var out1, out2 bytes.Buffer
	s1, err := NewSystem(Config{
		Args:     []string{"one"},
		Stdout:   &out1,
		FS:       NewHostBackend(host, nil),
		Preopens: map[string]string{"/": ""},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	s2, err := s1.Clone(CloneOptions{Args: []string{"two"}, Stdout: &out2})
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}

	if s1 == s2 {
		t.Fatal("Clone returned the same System")
	}
	if &s1.fds == &s2.fds || len(s2.fds) != len(s1.fds) {
		t.Errorf("clone fd table not fresh: %d entries vs %d", len(s2.fds), len(s1.fds))
	}
	if s1.cfg.FS == s2.cfg.FS {
		t.Error("clone shares the backend value; batching state would interleave")
	}
	if s1.cfg.Args[0] != "one" || s2.cfg.Args[0] != "two" {
		t.Errorf("args not per-clone: %v / %v", s1.cfg.Args, s2.cfg.Args)
	}

	// Mutating one table must not show in the other.
	s2.fds[99] = &fdEntry{kind: kindFile}
	if _, ok := s1.fds[99]; ok {
		t.Error("fd table shared between clones")
	}

	// The storage itself is shared: a file created through one backend is
	// visible through the other.
	h1 := s1.cfg.FS.(*HostBackend)
	h2 := s2.cfg.FS.(*HostBackend)
	if h1.FS != h2.FS {
		t.Fatal("clones do not share the untrusted store")
	}
	f, err := h1.Open("shared.txt", hostfs.OCreate|hostfs.OWrite|hostfs.ORead, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := h2.Open("shared.txt", hostfs.ORead, false)
	if err != nil {
		t.Fatalf("clone backend cannot see shared file: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := g.Read(buf); err != nil || string(buf) != "hello" {
		t.Errorf("clone read %q (%v), want \"hello\"", buf, err)
	}
	_ = g.Close()
}

// TestCloneBackendKinds pins the per-kind cloning rules.
func TestCloneBackendKinds(t *testing.T) {
	host := hostfs.NewMemFS()
	hb := NewHostBackend(host, nil)
	c1 := CloneBackend(hb)
	if c1 == Backend(hb) {
		t.Error("HostBackend clone must be a fresh value (pending-batch state)")
	}
	if c1.(*HostBackend).FS != host {
		t.Error("HostBackend clone lost the shared store")
	}

	pfs := ipfs.New(nil, host, ipfs.Options{})
	ib := NewIPFSBackend(pfs, hb)
	c2 := CloneBackend(ib).(*IPFSBackend)
	if c2.PFS != pfs {
		t.Error("IPFS backend clone must share the protected FS")
	}
	if c2.Host == hb {
		t.Error("IPFS backend clone must get its own host namespace backend")
	}
}
