package wasi

import (
	"errors"
	"testing"

	"twine/internal/chaos"
	"twine/internal/hostfs"
)

// Boundary-retry coverage (PR 6). The backends here have no enclave, so
// each boundary crossing runs the host closure directly — the retry logic
// under test is identical on the enclave path (retry wraps cross).

func retryBackend(plan chaos.Plan, policy RetryPolicy) *HostBackend {
	h := NewHostBackend(hostfs.NewMemFS(), nil)
	h.Chaos = chaos.New(plan)
	h.Retry = policy
	return h
}

// TestBoundaryRetryRecoversTransient: a single injected transient fault
// is absorbed by one retry — the guest never sees it, and the counters
// record the recovery.
func TestBoundaryRetryRecoversTransient(t *testing.T) {
	h := retryBackend(
		chaos.Plan{At: 2, Err: chaos.Transient(errors.New("host stall"))},
		RetryPolicy{Max: 2},
	)
	if _, err := h.Stat("/", true); err != nil { // crossing 1: clean
		t.Fatalf("Stat 1: %v", err)
	}
	// Crossing 2 is injected; the retry's crossing 3 succeeds.
	if _, err := h.Stat("/", true); err != nil {
		t.Fatalf("Stat 2 after retry: %v", err)
	}
	if s := h.RetryCounters(); s.Retries != 1 || s.Recovered != 1 || s.Exhausted != 0 {
		t.Errorf("counters = %+v, want 1 retry, 1 recovered", s)
	}
}

// TestBoundaryRetryExhaustsBudget: a persistent transient fault stops
// being absorbed once the budget is spent — the transient error surfaces
// and is classifiable by the caller.
func TestBoundaryRetryExhaustsBudget(t *testing.T) {
	h := retryBackend(
		chaos.Plan{At: 1, Window: 1000, Err: chaos.Transient(errors.New("host down"))},
		RetryPolicy{Max: 3},
	)
	_, err := h.Stat("/", true)
	if !chaos.IsTransient(err) {
		t.Fatalf("Stat = %v, want a transient error after budget exhaustion", err)
	}
	if s := h.RetryCounters(); s.Retries != 3 || s.Recovered != 0 || s.Exhausted != 1 {
		t.Errorf("counters = %+v, want 3 retries, 1 exhausted", s)
	}
	if ops := h.Chaos.Stats().Ops; ops != 4 {
		t.Errorf("crossings = %d, want 4 (1 + Max retries)", ops)
	}
}

// TestBoundaryPermanentErrorNotRetried: only transient-classified errors
// are re-issued; a permanent fault surfaces on the first attempt.
func TestBoundaryPermanentErrorNotRetried(t *testing.T) {
	boom := errors.New("permanent corruption")
	h := retryBackend(
		chaos.Plan{At: 1, Window: 1000, Err: boom},
		RetryPolicy{Max: 5},
	)
	if _, err := h.Stat("/", true); !errors.Is(err, boom) {
		t.Fatalf("Stat = %v, want the permanent error", err)
	}
	if s := h.RetryCounters(); s.Retries != 0 {
		t.Errorf("retried a permanent error: %+v", s)
	}
	if ops := h.Chaos.Stats().Ops; ops != 1 {
		t.Errorf("crossings = %d, want exactly 1", ops)
	}
}

// TestZeroPolicySurfacesTransients: with no retry budget the transient
// error surfaces immediately — the historical behaviour.
func TestZeroPolicySurfacesTransients(t *testing.T) {
	h := retryBackend(
		chaos.Plan{At: 1, Err: chaos.Transient(nil)},
		RetryPolicy{},
	)
	if _, err := h.Stat("/", true); !chaos.IsTransient(err) {
		t.Fatalf("Stat = %v, want the transient error to surface", err)
	}
	if ops := h.Chaos.Stats().Ops; ops != 1 {
		t.Errorf("crossings = %d, want 1 (no retry)", ops)
	}
}

// TestCloneSharesFaultPlanAndCounters: clones (the pool's per-worker
// systems) consume the same injected operation stream and aggregate into
// the parent's RetryStats.
func TestCloneSharesFaultPlanAndCounters(t *testing.T) {
	h := retryBackend(
		chaos.Plan{At: 1, Err: chaos.Transient(errors.New("glitch"))},
		RetryPolicy{Max: 1},
	)
	cl, ok := CloneBackend(h).(*HostBackend)
	if !ok {
		t.Fatal("CloneBackend changed the backend type")
	}
	// The clone's crossing 1 is injected; its retry (crossing 2) succeeds.
	if _, err := cl.Stat("/", true); err != nil {
		t.Fatalf("clone Stat: %v", err)
	}
	if s := h.RetryCounters(); s.Retries != 1 || s.Recovered != 1 {
		t.Errorf("parent counters = %+v, want the clone's recovery visible", s)
	}
	if ops := h.Chaos.Stats().Ops; ops != 2 {
		t.Errorf("shared injector saw %d ops, want 2", ops)
	}
}
