// Package wasi implements the WebAssembly System Interface
// (snapshot_preview1, the 45-function surface the paper describes in
// §III-B) as TWINE's bridge between trusted and untrusted worlds (§IV-B/C).
//
// Calls are routed in two layers, exactly as the paper describes:
//
//   - trusted implementations are used when available: file-system calls go
//     to the Intel-protected-file-system backend, random_get uses the
//     in-enclave entropy source, and the clock is monotonic-guarded so the
//     untrusted host cannot turn time backwards;
//   - a generic POSIX-like layer outside the enclave handles the rest via
//     OCALLs, with sanity checks on returned values.
//
// A compilation-flag equivalent — Config.DisableUntrustedPOSIX — globally
// disables the generic layer (§IV-C), so applications can be audited for
// reliance on external resources.
//
// The sandbox follows WASI's capability model: guests see only preopened
// directory trees and operations allowed by each descriptor's rights.
//
// # Boundary-crossing cost model (PR 2)
//
// Every untrusted interaction funnels through one accounting helper per
// layer (System.ocall/ocallN for stdio, clocks and sleeps;
// HostBackend.call for POSIX file operations), which decides between the
// classic two-transition OCALL and the enclave's switchless ring:
//
//   - hot, small operations — fd_read / fd_write / fd_seek-induced fstat,
//     path stat, clock reads — ride the ring and pay only the enqueue
//     cost;
//   - operations above the ring's payload ceiling, and blocking calls
//     such as poll_oneoff sleeps (which must not occupy the worker), take
//     the classic path;
//   - adjacent small file writes (the SQLite journal pattern) are batched
//     into a single ring request; the batch is flushed before any
//     operation that could observe untrusted state, so WASI-visible
//     results are byte-identical to the unbatched path.
//
// With switchless disabled the helpers degrade to exactly the historical
// one-OCALL-per-operation accounting, a fidelity invariant enforced by
// internal/core's differential tests.
package wasi
