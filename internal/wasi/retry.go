package wasi

import (
	"sync/atomic"
	"time"

	"twine/internal/chaos"
)

// Bounded retry at the WASI/host boundary (PR 6). The untrusted host can
// fail a call transiently — a stalled worker thread, an EINTR-like
// condition — without the guest-visible operation ever happening. Such
// failures are marked chaos.ErrTransient (by the fault harness, or by a
// host FS that can make the same no-side-effect guarantee), and only
// those are retried: a transient fault models a call that was never
// delivered, so re-issuing it cannot double-apply a side effect.
// Permanent errors pass through on the first attempt, untouched.

// RetryPolicy bounds transient-fault recovery at the host boundary. The
// zero value disables retries (every error surfaces immediately, the
// historical behaviour).
type RetryPolicy struct {
	// Max is the retry budget per boundary call: a call may cross at most
	// 1+Max times before its transient error surfaces to the guest.
	Max int
	// Backoff is slept before the first retry and doubles on each further
	// one (0 = retry immediately).
	Backoff time.Duration
}

// RetryStats counts boundary-retry activity. One instance is shared by a
// backend and all its clones (every pool worker's WASI system), so the
// counters aggregate across a whole runtime.
type RetryStats struct {
	// Retries counts re-issued boundary calls.
	Retries int64
	// Recovered counts boundary calls that failed transiently and then
	// succeeded (or failed permanently — either way, produced a
	// non-transient outcome) within the budget.
	Recovered int64
	// Exhausted counts boundary calls still failing transiently after the
	// full budget; their transient error surfaced to the guest.
	Exhausted int64
}

// retryCounters is the shared atomic backing of RetryStats.
type retryCounters struct {
	retries   int64 // atomic
	recovered int64 // atomic
	exhausted int64 // atomic
}

func (c *retryCounters) snapshot() RetryStats {
	if c == nil {
		return RetryStats{}
	}
	return RetryStats{
		Retries:   atomic.LoadInt64(&c.retries),
		Recovered: atomic.LoadInt64(&c.recovered),
		Exhausted: atomic.LoadInt64(&c.exhausted),
	}
}

// retry re-issues cross while it fails transiently, within policy. cross
// must perform a full boundary crossing per attempt — each retry is a
// fresh host call and pays fresh transition accounting, exactly like a
// guest issuing the call again.
func (p RetryPolicy) retry(c *retryCounters, cross func() error) error {
	err := cross()
	if p.Max <= 0 || !chaos.IsTransient(err) {
		return err
	}
	if c == nil { // struct-literal backend without counters
		c = &retryCounters{}
	}
	backoff := p.Backoff
	for attempt := 0; attempt < p.Max; attempt++ {
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		atomic.AddInt64(&c.retries, 1)
		if err = cross(); !chaos.IsTransient(err) {
			atomic.AddInt64(&c.recovered, 1)
			return err
		}
	}
	atomic.AddInt64(&c.exhausted, 1)
	return err
}
