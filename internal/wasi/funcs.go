package wasi

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"

	"twine/internal/hostfs"
	"twine/internal/wasm"
)

// ModuleName is the import module WASI functions are registered under.
const ModuleName = "wasi_snapshot_preview1"

var (
	i32 = wasm.I32
	i64 = wasm.I64
)

// Register installs all 45 snapshot_preview1 functions into imp.
//
// Calls are dispatched per instance: when the calling wasm.Instance
// carries a *System in its HostCtx, that System serves the call (its own
// fd table, args, clocks); otherwise the registering System does. One
// ImportObject therefore backs any number of concurrently executing
// instances, each with isolated WASI state over the shared backend — the
// wiring the serving pool relies on.
func (s *System) Register(imp *wasm.ImportObject) {
	reg := func(name string, params []wasm.ValueType, results []wasm.ValueType,
		fn func(s *System, in *wasm.Instance, a []uint64) (Errno, error)) {
		imp.AddFunc(wasm.HostFunc{
			Module: ModuleName,
			Name:   name,
			Type:   wasm.FuncType{Params: params, Results: results},
			Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
				sys := s.forInstance(in)
				sp := sys.count(name)
				errno, err := fn(sys, in, a)
				sp.Stop()
				if err != nil {
					return nil, err
				}
				if len(results) == 0 {
					return nil, nil
				}
				// The per-instance result buffer keeps the hot WASI path
				// allocation-free (one []uint64 per call adds up at
				// millions of host calls; see BenchmarkHostCallAllocs).
				return in.Ret1(uint64(errno)), nil
			},
		})
	}
	e := func(fn func(s *System, in *wasm.Instance, a []uint64) Errno) func(*System, *wasm.Instance, []uint64) (Errno, error) {
		return func(s *System, in *wasm.Instance, a []uint64) (Errno, error) { return fn(s, in, a), nil }
	}

	p := func(ts ...wasm.ValueType) []wasm.ValueType { return ts }
	r1 := p(i32)

	reg("args_get", p(i32, i32), r1, e((*System).argsGet))
	reg("args_sizes_get", p(i32, i32), r1, e((*System).argsSizesGet))
	reg("environ_get", p(i32, i32), r1, e((*System).environGet))
	reg("environ_sizes_get", p(i32, i32), r1, e((*System).environSizesGet))
	reg("clock_res_get", p(i32, i32), r1, e((*System).clockResGet))
	reg("clock_time_get", p(i32, i64, i32), r1, e((*System).clockTimeGet))
	reg("fd_advise", p(i32, i64, i64, i32), r1, e((*System).fdAdvise))
	reg("fd_allocate", p(i32, i64, i64), r1, e((*System).fdAllocate))
	reg("fd_close", p(i32), r1, e((*System).fdClose))
	reg("fd_datasync", p(i32), r1, e((*System).fdDatasync))
	reg("fd_fdstat_get", p(i32, i32), r1, e((*System).fdFdstatGet))
	reg("fd_fdstat_set_flags", p(i32, i32), r1, e((*System).fdFdstatSetFlags))
	reg("fd_fdstat_set_rights", p(i32, i64, i64), r1, e((*System).fdFdstatSetRights))
	reg("fd_filestat_get", p(i32, i32), r1, e((*System).fdFilestatGet))
	reg("fd_filestat_set_size", p(i32, i64), r1, e((*System).fdFilestatSetSize))
	reg("fd_filestat_set_times", p(i32, i64, i64, i32), r1, e((*System).fdFilestatSetTimes))
	reg("fd_pread", p(i32, i32, i32, i64, i32), r1, e((*System).fdPread))
	reg("fd_prestat_get", p(i32, i32), r1, e((*System).fdPrestatGet))
	reg("fd_prestat_dir_name", p(i32, i32, i32), r1, e((*System).fdPrestatDirName))
	reg("fd_pwrite", p(i32, i32, i32, i64, i32), r1, e((*System).fdPwrite))
	reg("fd_read", p(i32, i32, i32, i32), r1, e((*System).fdRead))
	reg("fd_readdir", p(i32, i32, i32, i64, i32), r1, e((*System).fdReaddir))
	reg("fd_renumber", p(i32, i32), r1, e((*System).fdRenumber))
	reg("fd_seek", p(i32, i64, i32, i32), r1, e((*System).fdSeek))
	reg("fd_sync", p(i32), r1, e((*System).fdSync))
	reg("fd_tell", p(i32, i32), r1, e((*System).fdTell))
	reg("fd_write", p(i32, i32, i32, i32), r1, e((*System).fdWrite))
	reg("path_create_directory", p(i32, i32, i32), r1, e((*System).pathCreateDirectory))
	reg("path_filestat_get", p(i32, i32, i32, i32, i32), r1, e((*System).pathFilestatGet))
	reg("path_filestat_set_times", p(i32, i32, i32, i32, i64, i64, i32), r1, e((*System).pathFilestatSetTimes))
	reg("path_link", p(i32, i32, i32, i32, i32, i32, i32), r1, e((*System).pathLink))
	reg("path_open", p(i32, i32, i32, i32, i32, i64, i64, i32, i32), r1, e((*System).pathOpen))
	reg("path_readlink", p(i32, i32, i32, i32, i32, i32), r1, e((*System).pathReadlink))
	reg("path_remove_directory", p(i32, i32, i32), r1, e((*System).pathRemoveDirectory))
	reg("path_rename", p(i32, i32, i32, i32, i32, i32), r1, e((*System).pathRename))
	reg("path_symlink", p(i32, i32, i32, i32, i32), r1, e((*System).pathSymlink))
	reg("path_unlink_file", p(i32, i32, i32), r1, e((*System).pathUnlinkFile))
	reg("poll_oneoff", p(i32, i32, i32, i32), r1, e((*System).pollOneoff))
	reg("proc_exit", p(i32), nil, (*System).procExit)
	reg("proc_raise", p(i32), r1, e((*System).procRaise))
	reg("random_get", p(i32, i32), r1, e((*System).randomGet))
	reg("sched_yield", nil, r1, e((*System).schedYield))
	reg("sock_recv", p(i32, i32, i32, i32, i32, i32), r1, e((*System).sockRecv))
	reg("sock_send", p(i32, i32, i32, i32, i32), r1, e((*System).sockSend))
	reg("sock_shutdown", p(i32, i32), r1, e((*System).sockShutdown))
}

// --- args / environ ---

func writeStringTable(mem *wasm.Memory, ptrsAddr, bufAddr uint32, items []string) Errno {
	for _, s := range items {
		if err := mem.WriteU32(ptrsAddr, bufAddr); err != nil {
			return ErrnoFault
		}
		ptrsAddr += 4
		b, err := mem.Bytes(bufAddr, uint32(len(s)+1))
		if err != nil {
			return ErrnoFault
		}
		copy(b, s)
		b[len(s)] = 0
		bufAddr += uint32(len(s) + 1)
	}
	return ErrnoSuccess
}

func sizeStringTable(items []string) (count, bytes uint32) {
	for _, s := range items {
		bytes += uint32(len(s) + 1)
	}
	return uint32(len(items)), bytes
}

func (s *System) argsGet(in *wasm.Instance, a []uint64) Errno {
	return writeStringTable(in.Memory(), uint32(a[0]), uint32(a[1]), s.cfg.Args)
}

func (s *System) argsSizesGet(in *wasm.Instance, a []uint64) Errno {
	n, b := sizeStringTable(s.cfg.Args)
	if in.Memory().WriteU32(uint32(a[0]), n) != nil || in.Memory().WriteU32(uint32(a[1]), b) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) environGet(in *wasm.Instance, a []uint64) Errno {
	return writeStringTable(in.Memory(), uint32(a[0]), uint32(a[1]), s.cfg.Env)
}

func (s *System) environSizesGet(in *wasm.Instance, a []uint64) Errno {
	n, b := sizeStringTable(s.cfg.Env)
	if in.Memory().WriteU32(uint32(a[0]), n) != nil || in.Memory().WriteU32(uint32(a[1]), b) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

// --- clocks (§IV-C: fetched outside the enclave, monotonic-guarded) ---

func (s *System) clockResGet(in *wasm.Instance, a []uint64) Errno {
	switch uint32(a[0]) {
	case clockRealtime, clockMonotonic:
		if in.Memory().WriteU64(uint32(a[1]), uint64(s.cfg.Clock.Resolution())) != nil {
			return ErrnoFault
		}
		return ErrnoSuccess
	default:
		return ErrnoInval
	}
}

func (s *System) clockTimeGet(in *wasm.Instance, a []uint64) Errno {
	var now int64
	switch uint32(a[0]) {
	case clockMonotonic:
		if s.cfg.DisableUntrustedPOSIX {
			// Trusted logical clock: strictly increasing, enclave-local.
			s.logical++
			now = s.logical
		} else {
			_ = s.ocallN("clock", 8, func() error { now = s.cfg.Clock.Monotonic(); return nil })
			// Sanity check on the untrusted value: never goes backwards.
			if now <= s.lastMono {
				now = s.lastMono + 1
			}
			s.lastMono = now
		}
	case clockRealtime:
		if s.cfg.DisableUntrustedPOSIX {
			s.logical++
			now = s.logical
		} else {
			_ = s.ocallN("clock", 8, func() error { now = s.cfg.Clock.Now().UnixNano(); return nil })
		}
	default:
		return ErrnoInval
	}
	if in.Memory().WriteU64(uint32(a[2]), uint64(now)) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

// --- fd operations ---

func (s *System) fdAdvise(in *wasm.Instance, a []uint64) Errno {
	if _, errno := s.getWithRights(int32(a[0]), RightFdAdvise); errno != ErrnoSuccess {
		return errno
	}
	return ErrnoSuccess // advisory only
}

func (s *System) fdAllocate(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdAllocate)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoBadf
	}
	want := int64(a[1]) + int64(a[2])
	size, err := e.handle.Size()
	if err != nil {
		return mapError(err)
	}
	if want > size {
		return mapError(e.handle.Truncate(want))
	}
	return ErrnoSuccess
}

func (s *System) fdClose(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.get(int32(a[0]))
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind == kindFile && e.handle != nil {
		if err := e.handle.Close(); err != nil {
			delete(s.fds, int32(a[0]))
			return mapError(err)
		}
	}
	delete(s.fds, int32(a[0]))
	return ErrnoSuccess
}

func (s *System) fdDatasync(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdDatasync)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoInval
	}
	return mapError(e.handle.Sync())
}

func (s *System) fdFdstatGet(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.get(int32(a[0]))
	if errno != ErrnoSuccess {
		return errno
	}
	mem := in.Memory()
	ptr := uint32(a[1])
	buf, err := mem.Bytes(ptr, 24)
	if err != nil {
		return ErrnoFault
	}
	for i := range buf {
		buf[i] = 0
	}
	switch e.kind {
	case kindDir:
		buf[0] = filetypeDir
	case kindFile:
		buf[0] = filetypeRegular
	default:
		buf[0] = filetypeCharacterDev
	}
	_ = mem.WriteU16(ptr+2, e.fdflags)
	_ = mem.WriteU64(ptr+8, uint64(e.rights))
	_ = mem.WriteU64(ptr+16, uint64(e.inheriting))
	return ErrnoSuccess
}

func (s *System) fdFdstatSetFlags(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdFdstatSetFlags)
	if errno != ErrnoSuccess {
		return errno
	}
	e.fdflags = uint16(a[1])
	return ErrnoSuccess
}

func (s *System) fdFdstatSetRights(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.get(int32(a[0]))
	if errno != ErrnoSuccess {
		return errno
	}
	base, inheriting := Rights(a[1]), Rights(a[2])
	// Rights may only shrink.
	if base&^e.rights != 0 || inheriting&^e.inheriting != 0 {
		return ErrnoNotcapable
	}
	e.rights, e.inheriting = base, inheriting
	return ErrnoSuccess
}

func filetypeOf(info hostfs.FileInfo) byte {
	switch info.Type {
	case hostfs.TypeDir:
		return filetypeDir
	case hostfs.TypeSymlink:
		return filetypeSymlink
	default:
		return filetypeRegular
	}
}

func writeFilestat(mem *wasm.Memory, ptr uint32, info hostfs.FileInfo) Errno {
	buf, err := mem.Bytes(ptr, 64)
	if err != nil {
		return ErrnoFault
	}
	for i := range buf {
		buf[i] = 0
	}
	_ = mem.WriteU64(ptr+8, info.Ino)
	_ = mem.WriteByteAt(ptr+16, filetypeOf(info))
	_ = mem.WriteU64(ptr+24, 1) // nlink
	_ = mem.WriteU64(ptr+32, uint64(info.Size))
	_ = mem.WriteU64(ptr+40, uint64(info.AccTime.UnixNano()))
	_ = mem.WriteU64(ptr+48, uint64(info.ModTime.UnixNano()))
	_ = mem.WriteU64(ptr+56, uint64(info.ModTime.UnixNano()))
	return ErrnoSuccess
}

func (s *System) fdFilestatGet(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdFilestatGet)
	if errno != ErrnoSuccess {
		// stdio descriptors allow filestat in most runtimes.
		if e2, errno2 := s.get(int32(a[0])); errno2 == ErrnoSuccess && e2.kind != kindFile && e2.kind != kindDir {
			e, errno = e2, ErrnoSuccess
		} else {
			return errno
		}
	}
	mem := in.Memory()
	switch e.kind {
	case kindFile:
		size, err := e.handle.Size()
		if err != nil {
			return mapError(err)
		}
		info := hostfs.FileInfo{Size: size, Type: hostfs.TypeRegular, ModTime: time.Unix(0, 0), AccTime: time.Unix(0, 0)}
		return writeFilestat(mem, uint32(a[1]), info)
	case kindDir:
		if s.fsDenied() {
			return ErrnoNotcapable
		}
		info, err := s.cfg.FS.Stat(e.path, true)
		if err != nil {
			return mapError(err)
		}
		return writeFilestat(mem, uint32(a[1]), info)
	default:
		info := hostfs.FileInfo{Type: hostfs.TypeRegular, ModTime: time.Unix(0, 0), AccTime: time.Unix(0, 0)}
		errno := writeFilestat(mem, uint32(a[1]), info)
		_ = mem.WriteByteAt(uint32(a[1])+16, filetypeCharacterDev)
		return errno
	}
}

func (s *System) fdFilestatSetSize(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdFilestatSetSize)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoBadf
	}
	return mapError(e.handle.Truncate(int64(a[1])))
}

func (s *System) fdFilestatSetTimes(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdFilestatSetTimes)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind == kindDir || e.kind == kindFile {
		if s.fsDenied() {
			return ErrnoNotcapable
		}
		at, mt, errno := fstTimes(s, a[1], a[2], uint32(a[3]))
		if errno != ErrnoSuccess {
			return errno
		}
		return mapError(s.cfg.FS.UTimes(e.path, at, mt))
	}
	return ErrnoBadf
}

// fstTimes decodes fd/path_filestat_set_times arguments.
func fstTimes(s *System, atim, mtim uint64, flags uint32) (time.Time, time.Time, Errno) {
	const (
		atimSet = 1 << 0
		atimNow = 1 << 1
		mtimSet = 1 << 2
		mtimNow = 1 << 3
	)
	now := s.cfg.Clock.Now()
	at := time.Unix(0, int64(atim))
	mt := time.Unix(0, int64(mtim))
	if flags&atimNow != 0 {
		at = now
	} else if flags&atimSet == 0 {
		at = now
	}
	if flags&mtimNow != 0 {
		mt = now
	} else if flags&mtimSet == 0 {
		mt = now
	}
	return at, mt, ErrnoSuccess
}

// iovecs iterates the guest's scatter/gather list. The iovec table is
// fetched with a single bounds check and EPC touch for the whole array —
// one span per call instead of two 4-byte touches per entry. A table
// that is not fully addressable falls back to lazy per-entry reads so a
// guest whose call completes before reaching the bad tail entries keeps
// its historical behaviour.
func iovecs(mem *wasm.Memory, ptr, count uint32, fn func(buf []byte) (int, bool, Errno)) (uint32, Errno) {
	if count == 0 {
		return 0, ErrnoSuccess
	}
	var table []byte
	if uint64(count)*8 <= uint64(^uint32(0)) {
		table, _ = mem.Bytes(ptr, count*8)
	}
	var total uint32
	for i := uint32(0); i < count; i++ {
		var base, length uint32
		if table != nil {
			base = binary.LittleEndian.Uint32(table[i*8:])
			length = binary.LittleEndian.Uint32(table[i*8+4:])
		} else {
			var err error
			if base, err = mem.ReadU32(ptr + i*8); err != nil {
				return total, ErrnoFault
			}
			if length, err = mem.ReadU32(ptr + i*8 + 4); err != nil {
				return total, ErrnoFault
			}
		}
		if length == 0 {
			continue
		}
		buf, err := mem.Bytes(base, length)
		if err != nil {
			return total, ErrnoFault
		}
		n, done, errno := fn(buf)
		total += uint32(n)
		if errno != ErrnoSuccess {
			return total, errno
		}
		if done {
			break
		}
	}
	return total, ErrnoSuccess
}

func (s *System) fdRead(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdRead)
	if errno != ErrnoSuccess {
		return errno
	}
	mem := in.Memory()
	var total uint32
	switch e.kind {
	case kindStdin:
		if s.cfg.Stdin == nil {
			total = 0
		} else {
			total, errno = iovecs(mem, uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
				var n int
				_ = s.ocallN("stdin", len(buf), func() error {
					var rerr error
					n, rerr = s.cfg.Stdin.Read(buf)
					_ = rerr
					return nil
				})
				return n, n < len(buf), ErrnoSuccess
			})
			if errno != ErrnoSuccess {
				return errno
			}
		}
	case kindFile:
		// WASI fd_read is vectored; IPFS is not, so iterate (§IV-E).
		total, errno = iovecs(mem, uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
			n, err := e.handle.Read(buf)
			if err != nil && mapError(err) != ErrnoSuccess {
				return n, true, mapError(err)
			}
			return n, n < len(buf), ErrnoSuccess
		})
		if errno != ErrnoSuccess {
			return errno
		}
	default:
		return ErrnoBadf
	}
	if mem.WriteU32(uint32(a[3]), total) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdPread(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdRead|RightFdSeek)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoBadf
	}
	saved := e.handle.Tell()
	if _, err := e.handle.Seek(int64(a[3]), whenceSet); err != nil {
		return mapError(err)
	}
	total, errno := iovecs(in.Memory(), uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
		n, err := e.handle.Read(buf)
		if err != nil && mapError(err) != ErrnoSuccess {
			return n, true, mapError(err)
		}
		return n, n < len(buf), ErrnoSuccess
	})
	if _, err := e.handle.Seek(saved, whenceSet); err != nil {
		return mapError(err)
	}
	if errno != ErrnoSuccess {
		return errno
	}
	if in.Memory().WriteU32(uint32(a[4]), total) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdWrite(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdWrite)
	if errno != ErrnoSuccess {
		return errno
	}
	mem := in.Memory()
	var total uint32
	switch e.kind {
	case kindStdout, kindStderr:
		w := s.cfg.Stdout
		if e.kind == kindStderr {
			w = s.cfg.Stderr
		}
		total, errno = iovecs(mem, uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
			if w == nil {
				return len(buf), false, ErrnoSuccess
			}
			var n int
			err := s.ocallN("stdout", len(buf), func() error {
				var werr error
				n, werr = w.Write(buf)
				return werr
			})
			if err != nil {
				return n, true, ErrnoIo
			}
			return n, false, ErrnoSuccess
		})
		if errno != ErrnoSuccess {
			return errno
		}
	case kindFile:
		if e.fdflags&fdflagAppend != 0 {
			if _, err := e.handle.Seek(0, whenceEnd); err != nil {
				return mapError(err)
			}
		}
		total, errno = iovecs(mem, uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
			n, err := e.handle.Write(buf)
			if err != nil {
				return n, true, mapError(err)
			}
			return n, false, ErrnoSuccess
		})
		if errno != ErrnoSuccess {
			return errno
		}
	default:
		return ErrnoBadf
	}
	if mem.WriteU32(uint32(a[3]), total) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdPwrite(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdWrite|RightFdSeek)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoBadf
	}
	saved := e.handle.Tell()
	if _, err := e.handle.Seek(int64(a[3]), whenceSet); err != nil {
		return mapError(err)
	}
	total, errno := iovecs(in.Memory(), uint32(a[1]), uint32(a[2]), func(buf []byte) (int, bool, Errno) {
		n, err := e.handle.Write(buf)
		if err != nil {
			return n, true, mapError(err)
		}
		return n, false, ErrnoSuccess
	})
	if _, err := e.handle.Seek(saved, whenceSet); err != nil {
		return mapError(err)
	}
	if errno != ErrnoSuccess {
		return errno
	}
	if in.Memory().WriteU32(uint32(a[4]), total) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdPrestatGet(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.get(int32(a[0]))
	if errno != ErrnoSuccess {
		return errno
	}
	if !e.prestat {
		return ErrnoBadf
	}
	mem := in.Memory()
	if mem.WriteByteAt(uint32(a[1]), 0) != nil { // tag: dir
		return ErrnoFault
	}
	if mem.WriteU32(uint32(a[1])+4, uint32(len(e.guest))) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdPrestatDirName(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.get(int32(a[0]))
	if errno != ErrnoSuccess {
		return errno
	}
	if !e.prestat {
		return ErrnoBadf
	}
	if uint32(a[2]) < uint32(len(e.guest)) {
		return ErrnoInval
	}
	buf, err := in.Memory().Bytes(uint32(a[1]), uint32(len(e.guest)))
	if err != nil {
		return ErrnoFault
	}
	copy(buf, e.guest)
	return ErrnoSuccess
}

func (s *System) fdReaddir(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdReaddir)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindDir {
		return ErrnoNotdir
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	cookie := a[3]
	if cookie == 0 || e.readdirNames == nil {
		names, err := s.cfg.FS.ReadDir(e.path)
		if err != nil {
			return mapError(err)
		}
		e.readdirNames = names
	}
	mem := in.Memory()
	bufPtr, bufLen := uint32(a[1]), uint32(a[2])
	var used uint32
	for idx := int(cookie); idx < len(e.readdirNames); idx++ {
		info := e.readdirNames[idx]
		entry := make([]byte, 24+len(info.Name))
		putU64 := func(off int, v uint64) {
			for i := 0; i < 8; i++ {
				entry[off+i] = byte(v >> (8 * i))
			}
		}
		putU64(0, uint64(idx+1)) // d_next cookie
		putU64(8, info.Ino)
		entry[16] = byte(len(info.Name))
		entry[17] = byte(len(info.Name) >> 8)
		entry[18] = byte(len(info.Name) >> 16)
		entry[19] = byte(len(info.Name) >> 24)
		entry[20] = filetypeOf(info)
		copy(entry[24:], info.Name)

		n := uint32(len(entry))
		if used+n > bufLen {
			// Truncated entry signals the guest to retry with a larger
			// buffer; bufused == bufLen means "more to read".
			part, err := mem.Bytes(bufPtr+used, bufLen-used)
			if err != nil {
				return ErrnoFault
			}
			copy(part, entry[:len(part)])
			used = bufLen
			break
		}
		dst, err := mem.Bytes(bufPtr+used, n)
		if err != nil {
			return ErrnoFault
		}
		copy(dst, entry)
		used += n
	}
	if mem.WriteU32(uint32(a[4]), used) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) fdRenumber(in *wasm.Instance, a []uint64) Errno {
	from, to := int32(a[0]), int32(a[1])
	e, errno := s.get(from)
	if errno != ErrnoSuccess {
		return errno
	}
	if old, ok := s.fds[to]; ok && old.kind == kindFile && old.handle != nil {
		_ = old.handle.Close()
	}
	s.fds[to] = e
	delete(s.fds, from)
	return ErrnoSuccess
}

func (s *System) fdSeek(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdSeek)
	if errno != ErrnoSuccess {
		return errno
	}
	switch e.kind {
	case kindFile:
		pos, err := e.handle.Seek(int64(a[1]), int(uint32(a[2])))
		if err != nil {
			return mapError(err)
		}
		if in.Memory().WriteU64(uint32(a[3]), uint64(pos)) != nil {
			return ErrnoFault
		}
		return ErrnoSuccess
	case kindDir:
		return ErrnoIsdir
	default:
		return ErrnoSpipe
	}
}

func (s *System) fdSync(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdSync)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoInval
	}
	return mapError(e.handle.Sync())
}

func (s *System) fdTell(in *wasm.Instance, a []uint64) Errno {
	e, errno := s.getWithRights(int32(a[0]), RightFdTell)
	if errno != ErrnoSuccess {
		return errno
	}
	if e.kind != kindFile {
		return ErrnoSpipe
	}
	if in.Memory().WriteU64(uint32(a[1]), uint64(e.handle.Tell())) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

// --- path operations ---

func (s *System) pathArg(in *wasm.Instance, dirFD int32, ptr, length uint64, need Rights) (*fdEntry, string, Errno) {
	e, errno := s.getWithRights(dirFD, need)
	if errno != ErrnoSuccess {
		return nil, "", errno
	}
	rel, err := in.Memory().ReadString(uint32(ptr), uint32(length))
	if err != nil {
		return nil, "", ErrnoFault
	}
	full, errno := e.resolvePath(rel)
	if errno != ErrnoSuccess {
		return nil, "", errno
	}
	return e, full, ErrnoSuccess
}

func (s *System) pathCreateDirectory(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[1], a[2], RightPathCreateDirectory)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.Mkdir(path))
}

func (s *System) pathFilestatGet(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[2], a[3], RightPathFilestatGet)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	follow := uint32(a[1])&1 != 0
	info, err := s.cfg.FS.Stat(path, follow)
	if err != nil {
		return mapError(err)
	}
	return writeFilestat(in.Memory(), uint32(a[4]), info)
}

func (s *System) pathFilestatSetTimes(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[2], a[3], RightPathFilestatSetTimes)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	at, mt, errno := fstTimes(s, a[4], a[5], uint32(a[6]))
	if errno != ErrnoSuccess {
		return errno
	}
	return mapError(s.cfg.FS.UTimes(path, at, mt))
}

func (s *System) pathLink(in *wasm.Instance, a []uint64) Errno {
	_, oldPath, errno := s.pathArg(in, int32(a[0]), a[2], a[3], RightPathLinkSource)
	if errno != ErrnoSuccess {
		return errno
	}
	_, newPath, errno := s.pathArg(in, int32(a[4]), a[5], a[6], RightPathLinkTarget)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.Link(oldPath, newPath))
}

func (s *System) pathOpen(in *wasm.Instance, a []uint64) Errno {
	dir, path, errno := s.pathArg(in, int32(a[0]), a[2], a[3], RightPathOpen)
	if errno != ErrnoSuccess {
		return errno
	}
	oflags := uint32(a[4])
	rightsBase := Rights(a[5]) & dir.inheriting
	rightsInheriting := Rights(a[6]) & dir.inheriting
	fdflags := uint16(a[7])

	if s.fsDenied() {
		return ErrnoNotcapable
	}

	// Directory open?
	info, statErr := s.cfg.FS.Stat(path, true)
	isDir := statErr == nil && info.IsDir()
	if oflags&oflagDirectory != 0 && statErr == nil && !isDir {
		return ErrnoNotdir
	}
	if isDir {
		fd := s.nextFD
		s.nextFD++
		s.fds[fd] = &fdEntry{
			kind: kindDir, path: path,
			rights: rightsBase & rightsDir, inheriting: rightsInheriting,
		}
		if in.Memory().WriteU32(uint32(a[8]), uint32(fd)) != nil {
			return ErrnoFault
		}
		return ErrnoSuccess
	}

	var flags int
	writable := rightsBase&(RightFdWrite|RightFdAllocate|RightFdFilestatSetSize) != 0
	if writable {
		flags |= hostfs.OWrite | hostfs.ORead
	} else {
		flags |= hostfs.ORead
	}
	if oflags&oflagCreat != 0 {
		flags |= hostfs.OCreate
	}
	if oflags&oflagExcl != 0 {
		flags |= hostfs.OExcl
	}
	if oflags&oflagTrunc != 0 {
		flags |= hostfs.OTrunc
	}
	handle, err := s.cfg.FS.Open(path, flags, writable)
	if err != nil {
		return mapError(err)
	}
	fd := s.nextFD
	s.nextFD++
	s.fds[fd] = &fdEntry{
		kind: kindFile, handle: handle, path: path,
		rights: rightsBase & rightsFile, inheriting: rightsInheriting,
		fdflags: fdflags,
	}
	if in.Memory().WriteU32(uint32(a[8]), uint32(fd)) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) pathReadlink(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[1], a[2], RightPathReadlink)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	target, err := s.cfg.FS.Readlink(path)
	if err != nil {
		return mapError(err)
	}
	n := uint32(len(target))
	if n > uint32(a[4]) {
		n = uint32(a[4])
	}
	buf, err2 := in.Memory().Bytes(uint32(a[3]), n)
	if err2 != nil {
		return ErrnoFault
	}
	copy(buf, target[:n])
	if in.Memory().WriteU32(uint32(a[5]), n) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func (s *System) pathRemoveDirectory(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[1], a[2], RightPathRemoveDirectory)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.RemoveDir(path))
}

func (s *System) pathRename(in *wasm.Instance, a []uint64) Errno {
	_, oldPath, errno := s.pathArg(in, int32(a[0]), a[1], a[2], RightPathRenameSource)
	if errno != ErrnoSuccess {
		return errno
	}
	_, newPath, errno := s.pathArg(in, int32(a[3]), a[4], a[5], RightPathRenameTarget)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.Rename(oldPath, newPath))
}

func (s *System) pathSymlink(in *wasm.Instance, a []uint64) Errno {
	target, err := in.Memory().ReadString(uint32(a[0]), uint32(a[1]))
	if err != nil {
		return ErrnoFault
	}
	_, link, errno := s.pathArg(in, int32(a[2]), a[3], a[4], RightPathSymlink)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.Symlink(target, link))
}

func (s *System) pathUnlinkFile(in *wasm.Instance, a []uint64) Errno {
	_, path, errno := s.pathArg(in, int32(a[0]), a[1], a[2], RightPathUnlinkFile)
	if errno != ErrnoSuccess {
		return errno
	}
	if s.fsDenied() {
		return ErrnoNotcapable
	}
	return mapError(s.cfg.FS.RemoveFile(path))
}

// --- misc ---

func (s *System) pollOneoff(in *wasm.Instance, a []uint64) Errno {
	mem := in.Memory()
	subsPtr, eventsPtr, nsubs := uint32(a[0]), uint32(a[1]), uint32(a[2])
	if nsubs == 0 {
		return ErrnoInval
	}
	var written uint32
	minTimeout := int64(-1)
	var clockUserdata uint64
	for i := uint32(0); i < nsubs; i++ {
		base := subsPtr + i*48
		userdata, err := mem.ReadU64(base)
		if err != nil {
			return ErrnoFault
		}
		tagB, err := mem.Bytes(base+8, 1)
		if err != nil {
			return ErrnoFault
		}
		switch tagB[0] {
		case 0: // clock
			timeout, _ := mem.ReadU64(base + 24)
			if minTimeout < 0 || int64(timeout) < minTimeout {
				minTimeout = int64(timeout)
				clockUserdata = userdata
			}
		case 1, 2: // fd_read / fd_write: files are always ready
			evPtr := eventsPtr + written*32
			if writeEvent(mem, evPtr, userdata, tagB[0], 1<<16) != ErrnoSuccess {
				return ErrnoFault
			}
			written++
		default:
			return ErrnoInval
		}
	}
	if written == 0 && minTimeout >= 0 {
		// Pure sleep: wait outside the enclave.
		_ = s.ocall("sleep", func() error {
			time.Sleep(time.Duration(minTimeout))
			return nil
		})
		evPtr := eventsPtr + written*32
		if writeEvent(mem, evPtr, clockUserdata, 0, 0) != ErrnoSuccess {
			return ErrnoFault
		}
		written++
	}
	if mem.WriteU32(uint32(a[3]), written) != nil {
		return ErrnoFault
	}
	return ErrnoSuccess
}

func writeEvent(mem *wasm.Memory, ptr uint32, userdata uint64, typ byte, nbytes uint64) Errno {
	buf, err := mem.Bytes(ptr, 32)
	if err != nil {
		return ErrnoFault
	}
	for i := range buf {
		buf[i] = 0
	}
	_ = mem.WriteU64(ptr, userdata)
	_ = mem.WriteU16(ptr+8, 0) // errno success
	_ = mem.WriteByteAt(ptr+10, typ)
	_ = mem.WriteU64(ptr+16, nbytes)
	return ErrnoSuccess
}

func (s *System) procExit(in *wasm.Instance, a []uint64) (Errno, error) {
	s.exited = true
	s.exitCode = uint32(a[0])
	// The guest will never close its descriptors: submit batched writes
	// now so the untrusted store matches the eager-write semantics. A
	// flush failure is surfaced to the embedder instead of the clean
	// exit — on the eager path the same guest would have seen the write
	// error at fd_write time.
	if err := s.FlushFS(); err != nil {
		return ErrnoIo, fmt.Errorf("wasi: flushing batched writes at proc_exit: %w", err)
	}
	return ErrnoSuccess, wasm.ExitError{Code: uint32(a[0])}
}

func (s *System) procRaise(in *wasm.Instance, a []uint64) Errno {
	return ErrnoNosys
}

func (s *System) randomGet(in *wasm.Instance, a []uint64) Errno {
	// Trusted implementation: the enclave's entropy source (RDRAND on
	// real SGX); no OCALL and no host visibility.
	buf, err := in.Memory().Bytes(uint32(a[0]), uint32(a[1]))
	if err != nil {
		return ErrnoFault
	}
	if _, err := rand.Read(buf); err != nil {
		return ErrnoIo
	}
	return ErrnoSuccess
}

func (s *System) schedYield(in *wasm.Instance, a []uint64) Errno {
	return ErrnoSuccess
}

// Sockets are left as future work in the paper (§IV-E); the calls exist in
// the surface and report ENOSYS.
func (s *System) sockRecv(in *wasm.Instance, a []uint64) Errno     { return ErrnoNosys }
func (s *System) sockSend(in *wasm.Instance, a []uint64) Errno     { return ErrnoNosys }
func (s *System) sockShutdown(in *wasm.Instance, a []uint64) Errno { return ErrnoNosys }
