package wasi

import (
	"bytes"
	"testing"
	"time"

	"twine/internal/hostfs"
	"twine/internal/sgx"
)

// switchlessEnclave returns a test enclave with a live ring (free costs,
// long idle so the worker stays warm for the whole test).
func switchlessEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	e, err := sgx.NewPlatform("wasi-sl").NewEnclave(sgx.TestConfig(), []byte("twine"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	e.EnableSwitchless(sgx.SwitchlessConfig{
		Slots:      8,
		MaxPayload: 32 << 10,
		WorkerIdle: time.Second,
	})
	return e
}

// crossings counts boundary-work requests of any kind.
func crossings(e *sgx.Enclave) int64 {
	st := e.Stats()
	return st.OCalls + st.SwitchlessCalls
}

func TestBatchedAdjacentWritesCoalesce(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)

	var want bytes.Buffer
	err := e.ECall("main", func() error {
		h, err := be.Open("journal", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		base := crossings(e)
		// The SQLite journal pattern: many small adjacent writes.
		for i := 0; i < 100; i++ {
			rec := bytes.Repeat([]byte{byte(i)}, 32)
			want.Write(rec)
			if _, err := h.Write(rec); err != nil {
				return err
			}
		}
		if got := crossings(e) - base; got != 0 {
			t.Errorf("%d boundary crossings during batched writes, want 0", got)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	// The file on the untrusted host holds every batched byte.
	f, err := fs.OpenFile("journal", hostfs.ORead)
	if err != nil {
		t.Fatalf("host open: %v", err)
	}
	defer f.Close()
	info, _ := f.Stat()
	got := make([]byte, info.Size)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("file = %d bytes, want %d byte-identical", len(got), want.Len())
	}
}

func TestBatchFlushesBeforeRead(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	err := e.ECall("main", func() error {
		h, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		if _, err := h.Write([]byte("pending-data")); err != nil {
			return err
		}
		if _, err := h.Seek(0, 0); err != nil {
			return err
		}
		buf := make([]byte, 12)
		n, err := h.Read(buf)
		if err != nil || string(buf[:n]) != "pending-data" {
			t.Errorf("read after batched write = %q, %v", buf[:n], err)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
}

func TestBatchFlushesBeforeSizeAndStat(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	err := e.ECall("main", func() error {
		h, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		if _, err := h.Write(make([]byte, 300)); err != nil {
			return err
		}
		if size, err := h.Size(); err != nil || size != 300 {
			t.Errorf("Size() = %d, %v, want 300 (batch flushed)", size, err)
		}
		// Backend-level stat must also observe the flush.
		info, err := be.Stat("f", true)
		if err != nil || info.Size != 300 {
			t.Errorf("Stat = %d, %v, want 300", info.Size, err)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
}

func TestNonAdjacentWriteBreaksBatch(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	err := e.ECall("main", func() error {
		h, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		if _, err := h.Write([]byte("head")); err != nil {
			return err
		}
		if _, err := h.Seek(100, 0); err != nil {
			return err
		}
		if _, err := h.Write([]byte("tail")); err != nil {
			return err
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	f, _ := fs.OpenFile("f", hostfs.ORead)
	defer f.Close()
	head, tail := make([]byte, 4), make([]byte, 4)
	f.ReadAt(head, 0)
	f.ReadAt(tail, 100)
	if string(head) != "head" || string(tail) != "tail" {
		t.Errorf("regions = %q / %q, want head / tail", head, tail)
	}
}

func TestLargeWriteBypassesBatch(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	err := e.ECall("main", func() error {
		h, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		base := crossings(e)
		if _, err := h.Write(make([]byte, batchMaxWrite+1)); err != nil {
			return err
		}
		if got := crossings(e) - base; got != 1 {
			t.Errorf("large write took %d crossings, want 1 (not batched)", got)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
}

// TestNoBatchingWithoutRing: with switchless absent, every write must keep
// its historical one-OCALL accounting (the off-mode fidelity half of the
// PR 2 acceptance criteria, at the backend level).
func TestNoBatchingWithoutRing(t *testing.T) {
	fs := hostfs.NewMemFS()
	e, err := sgx.NewPlatform("wasi-off").NewEnclave(sgx.TestConfig(), []byte("twine"))
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	be := NewHostBackend(fs, e)
	err = e.ECall("main", func() error {
		h, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		base := e.Stats().OCalls
		for i := 0; i < 10; i++ {
			if _, err := h.Write([]byte("x")); err != nil {
				return err
			}
		}
		if got := e.Stats().OCalls - base; got != 10 {
			t.Errorf("10 writes took %d OCalls, want 10 (no batching without ring)", got)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if st := e.Stats(); st.SwitchlessCalls != 0 || st.FallbackOCalls != 0 {
		t.Errorf("ring counters moved without a ring: %+v", st)
	}
}

// TestBatchedContentsByteIdentical runs the same mixed operation sequence
// against a batched (ring) and an unbatched (no-enclave) backend and
// requires byte-identical untrusted state and identical per-op results.
func TestBatchedContentsByteIdentical(t *testing.T) {
	type opResult struct {
		n    int
		err  error
		data string
	}
	run := func(fs hostfs.FS, be *HostBackend, e *sgx.Enclave) []opResult {
		var results []opResult
		body := func() error {
			h, err := be.Open("db-journal", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			for i := 0; i < 30; i++ {
				n, err := h.Write(bytes.Repeat([]byte{byte(i + 1)}, 100))
				results = append(results, opResult{n: n, err: err})
			}
			// Rewind, read some back mid-stream.
			h.Seek(500, 0)
			buf := make([]byte, 200)
			n, err := h.Read(buf)
			results = append(results, opResult{n: n, err: err, data: string(buf[:n])})
			// Overwrite a hole region and extend.
			h.Seek(5000, 0)
			n, err = h.Write([]byte("sparse-tail"))
			results = append(results, opResult{n: n, err: err})
			size, err := h.Size()
			results = append(results, opResult{n: int(size), err: err})
			if err := h.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			return nil
		}
		if e != nil {
			if err := e.ECall("main", body); err != nil {
				t.Fatalf("ECall: %v", err)
			}
		} else {
			body()
		}
		return results
	}

	plainFS := hostfs.NewMemFS()
	plainRes := run(plainFS, NewHostBackend(plainFS, nil), nil)

	ringFS := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	ringRes := run(ringFS, NewHostBackend(ringFS, e), e)

	if len(plainRes) != len(ringRes) {
		t.Fatalf("result counts differ: %d vs %d", len(plainRes), len(ringRes))
	}
	for i := range plainRes {
		if plainRes[i] != ringRes[i] {
			t.Errorf("op %d: plain=%+v ring=%+v", i, plainRes[i], ringRes[i])
		}
	}
	read := func(fs hostfs.FS) []byte {
		f, err := fs.OpenFile("db-journal", hostfs.ORead)
		if err != nil {
			t.Fatalf("host open: %v", err)
		}
		defer f.Close()
		info, _ := f.Stat()
		buf := make([]byte, info.Size)
		f.ReadAt(buf, 0)
		return buf
	}
	if !bytes.Equal(read(plainFS), read(ringFS)) {
		t.Error("untrusted file contents differ between batched and unbatched runs")
	}
}

// TestInterleavedHandlesPreserveWriteOrder guards against batched writes
// being replayed out of program order: two handles on the same file write
// overlapping regions, and the last program-order write must win exactly
// as it does on the eager path.
func TestInterleavedHandlesPreserveWriteOrder(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	err := e.ECall("main", func() error {
		a, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		b, err := be.Open("f", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		// a writes [0,100), b writes [100,150), then a extends its batch
		// into [100,150): a's bytes are written last and must win.
		if _, err := a.Write(bytes.Repeat([]byte{'A'}, 100)); err != nil {
			return err
		}
		if _, err := b.Seek(100, 0); err != nil {
			return err
		}
		if _, err := b.Write(bytes.Repeat([]byte{'B'}, 50)); err != nil {
			return err
		}
		if _, err := a.Write(bytes.Repeat([]byte{'a'}, 50)); err != nil {
			return err
		}
		if err := a.Close(); err != nil {
			return err
		}
		return b.Close()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	f, _ := fs.OpenFile("f", hostfs.ORead)
	defer f.Close()
	got := make([]byte, 150)
	f.ReadAt(got, 0)
	want := append(bytes.Repeat([]byte{'A'}, 100), bytes.Repeat([]byte{'a'}, 50)...)
	if !bytes.Equal(got, want) {
		t.Errorf("file = %q, want %q (program order violated)", got, want)
	}
}

// TestFlushFSSubmitsBatchesWithoutClose guards the proc_exit / guest-exit
// path: a guest that writes and never closes its descriptor must still
// have its batched bytes on the untrusted store after System.FlushFS.
func TestFlushFSSubmitsBatchesWithoutClose(t *testing.T) {
	fs := hostfs.NewMemFS()
	e := switchlessEnclave(t)
	be := NewHostBackend(fs, e)
	s, err := NewSystem(Config{FS: be, Preopens: map[string]string{"/": ""}, Enclave: e})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	err = e.ECall("main", func() error {
		h, err := be.Open("orphan", hostfs.OCreate|hostfs.ORead|hostfs.OWrite, true)
		if err != nil {
			return err
		}
		if _, err := h.Write([]byte("never-closed")); err != nil {
			return err
		}
		// No Close: the guest exits. FlushFS (called by proc_exit and at
		// the end of every guest entry) must land the bytes.
		return s.FlushFS()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	f, ferr := fs.OpenFile("orphan", hostfs.ORead)
	if ferr != nil {
		t.Fatalf("host open: %v", ferr)
	}
	defer f.Close()
	buf := make([]byte, 12)
	n, _ := f.ReadAt(buf, 0)
	if string(buf[:n]) != "never-closed" {
		t.Errorf("host file = %q, want batched bytes flushed without close", buf[:n])
	}
}
