package wasi

import (
	"io"
	"time"

	"twine/internal/chaos"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/sgx"
)

// FileHandle is an open file as the WASI layer sees it: cursor-based, like
// both POSIX stdio and Intel's protected file API.
type FileHandle interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	// Seek moves the cursor. Implementations may extend the file when
	// seeking past the end on writable handles (the TWINE workaround for
	// IPFS's no-seek-past-end limitation, §IV-E).
	Seek(offset int64, whence int) (int64, error)
	Tell() int64
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Backend is the file-system surface the WASI layer routes path and fd
// operations to. TWINE wires an IPFS-backed implementation (trusted); the
// plain host backend reproduces WAMR's original forward-to-POSIX design.
type Backend interface {
	// Trusted reports whether this backend keeps data confidential and
	// integrity-protected (true for IPFS). DisableUntrustedPOSIX blocks
	// non-trusted backends.
	Trusted() bool
	Open(path string, flags int, writable bool) (FileHandle, error)
	Mkdir(path string) error
	RemoveFile(path string) error
	RemoveDir(path string) error
	Rename(oldPath, newPath string) error
	Stat(path string, followLinks bool) (hostfs.FileInfo, error)
	ReadDir(path string) ([]hostfs.FileInfo, error)
	Symlink(target, link string) error
	Readlink(path string) (string, error)
	Link(oldPath, newPath string) error
	UTimes(path string, atime, mtime time.Time) error
}

// --- host (untrusted POSIX) backend ---

// Write-batching policy (PR 2). Adjacent small writes — the SQLite journal
// pattern of header-then-record-then-record — are coalesced into a single
// ring request instead of one boundary crossing each.
const (
	// batchMaxWrite is the largest single write eligible for coalescing.
	batchMaxWrite = 4 << 10
	// batchMaxPend caps the coalesced buffer; reaching it submits the
	// batch.
	batchMaxPend = 32 << 10
)

// HostBackend forwards every operation to the untrusted host file system,
// crossing the enclave boundary each time. This reproduces WAMR's original
// WASI implementation, which "plainly routes most of the WASI functions to
// their POSIX equivalent using OCALLs" (§IV-C) — the baseline TWINE's
// trusted backend is measured against.
//
// When the enclave has a switchless ring (sgx.Enclave.EnableSwitchless),
// small operations ride it instead of paying two enclave transitions, and
// adjacent small writes are batched into single requests. Both behaviours
// are disabled — restoring the exact historical OCALL accounting — when
// the ring is absent.
type HostBackend struct {
	FS      hostfs.FS
	Enclave *sgx.Enclave

	// Chaos, when set, is consulted once per boundary crossing (PR 6's
	// fault harness): a selected crossing stalls and/or fails before the
	// host operation runs, so an injected fault never leaves a partial
	// side effect — which is what makes retrying it sound. nil disables
	// injection with zero cost.
	Chaos *chaos.Injector
	// Retry bounds transient-fault recovery at this boundary (see
	// RetryPolicy); the zero value surfaces every error immediately.
	Retry RetryPolicy

	// retryStats aggregates retry activity across this backend and every
	// clone (each pool worker's WASI system shares the pointer).
	retryStats *retryCounters

	// pending is the one handle allowed to hold batched, not-yet-
	// submitted writes. Every boundary call — including a batched write
	// starting on any other handle — flushes it first, so writes always
	// reach the untrusted store in program order and any operation that
	// could observe untrusted state sees them as if submitted eagerly.
	pending *hostHandle
}

// NewHostBackend wraps fs; enclave may be nil.
func NewHostBackend(fs hostfs.FS, enclave *sgx.Enclave) *HostBackend {
	return &HostBackend{FS: fs, Enclave: enclave, retryStats: &retryCounters{}}
}

// RetryCounters returns the retry activity aggregated across this backend
// and all its clones.
func (h *HostBackend) RetryCounters() RetryStats { return h.retryStats.snapshot() }

// Trusted implements Backend.
func (h *HostBackend) Trusted() bool { return false }

// call is the single host-call accounting helper shared by the classic
// OCALL path and the switchless ring path (every Backend method and file
// handle funnels through it): it flushes batched writes fn could observe,
// then crosses the boundary. payload is the byte count marshalled by the
// request; the enclave's adaptive policy sends small payloads through the
// ring and large ones through a classic OCall.
func (h *HostBackend) call(name string, payload int, fn func() error) error {
	if err := h.FlushPending(); err != nil {
		return err
	}
	return h.boundary(name, payload, fn)
}

// boundary performs the crossing without touching batch state; batch
// flushes use it directly to avoid recursing into themselves. The fault
// harness hooks in here — injection fires before the host operation, and
// a transiently failed crossing is re-issued within the retry budget,
// each attempt a full crossing with its own transition accounting.
func (h *HostBackend) boundary(name string, payload int, fn func() error) error {
	call := fn
	if h.Chaos != nil {
		call = func() error {
			if err := h.Chaos.Op(); err != nil {
				return err
			}
			return fn()
		}
	}
	return h.Retry.retry(h.retryStats, func() error { return h.cross(name, payload, call) })
}

// cross is one physical boundary crossing.
func (h *HostBackend) cross(name string, payload int, fn func() error) error {
	if h.Enclave == nil || !h.Enclave.Inside() {
		return fn()
	}
	return h.Enclave.SwitchlessOCall(name, payload, fn)
}

// batching reports whether writes may be deferred into a batch. Only a
// live switchless ring enables it, so with switchless off every write
// keeps its historical one-OCALL-per-call accounting.
func (h *HostBackend) batching() bool {
	return h.Enclave != nil && h.Enclave.SwitchlessEnabled()
}

// FlushPending submits the batched writes of the pending handle, if any,
// making every completed write visible on the untrusted store. The WASI
// layer calls it at the end of each guest entry and on proc_exit, so
// batched state never outlives guest execution.
func (h *HostBackend) FlushPending() error {
	if h.pending != nil {
		return h.pending.flush()
	}
	return nil
}

// Open implements Backend.
func (h *HostBackend) Open(path string, flags int, writable bool) (FileHandle, error) {
	var f hostfs.File
	err := h.call("posix.open", 0, func() error {
		var oerr error
		f, oerr = h.FS.OpenFile(path, flags)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return &hostHandle{b: h, f: f}, nil
}

// Mkdir implements Backend.
func (h *HostBackend) Mkdir(path string) error {
	return h.call("posix.mkdir", 0, func() error { return h.FS.Mkdir(path) })
}

// RemoveFile implements Backend.
func (h *HostBackend) RemoveFile(path string) error {
	return h.call("posix.unlink", 0, func() error {
		info, err := h.FS.Lstat(path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return hostfs.ErrIsDir
		}
		return h.FS.Remove(path)
	})
}

// RemoveDir implements Backend.
func (h *HostBackend) RemoveDir(path string) error {
	return h.call("posix.rmdir", 0, func() error {
		info, err := h.FS.Lstat(path)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return hostfs.ErrNotDir
		}
		return h.FS.Remove(path)
	})
}

// Rename implements Backend.
func (h *HostBackend) Rename(oldPath, newPath string) error {
	return h.call("posix.rename", 0, func() error { return h.FS.Rename(oldPath, newPath) })
}

// Stat implements Backend.
func (h *HostBackend) Stat(path string, followLinks bool) (hostfs.FileInfo, error) {
	var info hostfs.FileInfo
	err := h.call("posix.stat", 0, func() error {
		var serr error
		if followLinks {
			info, serr = h.FS.Stat(path)
		} else {
			info, serr = h.FS.Lstat(path)
		}
		return serr
	})
	return info, err
}

// ReadDir implements Backend.
func (h *HostBackend) ReadDir(path string) ([]hostfs.FileInfo, error) {
	var out []hostfs.FileInfo
	err := h.call("posix.readdir", 0, func() error {
		var rerr error
		out, rerr = h.FS.ReadDir(path)
		return rerr
	})
	return out, err
}

// Symlink implements Backend.
func (h *HostBackend) Symlink(target, link string) error {
	return h.call("posix.symlink", 0, func() error { return h.FS.Symlink(target, link) })
}

// Readlink implements Backend.
func (h *HostBackend) Readlink(path string) (string, error) {
	var out string
	err := h.call("posix.readlink", 0, func() error {
		var rerr error
		out, rerr = h.FS.Readlink(path)
		return rerr
	})
	return out, err
}

// Link implements Backend.
func (h *HostBackend) Link(oldPath, newPath string) error {
	return h.call("posix.link", 0, func() error { return h.FS.Link(oldPath, newPath) })
}

// UTimes implements Backend.
func (h *HostBackend) UTimes(path string, atime, mtime time.Time) error {
	return h.call("posix.utimes", 0, func() error { return h.FS.UTimes(path, atime, mtime) })
}

// hostHandle adapts a positional hostfs.File to the cursor-based
// FileHandle, performing one boundary crossing per operation — except for
// adjacent small writes, which are coalesced into a single crossing when
// the switchless ring is live.
type hostHandle struct {
	b      *HostBackend
	f      hostfs.File
	offset int64 // logical cursor, including batched-but-unsubmitted bytes

	// pend accumulates adjacent small writes; pendOff is the file offset
	// of pend[0]. Invariant: len(pend) > 0 iff b.pending == h. A flush
	// error surfaces on the boundary call that triggered the flush
	// (write-behind semantics).
	pend    []byte
	pendOff int64
}

func (h *hostHandle) Read(p []byte) (int, error) {
	var n int
	err := h.b.call("posix.read", len(p), func() error {
		var rerr error
		n, rerr = h.f.ReadAt(p, h.offset)
		return rerr
	})
	h.offset += int64(n)
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

func (h *hostHandle) Write(p []byte) (int, error) {
	if h.b.batching() && len(p) > 0 && len(p) <= batchMaxWrite {
		// Another handle's batch must land first, or interleaved writes
		// to one file could be replayed out of program order.
		if h.b.pending != nil && h.b.pending != h {
			if err := h.b.pending.flush(); err != nil {
				return 0, err
			}
		}
		if len(h.pend) > 0 &&
			(h.offset != h.pendOff+int64(len(h.pend)) || len(h.pend)+len(p) > batchMaxPend) {
			// Non-adjacent write or full batch: submit what we have.
			if err := h.flush(); err != nil {
				return 0, err
			}
		}
		if len(h.pend) == 0 {
			h.pendOff = h.offset
			h.b.pending = h
		}
		h.pend = append(h.pend, p...)
		h.offset += int64(len(p))
		return len(p), nil
	}
	var n int
	err := h.b.call("posix.write", len(p), func() error {
		var werr error
		n, werr = h.f.WriteAt(p, h.offset)
		return werr
	})
	h.offset += int64(n)
	return n, err
}

// flush submits the batched writes as one request. The handle clears its
// pending state before the crossing so a failing flush cannot loop.
func (h *hostHandle) flush() error {
	if len(h.pend) == 0 {
		return nil
	}
	buf, off := h.pend, h.pendOff
	h.pend = h.pend[:0]
	if h.b.pending == h {
		h.b.pending = nil
	}
	return h.b.boundary("posix.write", len(buf), func() error {
		_, err := h.f.WriteAt(buf, off)
		return err
	})
}

func (h *hostHandle) Seek(offset int64, whence int) (int64, error) {
	var target int64
	switch whence {
	case whenceSet:
		target = offset
	case whenceCur:
		target = h.offset + offset
	case whenceEnd:
		size, err := h.Size()
		if err != nil {
			return 0, err
		}
		target = size + offset
	default:
		return 0, hostfs.ErrInvalid
	}
	if target < 0 {
		return 0, hostfs.ErrInvalid
	}
	// POSIX allows seeking past the end; the file extends on write. A
	// batched run broken by the seek is submitted by the next boundary
	// call (or immediately by the next non-adjacent write).
	h.offset = target
	return target, nil
}

func (h *hostHandle) Tell() int64 { return h.offset }

func (h *hostHandle) Size() (int64, error) {
	var size int64
	err := h.b.call("posix.fstat", 0, func() error {
		info, serr := h.f.Stat()
		size = info.Size
		return serr
	})
	return size, err
}

func (h *hostHandle) Truncate(size int64) error {
	return h.b.call("posix.ftruncate", 0, func() error { return h.f.Truncate(size) })
}

func (h *hostHandle) Sync() error {
	return h.b.call("posix.fsync", 0, func() error { return h.f.Sync() })
}

func (h *hostHandle) Close() error {
	return h.b.call("posix.close", 0, func() error { return h.f.Close() })
}

// CloneBackend returns a backend for another instance over the same
// storage. Host backends get fresh write-batching state (the pending
// handle is per-instance, so concurrent instances never interleave their
// batches); the protected FS is shared as-is — its mutable state lives in
// per-open file handles. Unknown backend types are returned unchanged and
// must be concurrency-safe themselves.
func CloneBackend(b Backend) Backend {
	switch b := b.(type) {
	case *HostBackend:
		return b.clone()
	case *IPFSBackend:
		return &IPFSBackend{PFS: b.PFS, Host: b.Host.clone()}
	default:
		return b
	}
}

// clone builds a per-instance host backend over the same storage: fresh
// batch state, shared fault plan and retry counters — every clone sees
// the same injected operation stream and aggregates into one RetryStats.
func (h *HostBackend) clone() *HostBackend {
	nb := NewHostBackend(h.FS, h.Enclave)
	nb.Chaos = h.Chaos
	nb.Retry = h.Retry
	nb.retryStats = h.retryStats
	return nb
}

// --- IPFS (trusted) backend ---

// IPFSBackend serves file contents from the Intel protected file system:
// data is encrypted and integrity-checked inside the enclave, and only
// ciphertext crosses to the host (§IV-D). Directory structure operations
// necessarily touch the untrusted host namespace (Intel's IPFS has the
// same property — file names and sizes are visible metadata).
type IPFSBackend struct {
	PFS  *ipfs.FS
	Host *HostBackend // namespace operations (mkdir/readdir/rename/...)
}

// NewIPFSBackend builds the trusted backend over a protected FS and the
// host namespace it stores ciphertext in.
func NewIPFSBackend(pfs *ipfs.FS, host *HostBackend) *IPFSBackend {
	return &IPFSBackend{PFS: pfs, Host: host}
}

// Trusted implements Backend.
func (b *IPFSBackend) Trusted() bool { return true }

// FlushPending submits any write-behind state of the underlying host
// backend (protected-file handles write eagerly, so only the namespace
// side can hold batches).
func (b *IPFSBackend) FlushPending() error { return b.Host.FlushPending() }

// Open implements Backend.
func (b *IPFSBackend) Open(path string, flags int, writable bool) (FileHandle, error) {
	f, err := b.PFS.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &ipfsHandle{f: f, writable: writable}, nil
}

// Mkdir implements Backend.
func (b *IPFSBackend) Mkdir(path string) error { return b.Host.Mkdir(path) }

// RemoveFile implements Backend.
func (b *IPFSBackend) RemoveFile(path string) error { return b.Host.RemoveFile(path) }

// RemoveDir implements Backend.
func (b *IPFSBackend) RemoveDir(path string) error { return b.Host.RemoveDir(path) }

// Rename implements Backend. Renaming breaks the name binding of protected
// files (tested at the IPFS layer); WASI callers see the POSIX behaviour
// and the integrity failure on next open, like Intel's implementation.
func (b *IPFSBackend) Rename(oldPath, newPath string) error {
	return b.Host.Rename(oldPath, newPath)
}

// Stat implements Backend. Sizes reported for protected files are logical
// sizes read from the protected metadata.
func (b *IPFSBackend) Stat(path string, followLinks bool) (hostfs.FileInfo, error) {
	info, err := b.Host.Stat(path, followLinks)
	if err != nil {
		return info, err
	}
	if info.Type == hostfs.TypeRegular && b.PFS.Exists(path) {
		f, oerr := b.PFS.Open(path, hostfs.ORead)
		if oerr == nil {
			info.Size = f.Size()
			_ = f.Close()
		}
	}
	return info, nil
}

// ReadDir implements Backend.
func (b *IPFSBackend) ReadDir(path string) ([]hostfs.FileInfo, error) {
	return b.Host.ReadDir(path)
}

// Symlink implements Backend.
func (b *IPFSBackend) Symlink(target, link string) error { return b.Host.Symlink(target, link) }

// Readlink implements Backend.
func (b *IPFSBackend) Readlink(path string) (string, error) { return b.Host.Readlink(path) }

// Link implements Backend.
func (b *IPFSBackend) Link(oldPath, newPath string) error { return b.Host.Link(oldPath, newPath) }

// UTimes implements Backend.
func (b *IPFSBackend) UTimes(path string, atime, mtime time.Time) error {
	return b.Host.UTimes(path, atime, mtime)
}

// ipfsHandle adapts an ipfs.File. Seeking past the end on a writable
// handle extends the file with null bytes first (§IV-E).
type ipfsHandle struct {
	f        *ipfs.File
	writable bool
}

func (h *ipfsHandle) Read(p []byte) (int, error)  { return h.f.Read(p) }
func (h *ipfsHandle) Write(p []byte) (int, error) { return h.f.Write(p) }

func (h *ipfsHandle) Seek(offset int64, whence int) (int64, error) {
	pos, err := h.f.Seek(offset, whence)
	if err == nil {
		return pos, nil
	}
	if h.writable {
		// Compute the absolute target and extend with null bytes, the
		// SQLite write-past-EOF workaround.
		var target int64
		switch whence {
		case whenceSet:
			target = offset
		case whenceCur:
			target = h.f.Tell() + offset
		case whenceEnd:
			target = h.f.Size() + offset
		}
		if target > h.f.Size() {
			if exterr := h.f.ExtendTo(target); exterr != nil {
				return 0, exterr
			}
			return h.f.Seek(target, ipfs.SeekStart)
		}
	}
	return 0, err
}

func (h *ipfsHandle) Tell() int64          { return h.f.Tell() }
func (h *ipfsHandle) Size() (int64, error) { return h.f.Size(), nil }
func (h *ipfsHandle) Truncate(size int64) error {
	return h.f.Truncate(size)
}
func (h *ipfsHandle) Sync() error  { return h.f.Flush() }
func (h *ipfsHandle) Close() error { return h.f.Close() }
