// Quickstart: build a tiny WASI application with wasmgen, load it into a
// TWINE enclave and run it. The guest writes to stdout (leaving the
// enclave through an OCALL) and exits; the host observes only the enclave
// statistics.
package main

import (
	"fmt"
	"log"
	"os"

	"twine"
	"twine/wasmgen"
)

// buildHello assembles a minimal WASI program equivalent to:
//
//	int main() { puts("Hello from inside the enclave!"); return 0; }
func buildHello() []byte {
	m := wasmgen.NewModule()
	fdWrite := m.ImportFunc("wasi_snapshot_preview1", "fd_write",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	procExit := m.ImportFunc("wasi_snapshot_preview1", "proc_exit", wasmgen.Sig(wasmgen.I32))
	m.Memory(1, 1)
	msg := "Hello from inside the enclave!\n"
	m.Data(64, []byte(msg))
	start := m.Func(wasmgen.Sig())
	start.I32Const(0).I32Const(64).I32Store(0)              // iovec.base
	start.I32Const(4).I32Const(int32(len(msg))).I32Store(0) // iovec.len
	start.I32Const(1).I32Const(0).I32Const(1).I32Const(16)  // fd=1, iovs, len, nwritten
	start.Call(fdWrite).Drop()
	start.I32Const(0).Call(procExit)
	start.End()
	m.Export("_start", start)
	return m.Bytes()
}

func main() {
	rt, err := twine.NewRuntime(twine.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	meas := rt.Enclave.Measurement()
	fmt.Printf("enclave measurement: %x...\n", meas[:8])

	mod, err := rt.LoadModule(buildHello())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module: %d bytes of Wasm, %d AoT instructions, loaded in %s\n",
		mod.WasmBytes, mod.AotIns, mod.LoadTime)

	inst, err := rt.NewInstance(mod)
	if err != nil {
		log.Fatal(err)
	}
	code, err := inst.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := rt.Enclave.Stats()
	fmt.Printf("guest exited %d — %d ECALLs, %d OCALLs, %d EPC faults\n",
		code, st.ECalls, st.OCalls, st.PageFaults)
}
