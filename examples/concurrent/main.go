// Concurrent serving (PR 3): one module, many enclave instances, one
// front door. The host builds a tiny request handler in Wasm, loads it
// once, and serves a burst of requests through a twine.Pool — worker
// instances are stamped out by copy-from-snapshot, ECALLs multiplex over
// the enclave's TCS pool, and every request also pays a simulated
// untrusted transport wait (the part concurrency actually hides on a
// server).
//
// Run it twice to see the knob:
//
//	go run ./examples/concurrent           # 4 TCS: transport waits overlap
//	go run ./examples/concurrent -tcs 1    # 1 TCS: every request serialises
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"twine"
	"twine/wasmgen"
)

// buildHandler assembles the request handler: handle(x) returns a folded
// checksum of a 1 KiB in-enclave table mixed with the request argument —
// a stand-in for "look something up and compute on it".
func buildHandler() []byte {
	m := wasmgen.NewModule()
	m.Memory(1, 1)
	table := make([]byte, 1024)
	for i := range table {
		table[i] = byte(i*31 + 7)
	}
	m.Data(0, table)

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	i, s := f.AddLocal(wasmgen.I32), f.AddLocal(wasmgen.I32)
	f.I32Const(0).LocalSet(i)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(i).I32Const(int32(len(table))).I32GeS().BrIf(1)
	f.LocalGet(s).I32Const(31).I32Mul().LocalGet(i).I32Load8U(0).I32Add().LocalSet(s)
	f.LocalGet(i).I32Const(1).I32Add().LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(s).LocalGet(0).I32Xor()
	f.End()
	m.Export("handle", f)
	m.ExportMemory("memory")
	return m.Bytes()
}

func main() {
	tcs := flag.Int("tcs", 4, "enclave TCS count (concurrent ECALL bound)")
	workers := flag.Int("workers", 0, "pool workers (default: TCS count)")
	requests := flag.Int("requests", 64, "requests to serve")
	wait := flag.Duration("io", 500*time.Microsecond, "untrusted transport wait per request")
	flag.Parse()

	cfg := twine.Config{}
	cfg.SGX = twine.SGXDefaultConfig()
	cfg.SGX.TCSNum = *tcs
	rt, err := twine.NewRuntime(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Enclave.Destroy()

	mod, err := rt.LoadModule(buildHandler())
	if err != nil {
		log.Fatal(err)
	}

	pool, err := rt.NewPool(mod, twine.PoolConfig{
		Workers: *workers,
		Entry:   "handle",
		HostIO: func() error { // request ingress/egress on the untrusted side
			time.Sleep(*wait)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	fmt.Printf("pool: %d workers over %d TCS (1 full instantiation + %d snapshot copies)\n",
		pool.Size(), rt.Enclave.TCSCount(), pool.Size()-1)

	start := time.Now()
	err = pool.Serve(*requests,
		func(i int) []uint64 { return []uint64{uint64(i)} },
		nil)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}

	// One spot-check request, synchronously.
	out, err := pool.Submit(42)
	if err != nil {
		log.Fatal(err)
	}

	ps := pool.Stats()
	es := rt.Enclave.Stats()
	fmt.Printf("served %d requests in %s (%.0f req/s); handle(42) = %d\n",
		*requests, elapsed.Round(time.Millisecond), float64(*requests)/elapsed.Seconds(), uint32(out[0]))
	fmt.Printf("enclave: %d ECALLs, TCS busy high-water %d/%d, %d entries waited, pool queued %d\n",
		es.ECalls, es.TCSMaxBusy, rt.Enclave.TCSCount(), es.TCSWaits, ps.Waits)
}
