// Secure database: the paper's flagship scenario (§V). A full SQL database
// runs inside the TWINE enclave; everything the untrusted host sees is
// ciphertext produced by the Intel protected file system. The example
// stores medical records, queries them with joins and aggregates, then
// scans the raw host file to demonstrate that no plaintext leaked.
package main

import (
	"bytes"
	"fmt"
	"log"

	"twine"
	"twine/tsql"
)

func main() {
	host := twine.NewMemHostFS()
	db, err := tsql.Open(tsql.Config{
		Path:         "clinic.db",
		HostFS:       host,
		PlatformSeed: "hospital-server-1",
	})
	if err != nil {
		log.Fatal(err)
	}

	mustExec := func(sql string, args ...tsql.Value) {
		if _, err := db.Exec(sql, args...); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE patients (
		id INTEGER PRIMARY KEY, name TEXT NOT NULL, born INTEGER)`)
	mustExec(`CREATE TABLE visits (
		id INTEGER PRIMARY KEY, patient_id INTEGER, diagnosis TEXT, cost REAL)`)
	mustExec(`CREATE INDEX iv ON visits(patient_id)`)

	patients := []struct {
		name string
		born int64
	}{{"Ada Lovelace", 1815}, {"Alan Turing", 1912}, {"Grace Hopper", 1906}}
	for _, p := range patients {
		mustExec(`INSERT INTO patients (name, born) VALUES (?, ?)`,
			tsql.Text(p.name), tsql.Int(p.born))
	}
	for i := 1; i <= 9; i++ {
		mustExec(`INSERT INTO visits (patient_id, diagnosis, cost) VALUES (?, ?, ?)`,
			tsql.Int(int64(i%3+1)), tsql.Text("HIGHLY-SENSITIVE-DIAGNOSIS"),
			tsql.Real(float64(100*i)))
	}

	rows, err := db.Query(`
		SELECT p.name, COUNT(*), SUM(v.cost)
		FROM visits v JOIN patients p ON v.patient_id = p.id
		GROUP BY p.name ORDER BY p.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-patient visit summary (computed inside the enclave):")
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("  %-14s visits=%d total=%.0f\n", r[0].Text(), r[1].Int(), r[2].Real())
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// The untrusted host's view: ciphertext only.
	f, err := host.OpenFile("clinic.db", 1 /* hostfs.ORead */)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	info, _ := f.Stat()
	disk := make([]byte, info.Size)
	f.ReadAt(disk, 0)
	fmt.Printf("\nhost sees clinic.db: %d bytes\n", info.Size)
	for _, probe := range []string{"HIGHLY-SENSITIVE-DIAGNOSIS", "Ada Lovelace", "patients"} {
		leaked := bytes.Contains(disk, []byte(probe))
		fmt.Printf("  plaintext %q on host: %v\n", probe, leaked)
		if leaked {
			log.Fatal("confidentiality violated!")
		}
	}
	fmt.Println("no plaintext left the enclave.")
}
