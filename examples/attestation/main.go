// Attestation & provisioning: the paper's Figure 1 workflow. An
// application provider keeps its Wasm module on its own premises and
// releases it only to an enclave that proves — via remote attestation —
// that it runs the expected TWINE runtime. The module travels encrypted
// under an ECDH session key bound to the attested enclave, so neither the
// host nor the network ever sees the code in plaintext.
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"twine"
	"twine/wasmgen"
)

// buildSecretApp is the provider's confidential application.
func buildSecretApp() []byte {
	m := wasmgen.NewModule()
	fdWrite := m.ImportFunc("wasi_snapshot_preview1", "fd_write",
		wasmgen.Sig(wasmgen.I32, wasmgen.I32, wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
	procExit := m.ImportFunc("wasi_snapshot_preview1", "proc_exit", wasmgen.Sig(wasmgen.I32))
	m.Memory(1, 1)
	msg := "proprietary algorithm executed confidentially\n"
	m.Data(64, []byte(msg))
	f := m.Func(wasmgen.Sig())
	f.I32Const(0).I32Const(64).I32Store(0)
	f.I32Const(4).I32Const(int32(len(msg))).I32Store(0)
	f.I32Const(1).I32Const(0).I32Const(1).I32Const(16).Call(fdWrite).Drop()
	f.I32Const(0).Call(procExit)
	f.End()
	m.Export("_start", f)
	return m.Bytes()
}

func main() {
	// The enclave-side runtime (the "untrusted host" in Figure 1).
	rt, err := twine.NewRuntime(twine.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// The attestation authority knows which platforms are genuine.
	svc := twine.NewAttestationService()
	svc.Register(rt.Platform)

	// The provider ships the module only to the expected measurement.
	provider := twine.NewProvider(svc, rt.Enclave.Measurement(), buildSecretApp())

	// Provisioning over an in-process connection (TLS-equivalent channel
	// is established by the protocol itself: quote + ECDH).
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		err := provider.Serve(server)
		server.Close()
		errCh <- err
	}()
	mod, err := rt.FetchModule(client)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-errCh; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module provisioned after attestation (%d bytes)\n", mod.WasmBytes)

	inst, err := rt.NewInstance(mod)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		log.Fatal(err)
	}

	// A rogue enclave (different code → different measurement) is refused.
	rogue, err := twine.NewRuntime(twine.Config{
		PlatformSeed: "rogue-machine",
		Stdout:       twine.Discard,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Register(rogue.Platform) // genuine hardware, but...
	var wrong [32]byte           // ...the provider expects a different build
	rogueProvider := twine.NewProvider(svc, wrong, buildSecretApp())
	c2, s2 := net.Pipe()
	go func() {
		rogueProvider.Serve(s2)
		s2.Close()
	}()
	if _, err := rogue.FetchModule(c2); err != nil {
		fmt.Printf("rogue enclave correctly refused: %v\n", err)
	} else {
		log.Fatal("rogue enclave was provisioned!")
	}
}
