// KV store: a persistent, crash-safe key-value service built on the
// trusted database — the kind of "larger application service" the paper
// suggests building on the trusted SQLite component. Demonstrates
// transactions (a crash between BEGIN and COMMIT loses nothing),
// sealing-key persistence across restarts, and the strict mode that
// forbids any untrusted POSIX interaction.
package main

import (
	"fmt"
	"log"

	"twine"
	"twine/tsql"
)

type kv struct{ db *tsql.DB }

func main() {
	host := twine.NewMemHostFS()
	openStore := func() *kv {
		db, err := tsql.Open(tsql.Config{
			Path:         "store.db",
			HostFS:       host,
			PlatformSeed: "kv-node-1",
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE IF NOT EXISTS kv (
			k TEXT PRIMARY KEY, v BLOB)`); err != nil {
			log.Fatal(err)
		}
		return &kv{db: db}
	}

	s := openStore()
	set := func(k, v string) {
		if _, err := s.db.Exec(`INSERT OR REPLACE INTO kv VALUES (?, ?)`,
			tsql.Text(k), tsql.Blob([]byte(v))); err != nil {
			log.Fatal(err)
		}
	}
	get := func(k string) string {
		row, err := s.db.QueryRow(`SELECT v FROM kv WHERE k = ?`, tsql.Text(k))
		if err != nil {
			log.Fatal(err)
		}
		if row == nil {
			return "<missing>"
		}
		return string(row[0].Blob())
	}

	set("user:1", "alice")
	set("user:2", "bob")
	set("user:1", "alice-v2") // upsert

	// Transactional batch with rollback.
	s.db.Exec(`BEGIN`)
	set("temp:x", "will vanish")
	s.db.Exec(`ROLLBACK`)

	fmt.Println("user:1 =", get("user:1"))
	fmt.Println("user:2 =", get("user:2"))
	fmt.Println("temp:x =", get("temp:x"))

	row, _ := s.db.QueryRow(`SELECT COUNT(*) FROM kv`)
	fmt.Println("keys stored:", row[0].Int())
	if err := s.db.Close(); err != nil {
		log.Fatal(err)
	}

	// Restart: the same platform can unseal and read its data back.
	s2 := openStore()
	fmt.Println("after restart, user:1 =", func() string {
		row, err := s2.db.QueryRow(`SELECT v FROM kv WHERE k = ?`, tsql.Text("user:1"))
		if err != nil || row == nil {
			log.Fatal(err)
		}
		return string(row[0].Blob())
	}())
	s2.db.Close()
}
