// Command costs regenerates the paper's Table III: per-variant build and
// launch times plus on-disk / in-enclave footprints.
package main

import (
	"flag"
	"fmt"
	"os"

	"twine/internal/bench"
	"twine/internal/sgx"
)

func main() {
	imageBlocks := flag.Int("image-blocks", 16<<10, "SGX-LKL image size in 4 KiB blocks")
	flag.Parse()

	opt := bench.Options{SGX: sgx.DefaultConfig(), ImageBlocks: *imageBlocks}
	opt.SGX.HeapSize = 256 << 20
	reports, err := bench.Costs(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "costs:", err)
		os.Exit(1)
	}
	fmt.Println("Table III — cost factors")
	fmt.Printf("%-10s %16s %12s %14s %16s\n",
		"variant", "compile/image", "launch", "host bytes", "enclave bytes")
	for _, r := range reports {
		fmt.Printf("%-10s %16s %12s %14d %16d\n",
			r.Variant, r.CompileOrLoad, r.Launch, r.HostBytes, r.EnclaveBytes)
	}
}
