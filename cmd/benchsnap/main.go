// Command benchsnap produces a machine-readable performance snapshot of
// the paper-figure hot paths, so successive PRs have a trajectory to
// compare against instead of ad-hoc `go test -bench` runs.
//
// It times:
//
//   - the Figure 3 PolyBench kernels under native Go, plain Wasm
//     ("wamr") and Wasm-in-enclave ("twine"), the Wasm variants each at
//     the fused AoT tier, the PR 4 register tier ("-reg" suffix) and the
//     PR 7 superblock tier ("-super" suffix; the per-tier geomeans and
//     the superblock translation/bailout counts land in the snapshot's
//     notes);
//   - the Figure 4 Speedtest1 file-storage penalty (file-backed minus
//     memory-backed suite time) on in-enclave Wasm over the untrusted
//     POSIX WASI backend, with switchless OCALLs off ("twine", the PR 1
//     baseline dispatch) and on ("twine-switchless", PR 2);
//   - the Figure 7 protected-FS read-path time during the file-backed
//     random-read workload (optimised IPFS) under the same two dispatch
//     modes;
//   - the PR 3 fig-throughput grid: requests/sec of the serving pool
//     (one CPU-bound kernel plus one untrusted transport wait per
//     request) for every (TCS, workers) pair in {1,2,4,8}², showing
//     throughput scaling with the TCS pool until the CPU saturates;
//   - the PR 6 fig-faults pair: the same serving workload at 4 TCS / 4
//     workers with seeded transport faults injected into ~1% of
//     requests (each driving worker quarantine + snapshot repair) vs
//     0%, pricing fault containment in requests/sec (the ratio lands
//     in the fig-faults-overhead note);
//   - the PR 8 fig-tenants grid: requests/sec of the multi-tenant
//     registry at 4 TCS for 1/2/4/8 tenants of one shared module, warm
//     (free-list reset + switchless batch admission) vs cold
//     (per-request instantiation, no batching); the warm/cold ratio at
//     8 tenants lands in the fig-tenants-speedup-t8 note, and a warm
//     series where no request hit the warm free list is rejected;
//   - the PR 8 micro/warmcold triple: ns to provision one
//     ready-to-serve instance by full Instantiate, by
//     InstantiateFromSnapshot, and by in-place ResetFromSnapshot (the
//     warm free-list hot path);
//   - the PR 9 fig-suspend triple: requests/sec with 10× more stateful
//     tenants than the EPC holds resident, served by the instance swap
//     tier ("swap"), by the page-level clock sweep alone ("resident")
//     and by per-request instantiation ("cold"); a swap run that never
//     suspends, breaks counter conservation, reads stale state, drops
//     under half the resident throughput, or fails to beat the cold
//     floor is rejected;
//   - the PR 9 micro/sealsnap series: seal + unseal ns against snapshot
//     size (64 KiB – 16 MiB), the swap tier's per-suspend price;
//   - the PR 10 fig-shards grid: requests/sec of the sharded sealed-SQL
//     serving tier at 4 TCS for 1/2/4/8 hash partitions, under routed
//     point reads ("point"), cross-shard merged aggregates ("scan") and
//     alternating group-committed inserts with read-your-writes point
//     reads on two replicas per shard ("mixed"); the point-read speedup
//     at 4 shards lands in the fig-shards-speedup-s4 note, and a
//     multi-shard point series whose reads all landed on one partition
//     is rejected;
//
// each with warmup and a minimum measurement window, then writes a JSON
// document. The committed BENCH_<n>.json snapshots at the repository root
// were generated with the defaults:
//
//	go run ./cmd/benchsnap -o BENCH_8.json
//
// See BENCHMARKS.md for the snapshot workflow and the figure mapping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"twine/internal/bench"
	"twine/internal/core"
	"twine/internal/polybench"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Result is one timed benchmark point.
type Result struct {
	Name    string  `json:"name"`      // e.g. "fig3/gemm/twine"
	NsPerOp float64 `json:"ns_per_op"` // median wall time per operation
	Ops     int     `json:"ops"`       // measured iterations (after warmup)
}

// Snapshot is the document written to disk.
type Snapshot struct {
	Schema  string            `json:"schema"`
	Config  map[string]any    `json:"config"`
	Results []Result          `json:"results"`
	Notes   map[string]string `json:"notes,omitempty"`
}

// benchSGX mirrors bench_test.go: a scaled-down enclave that keeps the
// cost model while finishing quickly.
func benchSGX() sgx.Config {
	cfg := sgx.DefaultConfig()
	cfg.EPCSize = 24 << 20
	cfg.EPCUsable = 16 << 20
	cfg.HeapSize = 192 << 20
	cfg.ReservedSize = 16 << 20
	cfg.TransitionCost = 1700 * time.Nanosecond
	return cfg
}

// figSGX is benchSGX with a database-sized heap: the fig4/fig7 series
// build a fresh enclave per measured op, and a 192 MiB pool commit per op
// is pure allocator noise for workloads whose working set is ~2 MiB.
func figSGX() sgx.Config {
	cfg := benchSGX()
	cfg.HeapSize = 64 << 20
	cfg.ReservedSize = 4 << 20
	return cfg
}

// measure runs fn in a loop: warmup iterations first, then as many
// timed iterations as fit in minWindow (at least minOps).
func measure(fn func() error, warmup, minOps int, minWindow time.Duration) (float64, int, error) {
	return measureDur(func() (time.Duration, error) {
		start := time.Now()
		err := fn()
		return time.Since(start), err
	}, warmup, minOps, minWindow)
}

// measureDur is measure for operations that report their own interesting
// duration (e.g. only the read-path time of a populate-then-read
// workload). The window is still advanced by wall-clock so setup cost
// bounds total runtime, but the reported ns/op is the MEDIAN of the
// reported durations — the paper-figure drivers run on shared machines
// and a median is robust against scheduler spikes a mean is not.
func measureDur(fn func() (time.Duration, error), warmup, minOps int, minWindow time.Duration) (float64, int, error) {
	for i := 0; i < warmup; i++ {
		if _, err := fn(); err != nil {
			return 0, 0, err
		}
	}
	var samples []time.Duration
	start := time.Now()
	for time.Since(start) < minWindow || len(samples) < minOps {
		d, err := fn()
		if err != nil {
			return 0, 0, err
		}
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	med := samples[len(samples)/2]
	if len(samples)%2 == 0 {
		med = (samples[len(samples)/2-1] + samples[len(samples)/2]) / 2
	}
	return float64(med.Nanoseconds()), len(samples), nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	verbose := flag.Bool("v", false, "print register/superblock translation counters and instructions retired per tier")
	kernels := flag.String("kernels", "gemm,2mm,atax,jacobi-2d,cholesky,floyd-warshall",
		"comma-separated Fig3 kernels")
	n := flag.Int("n", 32, "kernel problem size")
	warmup := flag.Int("warmup", 2, "warmup iterations per point")
	minOps := flag.Int("minops", 5, "minimum timed iterations per point")
	window := flag.Duration("window", 300*time.Millisecond, "minimum measurement window per point")
	fig4Scale := flag.Int("fig4-scale", 8, "Fig4 Speedtest1 scale (0 disables the fig4 series)")
	fig7Records := flag.Int("fig7-records", 400, "Fig7 database records (0 disables the fig7 series)")
	fig7Reads := flag.Int("fig7-reads", 300, "Fig7 random point reads per op")
	thrRequests := flag.Int("thr-requests", 64, "fig-throughput requests per point (0 disables the series)")
	thrKernel := flag.String("thr-kernel", "gemm", "fig-throughput kernel")
	thrKernelN := flag.Int("thr-n", 16, "fig-throughput kernel problem size")
	thrIO := flag.Duration("thr-io", 500*time.Microsecond, "fig-throughput untrusted transport wait per request")
	faultRate := flag.Float64("fault-rate", 0.01, "fig-faults injected transport-fault probability (0 disables the series)")
	tenRequests := flag.Int("ten-requests", 64, "fig-tenants requests per tenant per point (0 disables the series)")
	warmColdPages := flag.Int("warmcold-pages", 16, "micro/warmcold guest memory pages (0 disables the series)")
	suspRequests := flag.Int("susp-requests", 2000, "fig-suspend total requests per run (0 disables the series)")
	suspMaxRes := flag.Int("susp-maxres", 4, "fig-suspend resident-instance bound (tenants = 10x this)")
	sealSnapMax := flag.Int64("sealsnap-max", 16<<20, "micro/sealsnap largest snapshot size in bytes (0 disables the series)")
	shardRequests := flag.Int("shard-requests", 256, "fig-shards requests per point (0 disables the series)")
	shardRows := flag.Int("shard-rows", 256, "fig-shards pre-ingested table rows")
	shardIO := flag.Duration("shard-io", 300*time.Microsecond, "fig-shards untrusted transport wait per shard sub-request")
	flag.Parse()

	snap := Snapshot{
		Schema: "twine-bench-snapshot/2",
		Config: map[string]any{
			"kernel_n":        *n,
			"warmup":          *warmup,
			"min_ops":         *minOps,
			"window_ms":       window.Milliseconds(),
			"epc_usable_mib":  16,
			"transit_cost_ns": 1700,
			"fig4_scale":      *fig4Scale,
			"fig7_records":    *fig7Records,
			"fig7_reads":      *fig7Reads,
			"thr_requests":    *thrRequests,
			"thr_kernel":      *thrKernel,
			"thr_kernel_n":    *thrKernelN,
			"thr_io_us":       thrIO.Microseconds(),
			"fault_rate":      *faultRate,
			"ten_requests":    *tenRequests,
			"warmcold_pages":  *warmColdPages,
			"susp_requests":   *suspRequests,
			"susp_maxres":     *suspMaxRes,
			"sealsnap_max":    *sealSnapMax,
			"shard_requests":  *shardRequests,
			"shard_rows":      *shardRows,
			"shard_io_us":     shardIO.Microseconds(),
		},
		Notes: map[string]string{
			"fig3":           "PolyBench kernels, ns/op per full kernel run (incl. checksum)",
			"fig4":           "Speedtest1 file-storage penalty on twine (file suite minus mem suite, median); '-switchless' = PR 2 ring on",
			"fig7":           "protected-FS read-path time during the Fig7 random-read workload (optimized IPFS, median); '-switchless' = PR 2 ring on",
			"fig-throughput": "PR 3 serving pool: ns/request (median) for w concurrent workers at a given TCS count; each request = one CPU-bound kernel run in-enclave + one untrusted transport wait (classic OCALL). req/s = 1e9/ns_per_op.",
			"fig-faults":     "PR 6 fault containment: ns/request (median) of the 4-TCS/4-worker serving pool with seeded transport faults injected at 0% vs the configured rate; each faulted request costs its failure plus a worker quarantine + snapshot repair. The pair bounds the containment overhead.",
			"fig-tenants":    "PR 8 multi-tenant front door: ns/request (median) for t tenants of one shared module at 4 TCS, each tenant a one-worker pool driven by its own client. 'warm' = free-list reset + switchless batch admission; 'cold' = per-request instantiation, batching off. req/s = 1e9/ns_per_op.",
			"micro-warmcold": "PR 8 instance provisioning (wasm layer, mean ns): full Instantiate vs InstantiateFromSnapshot vs in-place ResetFromSnapshot over a 16-page module.",
			"fig-suspend":    "PR 9 EPC-pressure lifecycle: ns/request (median) with 10x more stateful tenants than the EPC holds, under an 80/20 schedule. 'swap' = instance swap tier (MaxResident bound, sealed suspend/resume); 'resident' = all tenants warm, pressure served by the page-level clock sweep; 'cold' = per-request instantiation floor. req/s = 1e9/ns_per_op.",
			"micro-sealsnap": "PR 9 suspend price (sgx layer, mean ns): seal + unseal round trip vs snapshot size — AES-GCM over the sealed delta, linear in the payload.",
			"fig-shards":     "PR 10 sharded sealed-SQL tier: ns/request (median) for s hash partitions at 4 TCS, 8 clients. 'point' = routed single-shard reads; 'scan' = cross-shard merged COUNT+SUM; 'mixed' = alternating group-committed inserts and point reads on 2 replicas/shard. Each shard sub-request pays the configured transport wait while its serving handle is held; waits on different shards overlap. req/s = 1e9/ns_per_op.",
		},
	}

	// fig3: each kernel under native Go, plain Wasm (fused AoT and the
	// PR 4 register tier), and the same two tiers inside the enclave.
	// The "-reg" series' geomean against the fused series is the PR 4
	// acceptance number (BENCH_4.json).
	geoFused, geoReg := map[string]float64{}, map[string]float64{}
	geoSuper, geoNative := map[string]float64{}, 0.0
	superBailouts := map[string]string{}
	nKernels := 0
	for _, name := range strings.Split(*kernels, ",") {
		name = strings.TrimSpace(name)
		k, ok := polybench.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsnap: unknown kernel %q\n", name)
			os.Exit(1)
		}
		nKernels++

		// native
		nsNative, ops, err := measure(func() error {
			polybench.RunNative(k, *n)
			return nil
		}, *warmup, *minOps, *window)
		die(name+"/native", err)
		snap.Results = append(snap.Results, Result{"fig3/" + name + "/native", nsNative, ops})

		bin := k.Build(*n)
		var ns = map[string]float64{}

		// wamr / wamr-reg: plain Wasm, no enclave.
		mod, err := wasm.Decode(bin)
		die(name+"/wamr decode", err)
		c, err := wasm.Compile(mod)
		die(name+"/wamr compile", err)
		for _, tier := range []struct {
			suffix string
			engine wasm.Engine
		}{{"wamr", wasm.EngineAOT}, {"wamr-reg", wasm.EngineRegister}, {"wamr-super", wasm.EngineSuperblock}} {
			imp := wasm.NewImportObject()
			polybench.MathImports(imp)
			in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: tier.engine})
			die(name+"/"+tier.suffix+" instantiate", err)
			nsOp, ops, err := measure(func() error {
				_, err := in.Invoke("run")
				return err
			}, *warmup, *minOps, *window)
			die(name+"/"+tier.suffix, err)
			snap.Results = append(snap.Results, Result{"fig3/" + name + "/" + tier.suffix, nsOp, ops})
			ns[tier.suffix] = nsOp
			if *verbose {
				fmt.Fprintf(os.Stderr, "    %-10s %12d instructions retired (%d timed runs)\n",
					tier.suffix, in.InsRetired(), ops)
			}
		}

		// twine / twine-reg: the same module inside the enclave.
		for _, tier := range []struct {
			suffix string
			engine wasm.Engine
		}{{"twine", wasm.EngineAOT}, {"twine-reg", wasm.EngineRegister}, {"twine-super", wasm.EngineSuperblock}} {
			rt, err := core.NewRuntime(core.Config{PlatformSeed: "benchsnap", SGX: benchSGX(), Engine: tier.engine})
			die(name+"/"+tier.suffix+" runtime", err)
			tmod, err := rt.LoadModule(bin)
			die(name+"/"+tier.suffix+" load", err)
			inst, err := rt.NewInstance(tmod)
			die(name+"/"+tier.suffix+" instantiate", err)
			nsOp, ops, err := measure(func() error {
				_, err := inst.Invoke("run")
				return err
			}, *warmup, *minOps, *window)
			die(name+"/"+tier.suffix, err)
			snap.Results = append(snap.Results, Result{"fig3/" + name + "/" + tier.suffix, nsOp, ops})
			ns[tier.suffix] = nsOp
			if *verbose {
				fmt.Fprintf(os.Stderr, "    %-10s %12d instructions retired (%d timed runs)\n",
					tier.suffix, inst.In.InsRetired(), ops)
				if tier.engine == wasm.EngineRegister {
					// Enclave instances run with the EPC-TLB on (default
					// config), i.e. the guarded translation form.
					st := tmod.Compiled.RegStats(true)
					fmt.Fprintf(os.Stderr, "    %-10s translate: %d funcs, %d folds, %d props, %d dead stores, %d fused, %d hoisted windows, %d bailouts\n",
						tier.suffix, st.Funcs, st.Folds, st.Props, st.DeadStores, st.Fused, st.Hoists, st.Bailouts)
				}
				if tier.engine == wasm.EngineSuperblock {
					st := tmod.Compiled.SuperStats(true)
					fmt.Fprintf(os.Stderr, "    %-10s translate: %d funcs (%d reg-bail), %d loops -> %d idiom + %d step traces, %d bailouts\n",
						tier.suffix, st.Funcs, st.RegBail, st.Loops, st.Idioms, st.StepLoops, st.Bailouts)
				}
			}
		}

		st := c.SuperStats(false)
		superBailouts[name] = fmt.Sprintf("%d loops, %d idiom, %d step, %d bailouts", st.Loops, st.Idioms, st.StepLoops, st.Bailouts)
		geoFused["wamr"] += lg(ns["wamr"])
		geoReg["wamr"] += lg(ns["wamr-reg"])
		geoSuper["wamr"] += lg(ns["wamr-super"])
		geoFused["twine"] += lg(ns["twine"])
		geoReg["twine"] += lg(ns["twine-reg"])
		geoSuper["twine"] += lg(ns["twine-super"])
		geoNative += lg(nsNative)
		fmt.Fprintf(os.Stderr, "%-16s native %10.0f ns  wamr %10.0f/%10.0f/%10.0f ns  twine %10.0f/%10.0f/%10.0f ns  (super speedup %.2fx/%.2fx)\n",
			name, nsNative, ns["wamr"], ns["wamr-reg"], ns["wamr-super"], ns["twine"], ns["twine-reg"], ns["twine-super"],
			ns["wamr"]/ns["wamr-super"], ns["twine"]/ns["twine-super"])
	}
	if nKernels > 0 {
		for _, v := range []string{"wamr", "twine"} {
			sp := math.Exp((geoFused[v] - geoReg[v]) / float64(nKernels))
			snap.Notes["fig3-reg-geomean-"+v] = fmt.Sprintf("%.3fx", sp)
			fmt.Fprintf(os.Stderr, "%-16s register-tier geomean speedup over fused: %.3fx\n", v, sp)
			sps := math.Exp((geoReg[v] - geoSuper[v]) / float64(nKernels))
			snap.Notes["fig3-super-geomean-"+v] = fmt.Sprintf("%.3fx", sps)
			ratio := math.Exp((geoSuper[v] - geoNative) / float64(nKernels))
			snap.Notes["fig3-super-vs-native-"+v] = fmt.Sprintf("%.2fx", ratio)
			fmt.Fprintf(os.Stderr, "%-16s superblock geomean speedup over reg: %.3fx (%.2fx native)\n", v, sps, ratio)
		}
		for name, bl := range superBailouts {
			snap.Notes["fig3-super-translate-"+name] = bl
		}
	}

	// Fig4/Fig7 file-backed series, switchless off ("twine", the PR 1
	// dispatch) vs on ("twine-switchless", PR 2's default).
	modes := []struct {
		suffix string
		mode   core.SwitchlessMode
	}{
		{"twine", core.SwitchlessOff},
		{"twine-switchless", core.SwitchlessOn},
	}

	// Fig 4's headline finding — the one PR 2 attacks — is the
	// file-storage penalty: "the file-backed variants are several times
	// slower than the memory-backed ones" because every file operation
	// crosses the enclave boundary (§IV-C: WAMR's WASI "plainly routes
	// most of the WASI functions to their POSIX equivalent using
	// OCALLs"). The series runs Speedtest1 in exactly that
	// configuration — in-enclave Wasm over the untrusted POSIX backend —
	// and reports the per-suite penalty (file-backed minus memory-backed
	// time), isolating the I/O stack the dispatch change touches from
	// the (identical) SQL engine time. This is also the path where the
	// write-batching of adjacent journal writes engages.
	if *fig4Scale > 0 {
		var ns [2]float64
		suite := func(storage bench.Storage, opt bench.Options) (time.Duration, error) {
			res, err := bench.RunSpeedtest(bench.Twine, storage, *fig4Scale, opt)
			var sum time.Duration
			for _, r := range res {
				sum += r.Elapsed
			}
			return sum, err
		}
		for i, m := range modes {
			opt := bench.Options{CachePages: 64, HostPOSIX: true, SGX: figSGX(), Switchless: m.mode}
			nsOp, ops, err := measureDur(func() (time.Duration, error) {
				mem, merr := suite(bench.Mem, opt)
				if merr != nil {
					return 0, merr
				}
				file, ferr := suite(bench.File, opt)
				if ferr != nil {
					return 0, ferr
				}
				if file < mem {
					return 0, nil
				}
				return file - mem, nil
			}, *warmup, *minOps, *window)
			die("fig4/"+m.suffix, err)
			snap.Results = append(snap.Results, Result{"fig4/speedtest-file-penalty/" + m.suffix, nsOp, ops})
			ns[i] = nsOp
		}
		if ns[1] > 0 {
			fmt.Fprintf(os.Stderr, "%-16s twine %12.0f ns  switchless %12.0f ns  (speedup %.2fx)\n",
				"fig4/penalty", ns[0], ns[1], ns[0]/ns[1])
		} else {
			fmt.Fprintf(os.Stderr, "%-16s penalty below measurement floor at this scale\n", "fig4/penalty")
		}
	}

	// Fig 7 decomposes the protected-FS random-read path; the series is
	// that read-path time (the figure's subject), under the optimised
	// node lifecycle where boundary crossings are the dominant share.
	if *fig7Records > 0 {
		var ns [2]float64
		for i, m := range modes {
			// A small node cache keeps the reads cold (the paper's EPC-
			// constrained regime), so every point read walks the Merkle
			// tree through the boundary.
			opt := bench.Options{CachePages: 128, IPFSCacheNodes: 16, SGX: figSGX(), Switchless: m.mode}
			nsOp, ops, err := measureDur(func() (time.Duration, error) {
				bd, berr := bench.RunBreakdown(*fig7Records, *fig7Reads, true, opt)
				return bd.ReadPath, berr
			}, *warmup, *minOps, *window)
			die("fig7/"+m.suffix, err)
			snap.Results = append(snap.Results, Result{"fig7/randread-readpath/" + m.suffix, nsOp, ops})
			ns[i] = nsOp
		}
		if ns[1] > 0 {
			fmt.Fprintf(os.Stderr, "%-16s twine %12.0f ns  switchless %12.0f ns  (speedup %.2fx)\n",
				"fig7/readpath", ns[0], ns[1], ns[0]/ns[1])
		} else {
			// A record count that fits the SQL page cache never touches
			// the protected FS; the series is then vacuous.
			fmt.Fprintf(os.Stderr, "%-16s no protected-FS reads (records fit the page cache)\n", "fig7/readpath")
		}
	}

	// fig-throughput (PR 3): requests/sec vs workers at 1/2/4/8 TCS. Each
	// measured op serves thr-requests requests through the pool; the
	// reported ns/op is per request. The runtime (enclave, module, pool)
	// is rebuilt per op so every sample includes a cold TCS pool — the
	// steady-state serving rate is what the median captures, since the
	// per-request cost dwarfs the amortised setup inside one op.
	if *thrRequests > 0 {
		var base float64
		for _, tcs := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := bench.ThroughputConfig{
					TCS:         tcs,
					Workers:     workers,
					Requests:    *thrRequests,
					Kernel:      *thrKernel,
					KernelN:     *thrKernelN,
					HostIODelay: *thrIO,
					SGX:         figSGX(),
				}
				nsOp, ops, err := measureDur(func() (time.Duration, error) {
					res, rerr := bench.RunThroughput(cfg)
					if rerr != nil {
						return 0, rerr
					}
					return res.Elapsed / time.Duration(res.Requests), nil
				}, 1, 3, *window/2)
				name := fmt.Sprintf("fig-throughput/%s/tcs%d/w%d", *thrKernel, tcs, workers)
				die(name, err)
				snap.Results = append(snap.Results, Result{name, nsOp, ops})
				if tcs == 1 && workers == 1 {
					base = nsOp
				}
				fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/req  %8.0f req/s  (x%.2f vs 1 TCS/1 worker)\n",
					name, nsOp, 1e9/nsOp, base/nsOp)
			}
		}
	}

	// fig-faults (PR 6): the same serving workload at a fixed 4 TCS / 4
	// workers, with the chaos harness failing a seeded fraction of the
	// per-request transport calls. Each faulted request drives the full
	// containment path — failure classification, worker quarantine,
	// snapshot repair — so the 0%-vs-rate pair prices fault containment
	// in requests/sec.
	if *thrRequests > 0 && *faultRate > 0 {
		var ns [2]float64
		for i, rate := range []float64{0, *faultRate} {
			// 4x the fig-throughput batch so a ~1% seeded rate selects a
			// meaningful number of requests per run (the chosen seed hits
			// 3 of 256 at the defaults; the guard below rejects a
			// silently fault-free "faulted" series).
			cfg := bench.ThroughputConfig{
				TCS:         4,
				Workers:     4,
				Requests:    *thrRequests * 4,
				Kernel:      *thrKernel,
				KernelN:     *thrKernelN,
				HostIODelay: *thrIO,
				SGX:         figSGX(),
				FaultRate:   rate,
				FaultSeed:   3,
			}
			var failed, repaired int64
			nsOp, ops, err := measureDur(func() (time.Duration, error) {
				res, rerr := bench.RunThroughput(cfg)
				if rerr != nil {
					return 0, rerr
				}
				failed, repaired = res.Failed, res.Repaired
				return res.Elapsed / time.Duration(res.Requests), nil
			}, 1, 3, *window/2)
			name := fmt.Sprintf("fig-faults/%s/tcs4/w4/rate%g", *thrKernel, rate*100)
			die(name, err)
			snap.Results = append(snap.Results, Result{name, nsOp, ops})
			ns[i] = nsOp
			fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/req  %8.0f req/s  (%d failed, %d repaired in last op)\n",
				name, nsOp, 1e9/nsOp, failed, repaired)
			if rate == 0 && (failed != 0 || repaired != 0) {
				die(name, fmt.Errorf("fault-free run failed %d requests, repaired %d workers", failed, repaired))
			}
			if rate > 0 && (failed == 0 || repaired == 0) {
				die(name, fmt.Errorf("faulted run exercised no containment (failed %d, repaired %d)", failed, repaired))
			}
		}
		snap.Notes["fig-faults-overhead"] = fmt.Sprintf("%.3fx ns/req at %g%% faults vs 0%%", ns[1]/ns[0], *faultRate*100)
		fmt.Fprintf(os.Stderr, "%-28s containment overhead %.3fx at %g%% faults\n", "fig-faults", ns[1]/ns[0], *faultRate*100)
	}

	// fig-tenants (PR 8): requests/sec vs tenant count at a fixed 4 TCS,
	// every tenant registering the SAME module bytes so the registry
	// compiles once and the grid prices the serving path alone. The warm
	// series is the PR 8 machinery (free-list reset + batch admission);
	// the cold series the per-request-instantiation ablation. Guards
	// reject vacuous runs: a warm point where no request was served off
	// the warm free list, or where the shared binary compiled more than
	// once, is a regression in the front door, not a slow machine.
	if *tenRequests > 0 {
		var nsWarm, nsCold map[int]float64 = map[int]float64{}, map[int]float64{}
		for _, tenants := range []int{1, 2, 4, 8} {
			for _, mode := range []struct {
				suffix string
				cold   bool
			}{{"warm", false}, {"cold", true}} {
				cfg := bench.TenantsConfig{
					TCS:      4,
					Tenants:  tenants,
					Requests: *tenRequests * tenants,
					Cold:     mode.cold,
					SGX:      figSGX(),
				}
				var last bench.TenantsResult
				nsOp, ops, err := measureDur(func() (time.Duration, error) {
					res, rerr := bench.RunTenants(cfg)
					if rerr != nil {
						return 0, rerr
					}
					last = res
					return res.Elapsed / time.Duration(res.Requests), nil
				}, 1, 3, *window/2)
				name := fmt.Sprintf("fig-tenants/tcs4/t%d/%s", tenants, mode.suffix)
				die(name, err)
				if last.CompiledModules != 1 || last.CompileHits != int64(tenants-1) {
					die(name, fmt.Errorf("shared binary not shared: %d compiled, %d cache hits for %d tenants",
						last.CompiledModules, last.CompileHits, tenants))
				}
				if !mode.cold && (last.WarmResets == 0 || last.ColdStarts != 0) {
					die(name, fmt.Errorf("no request hit the warm free list (%d warm resets, %d cold starts)",
						last.WarmResets, last.ColdStarts))
				}
				if mode.cold && last.ColdStarts == 0 {
					die(name, fmt.Errorf("cold series served no cold starts"))
				}
				snap.Results = append(snap.Results, Result{name, nsOp, ops})
				if mode.cold {
					nsCold[tenants] = nsOp
				} else {
					nsWarm[tenants] = nsOp
				}
				fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/req  %8.0f req/s  (%d batched wakeups in last op)\n",
					name, nsOp, 1e9/nsOp, last.BatchedWakeups)
			}
		}
		sp := nsCold[8] / nsWarm[8]
		snap.Notes["fig-tenants-speedup-t8"] = fmt.Sprintf("%.2fx req/s warm vs cold at 8 tenants / 4 TCS", sp)
		fmt.Fprintf(os.Stderr, "%-28s warm-over-cold speedup %.2fx at 8 tenants\n", "fig-tenants", sp)
	}

	// micro/warmcold (PR 8): what one ready-to-serve instance costs by
	// provisioning strategy. RunWarmCold reports per-iteration means; the
	// in-place reset must come out strictly cheaper than instantiating
	// from the snapshot or the warm free list is not buying anything.
	if *warmColdPages > 0 {
		const iters = 100
		wc, err := bench.RunWarmCold(*warmColdPages, iters)
		die("micro/warmcold", err)
		if wc.ResetNs >= wc.SnapshotNs {
			die("micro/warmcold", fmt.Errorf("warm reset (%.0f ns) not cheaper than snapshot instantiation (%.0f ns)",
				wc.ResetNs, wc.SnapshotNs))
		}
		snap.Results = append(snap.Results,
			Result{"micro/warmcold/full-instantiate", wc.FullNs, iters},
			Result{"micro/warmcold/snapshot-instantiate", wc.SnapshotNs, iters},
			Result{"micro/warmcold/warm-reset", wc.ResetNs, iters})
		snap.Notes["micro-warmcold-ratio"] = fmt.Sprintf("%.1fx cheaper to reset in place than to instantiate from snapshot", wc.ColdWarmRatio())
		fmt.Fprintf(os.Stderr, "%-28s full %8.0f ns  snapshot %8.0f ns  reset %8.0f ns  (reset %.1fx cheaper)\n",
			"micro/warmcold", wc.FullNs, wc.SnapshotNs, wc.ResetNs, wc.ColdWarmRatio())
	}

	// fig-suspend (PR 9): ten times more stateful tenants than the swap
	// tier keeps resident, on a deliberately tiny EPC, under the 80/20
	// schedule. The swap series prices the instance-granularity tier; the
	// resident ablation serves the same pressure one page at a time
	// through the clock sweep; the cold series is the no-state floor.
	// RunSuspend itself rejects vacuous runs (zero suspends in swap mode,
	// broken Suspends == Resumes + Suspended conservation, any stale-state
	// read); the guards here enforce the acceptance economics — the swap
	// tier must hold at least half the all-resident throughput and beat
	// the cold-start floor outright.
	if *suspRequests > 0 {
		nsMode := map[string]float64{}
		for _, mode := range []string{"swap", "resident", "cold"} {
			cfg := bench.SuspendConfig{
				Mode:        mode,
				MaxResident: *suspMaxRes,
				Tenants:     10 * *suspMaxRes,
				Requests:    *suspRequests,
			}
			var last bench.SuspendResult
			nsOp, ops, err := measureDur(func() (time.Duration, error) {
				res, rerr := bench.RunSuspend(cfg)
				if rerr != nil {
					return 0, rerr
				}
				last = res
				return res.Elapsed / time.Duration(res.Requests), nil
			}, 1, 3, *window/2)
			name := fmt.Sprintf("fig-suspend/t%d/max%d/%s", cfg.Tenants, *suspMaxRes, mode)
			die(name, err)
			if mode != "swap" && last.Suspends != 0 {
				die(name, fmt.Errorf("%s ablation suspended %d instances", mode, last.Suspends))
			}
			snap.Results = append(snap.Results, Result{name, nsOp, ops})
			nsMode[mode] = nsOp
			fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/req  %8.0f req/s  (%d suspends, %d resumes, %d sealed KiB, resume p50 %v)\n",
				name, nsOp, 1e9/nsOp, last.Suspends, last.Resumes, last.SealBytes>>10, last.ResumeP50)
			if mode == "swap" {
				snap.Notes["fig-suspend-resume-p50"] = last.ResumeP50.String()
				snap.Notes["fig-suspend-resume-p99"] = last.ResumeP99.String()
				snap.Notes["fig-suspend-seal-kib"] = fmt.Sprintf("%d", last.SealBytes>>10)
			}
		}
		// ns/op ratios invert to req/s ratios.
		ratioRes := nsMode["resident"] / nsMode["swap"]
		ratioCold := nsMode["cold"] / nsMode["swap"]
		if ratioRes < 0.5 {
			die("fig-suspend", fmt.Errorf("swap tier sustained only %.2fx of the all-resident req/s (acceptance floor 0.5x)", ratioRes))
		}
		if ratioCold <= 1 {
			die("fig-suspend", fmt.Errorf("swap tier (%.0f ns/req) not above the cold-start floor (%.0f ns/req)", nsMode["swap"], nsMode["cold"]))
		}
		snap.Notes["fig-suspend-vs-resident"] = fmt.Sprintf("%.2fx of the all-resident req/s at 10x over-commit", ratioRes)
		snap.Notes["fig-suspend-vs-cold"] = fmt.Sprintf("%.2fx the cold-start req/s", ratioCold)
		fmt.Fprintf(os.Stderr, "%-28s swap holds %.2fx of resident req/s, %.2fx the cold floor\n", "fig-suspend", ratioRes, ratioCold)
	}

	// micro/sealsnap (PR 9): the per-suspend seal price as the sealed
	// snapshot grows — linear AES-GCM, so the series doubles roughly with
	// the size while MB/s stays flat.
	if *sealSnapMax > 0 {
		var sizes []int64
		for _, s := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20} {
			if s <= *sealSnapMax {
				sizes = append(sizes, s)
			}
		}
		pts, err := bench.RunSealSnap(sizes)
		die("micro/sealsnap", err)
		for _, p := range pts {
			snap.Results = append(snap.Results,
				Result{fmt.Sprintf("micro/sealsnap/%dKiB/seal", p.Size>>10), p.SealNs, 1},
				Result{fmt.Sprintf("micro/sealsnap/%dKiB/unseal", p.Size>>10), p.UnsealNs, 1})
			fmt.Fprintf(os.Stderr, "%-28s seal %10.0f ns  unseal %10.0f ns  (%.0f MB/s)\n",
				fmt.Sprintf("micro/sealsnap/%dKiB", p.Size>>10), p.SealNs, p.UnsealNs, p.MBPerSec)
		}
	}

	// fig-shards (PR 10): the sharded sealed-SQL serving tier at a fixed
	// 4 TCS and 8 clients, shards doubling 1 → 8. Every response is
	// verified inside RunShards against the deterministic payload, so a
	// fast-but-wrong partitioning cannot post a number. Guards reject
	// degenerate routing (a multi-shard point series whose reads all
	// landed on one partition), an idle write tier in the mixed series,
	// and a point series that stopped scaling (under 2x req/s from 1 to
	// 4 shards; the committed snapshots show ~3.5x).
	if *shardRequests > 0 {
		nsPoint := map[int]float64{}
		for _, shards := range []int{1, 2, 4, 8} {
			for _, wl := range []string{"point", "scan", "mixed"} {
				cfg := bench.ShardsConfig{
					Shards:      shards,
					Clients:     8,
					Requests:    *shardRequests,
					Rows:        *shardRows,
					TCS:         4,
					Workload:    wl,
					HostIODelay: *shardIO,
				}
				if wl == "mixed" {
					cfg.Replicas = 2
				}
				var last bench.ShardsResult
				nsOp, ops, err := measureDur(func() (time.Duration, error) {
					res, rerr := bench.RunShards(cfg)
					if rerr != nil {
						return 0, rerr
					}
					last = res
					return res.Elapsed / time.Duration(res.Requests), nil
				}, 1, 3, *window/2)
				name := fmt.Sprintf("fig-shards/%s/s%d", wl, shards)
				die(name, err)
				if wl != "scan" && shards > 1 && last.MaxShardShare >= 1 {
					die(name, fmt.Errorf("every routed read landed on one of %d shards (share %.2f)",
						shards, last.MaxShardShare))
				}
				if wl == "scan" && shards > 1 && last.FanOuts != int64(last.Requests) {
					die(name, fmt.Errorf("scan series fanned out %d of %d requests", last.FanOuts, last.Requests))
				}
				if wl == "mixed" && (last.GroupCommits == 0 || last.GroupedStmts < last.GroupCommits) {
					die(name, fmt.Errorf("write tier idle or miscounted: %d commits, %d grouped statements",
						last.GroupCommits, last.GroupedStmts))
				}
				snap.Results = append(snap.Results, Result{name, nsOp, ops})
				if wl == "point" {
					nsPoint[shards] = nsOp
				}
				fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/req  %8.0f req/s  (share %.2f, %d commits, %d refreshes in last op)\n",
					name, nsOp, 1e9/nsOp, last.MaxShardShare, last.GroupCommits, last.ReplicaRefreshes)
			}
		}
		sp := nsPoint[1] / nsPoint[4]
		if sp < 2 {
			die("fig-shards", fmt.Errorf("point reads scaled only %.2fx from 1 to 4 shards (floor 2x)", sp))
		}
		snap.Notes["fig-shards-speedup-s4"] = fmt.Sprintf("%.2fx point-read req/s at 4 shards vs 1", sp)
		snap.Notes["fig-shards-speedup-s8"] = fmt.Sprintf("%.2fx point-read req/s at 8 shards vs 1", nsPoint[1]/nsPoint[8])
		fmt.Fprintf(os.Stderr, "%-28s point-read speedup %.2fx at 4 shards, %.2fx at 8\n",
			"fig-shards", sp, nsPoint[1]/nsPoint[8])
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	die("marshal", err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	die("write", os.WriteFile(*out, enc, 0o644))
}

// lg is the natural log used for the geomean accumulators.
func lg(x float64) float64 { return math.Log(x) }

func die(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", what, err)
		os.Exit(1)
	}
}
