// Command benchsnap produces a machine-readable performance snapshot of
// the paper-figure hot paths, so successive PRs have a trajectory to
// compare against instead of ad-hoc `go test -bench` runs.
//
// It times the Figure 3 PolyBench kernels under the three execution
// variants (native Go, plain Wasm AoT ("wamr"), and Wasm-in-enclave
// ("twine")) with warmup and a minimum measurement window, then writes a
// JSON document. The committed BENCH_1.json at the repository root was
// generated with the defaults:
//
//	go run ./cmd/benchsnap -o BENCH_1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"twine/internal/core"
	"twine/internal/polybench"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Result is one timed benchmark point.
type Result struct {
	Name    string  `json:"name"`      // e.g. "fig3/gemm/twine"
	NsPerOp float64 `json:"ns_per_op"` // mean wall time per kernel run
	Ops     int     `json:"ops"`       // measured iterations (after warmup)
}

// Snapshot is the document written to disk.
type Snapshot struct {
	Schema  string            `json:"schema"`
	Config  map[string]any    `json:"config"`
	Results []Result          `json:"results"`
	Notes   map[string]string `json:"notes,omitempty"`
}

// benchSGX mirrors bench_test.go: a scaled-down enclave that keeps the
// cost model while finishing quickly.
func benchSGX() sgx.Config {
	cfg := sgx.DefaultConfig()
	cfg.EPCSize = 24 << 20
	cfg.EPCUsable = 16 << 20
	cfg.HeapSize = 192 << 20
	cfg.ReservedSize = 16 << 20
	cfg.TransitionCost = 1700 * time.Nanosecond
	return cfg
}

// measure runs fn in a loop: warmup iterations first, then as many
// timed iterations as fit in minWindow (at least minOps).
func measure(fn func() error, warmup, minOps int, minWindow time.Duration) (float64, int, error) {
	for i := 0; i < warmup; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	var ops int
	start := time.Now()
	for time.Since(start) < minWindow || ops < minOps {
		if err := fn(); err != nil {
			return 0, 0, err
		}
		ops++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), ops, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	kernels := flag.String("kernels", "gemm,2mm,atax,jacobi-2d,cholesky,floyd-warshall",
		"comma-separated Fig3 kernels")
	n := flag.Int("n", 32, "kernel problem size")
	warmup := flag.Int("warmup", 2, "warmup iterations per point")
	minOps := flag.Int("minops", 5, "minimum timed iterations per point")
	window := flag.Duration("window", 300*time.Millisecond, "minimum measurement window per point")
	flag.Parse()

	snap := Snapshot{
		Schema: "twine-bench-snapshot/1",
		Config: map[string]any{
			"kernel_n":        *n,
			"warmup":          *warmup,
			"min_ops":         *minOps,
			"window_ms":       window.Milliseconds(),
			"epc_usable_mib":  16,
			"transit_cost_ns": 1700,
		},
		Notes: map[string]string{
			"fig3": "PolyBench kernels, ns/op per full kernel run (incl. checksum)",
		},
	}

	for _, name := range strings.Split(*kernels, ",") {
		name = strings.TrimSpace(name)
		k, ok := polybench.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsnap: unknown kernel %q\n", name)
			os.Exit(1)
		}

		// native
		nsNative, ops, err := measure(func() error {
			polybench.RunNative(k, *n)
			return nil
		}, *warmup, *minOps, *window)
		die(name+"/native", err)
		snap.Results = append(snap.Results, Result{"fig3/" + name + "/native", nsNative, ops})

		// wamr: plain AoT Wasm, no enclave
		bin := k.Build(*n)
		mod, err := wasm.Decode(bin)
		die(name+"/wamr decode", err)
		c, err := wasm.Compile(mod)
		die(name+"/wamr compile", err)
		imp := wasm.NewImportObject()
		polybench.MathImports(imp)
		in, err := wasm.Instantiate(c, imp, wasm.Config{Engine: wasm.EngineAOT})
		die(name+"/wamr instantiate", err)
		nsWamr, ops, err := measure(func() error {
			_, err := in.Invoke("run")
			return err
		}, *warmup, *minOps, *window)
		die(name+"/wamr", err)
		snap.Results = append(snap.Results, Result{"fig3/" + name + "/wamr", nsWamr, ops})

		// twine: the same module inside the enclave
		rt, err := core.NewRuntime(core.Config{PlatformSeed: "benchsnap", SGX: benchSGX()})
		die(name+"/twine runtime", err)
		tmod, err := rt.LoadModule(bin)
		die(name+"/twine load", err)
		inst, err := rt.NewInstance(tmod)
		die(name+"/twine instantiate", err)
		nsTwine, ops, err := measure(func() error {
			_, err := inst.Invoke("run")
			return err
		}, *warmup, *minOps, *window)
		die(name+"/twine", err)
		snap.Results = append(snap.Results, Result{"fig3/" + name + "/twine", nsTwine, ops})

		fmt.Fprintf(os.Stderr, "%-16s native %10.0f ns  wamr %12.0f ns  twine %12.0f ns  (twine/wamr %.2fx)\n",
			name, nsNative, nsWamr, nsTwine, nsTwine/nsWamr)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	die("marshal", err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	die("write", os.WriteFile(*out, enc, 0o644))
}

func die(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", what, err)
		os.Exit(1)
	}
}
