// Command profilefs regenerates the paper's Figure 7: the time breakdown
// of random reads over a Twine on-file database (SQLite inner work, other
// read operations, OCALLs, memory clearing), before and after the §V-F
// protected-file-system optimisations, plus the resulting speedups.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twine/internal/bench"
	"twine/internal/sgx"
)

func main() {
	records := flag.Int("records", 4000, "database records (paper: 175000)")
	reads := flag.Int("reads", 2000, "random reads to profile")
	flag.Parse()

	// The cache must be smaller than the database or random reads never
	// reach the protected FS (the paper uses 175k records vs an 8 MiB
	// cache; keep the same ratio).
	opt := bench.Options{SGX: sgx.DefaultConfig(), CachePages: *records / 4}
	if opt.CachePages < 64 {
		opt.CachePages = 64
	}
	opt.SGX.HeapSize = int64(*records)*bench.RecordBytes*3 + (128 << 20)

	fmt.Fprintln(os.Stderr, "profiling standard IPFS...")
	std, err := bench.RunBreakdown(*records, *reads, false, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profilefs:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "profiling optimized IPFS...")
	optm, err := bench.RunBreakdown(*records, *reads, true, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profilefs:", err)
		os.Exit(1)
	}

	fmt.Printf("Figure 7 — random-read breakdown (%d records, %d reads)\n", *records, *reads)
	print := func(name string, b bench.Breakdown) {
		pct := func(d time.Duration) float64 {
			if b.Total == 0 {
				return 0
			}
			return 100 * float64(d) / float64(b.Total)
		}
		fmt.Printf("%-10s total %10s | sqlite %5.1f%% | read-other %5.1f%% | crypto %5.1f%% | ocall %5.1f%% (switchless %5.1f%%) | memset %5.1f%%\n",
			name, b.Total, pct(b.SQLite), pct(b.ReadOther), pct(b.Crypto), pct(b.Boundary()), pct(b.Switchless), pct(b.Memset))
	}
	print("standard", std)
	print("optimized", optm)
	if optm.Total > 0 {
		fmt.Printf("random-read speedup (standard/optimized): %.2fx\n",
			float64(std.Total)/float64(optm.Total))
	}
}
