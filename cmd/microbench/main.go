// Command microbench regenerates the paper's Figure 5 (insertion,
// sequential and random reading against database size, with the EPC-full
// annotation) and Table II (run times normalised to native, split at the
// EPC limit). With -warmcold it instead prints the PR 8 instance-
// provisioning microbenchmark: the cost of readying one instance by full
// Instantiate, by InstantiateFromSnapshot, and by in-place
// ResetFromSnapshot (the serving pool's warm free-list hot path), plus
// the snapshot:reset ratio quoted in BENCHMARKS.md. With -sealsnap it
// prints the PR 9 seal+unseal round-trip cost against snapshot size —
// the swap tier's per-suspend price as the sealed delta grows.
//
// Usage:
//
//	microbench [-max records] [-step n] [-reads n] [-epc MiB] [-table2]
//	microbench -warmcold [-warmcold-pages n] [-warmcold-iters n]
//	microbench -sealsnap
package main

import (
	"flag"
	"fmt"
	"os"

	"twine/internal/bench"
	"twine/internal/sgx"
)

func main() {
	max := flag.Int("max", 20000, "maximum records (paper: 175000)")
	step := flag.Int("step", 2000, "records per batch (paper: 1000)")
	reads := flag.Int("reads", 300, "random reads per point")
	epcMiB := flag.Int("epc", 24, "usable EPC in MiB (paper testbed: 93)")
	table2 := flag.Bool("table2", false, "print Table II instead of the Figure 5 series")
	warmCold := flag.Bool("warmcold", false, "print the PR 8 warm-vs-cold instance-provisioning micro instead")
	wcPages := flag.Int("warmcold-pages", 16, "warm-vs-cold guest memory pages")
	wcIters := flag.Int("warmcold-iters", 100, "warm-vs-cold iterations per strategy")
	sealSnap := flag.Bool("sealsnap", false, "print the PR 9 seal+unseal round-trip cost vs snapshot size instead")
	flag.Parse()

	if *sealSnap {
		pts, err := bench.RunSealSnap(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: sealsnap: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Seal/unseal round trip vs snapshot size (mean ns/op)")
		fmt.Printf("%-12s %14s %14s %12s\n", "size", "seal-ns", "unseal-ns", "seal-MB/s")
		for _, p := range pts {
			fmt.Printf("%-12s %14.0f %14.0f %12.1f\n",
				fmt.Sprintf("%dKiB", p.Size>>10), p.SealNs, p.UnsealNs, p.MBPerSec)
		}
		return
	}

	if *warmCold {
		wc, err := bench.RunWarmCold(*wcPages, *wcIters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: warmcold: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Instance provisioning (%d pages, %d iters, mean ns/op)\n", *wcPages, *wcIters)
		fmt.Printf("%-24s %12.0f\n", "full-instantiate", wc.FullNs)
		fmt.Printf("%-24s %12.0f\n", "snapshot-instantiate", wc.SnapshotNs)
		fmt.Printf("%-24s %12.0f\n", "warm-reset", wc.ResetNs)
		fmt.Printf("warm reset is %.1fx cheaper than snapshot instantiation\n", wc.ColdWarmRatio())
		return
	}

	cfg := bench.MicroConfig{MaxRecords: *max, Step: *step, RandReads: *reads}
	cfg.Options.SGX = sgx.DefaultConfig()
	cfg.Options.SGX.EPCSize = int64(*epcMiB+8) << 20
	cfg.Options.SGX.EPCUsable = int64(*epcMiB) << 20
	cfg.Options.SGX.HeapSize = int64(*max)*bench.RecordBytes*3 + (256 << 20)
	cfg.Options.ImageBlocks = (*max*bench.RecordBytes*2)/4096 + 8192

	epcRecords := bench.EPCRecordEstimate(cfg.Options.SGX)
	fmt.Printf("EPC limit ≈ %d records (usable EPC %d MiB)\n", epcRecords, *epcMiB)

	series := map[bench.Variant]map[bench.Storage]bench.Series{}
	var flat []bench.Series
	for _, v := range []bench.Variant{bench.Native, bench.WAMR, bench.Twine, bench.SGXLKL} {
		series[v] = map[bench.Storage]bench.Series{}
		for _, s := range []bench.Storage{bench.Mem, bench.File} {
			fmt.Fprintf(os.Stderr, "sweeping %v/%v...\n", v, s)
			sr, err := bench.RunMicro(v, s, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "microbench: %v/%v: %v\n", v, s, err)
				os.Exit(1)
			}
			series[v][s] = sr
			flat = append(flat, sr)
		}
	}

	if *table2 {
		fmt.Println("Table II — normalised run time (native = 1)")
		fmt.Printf("%-10s %-5s %12s %12s %12s %12s %10s\n",
			"op", "store", "lkl<EPC", "lkl>EPC", "twine<EPC", "twine>EPC", "wamr")
		for _, s := range []bench.Storage{bench.Mem, bench.File} {
			byVariant := map[bench.Variant]bench.Series{}
			for v := range series {
				byVariant[v] = series[v][s]
			}
			for _, row := range bench.Table2(byVariant, s, epcRecords) {
				fmt.Printf("%-10s %-5s %12.1f %12.1f %12.1f %12.1f %10.1f\n",
					row.Op, row.Storage, row.SGXLKLBelow, row.SGXLKLAbove,
					row.TwineBelow, row.TwineAbove, row.WAMRAll)
			}
		}
		return
	}

	fmt.Println("Figure 5 — micro-benchmark series")
	bench.WriteSeries(os.Stdout, flat)
}
