// Command polybench regenerates the paper's Figure 3: the 30 PolyBench/C
// kernels executed natively, as WebAssembly (the WAMR configuration), and
// as WebAssembly inside the TWINE enclave, reported as run time normalised
// to native.
//
// Usage:
//
//	polybench [-n size] [-kernels a,b,c] [-memsweep kernel] [-engine aot|reg|super|interp]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twine/internal/core"
	"twine/internal/polybench"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

func main() {
	n := flag.Int("n", 48, "problem size per kernel")
	names := flag.String("kernels", "", "comma-separated kernel subset (default: all 30)")
	memsweep := flag.String("memsweep", "", "report the memory floor sweep for one kernel (paper §V-B)")
	engineName := flag.String("engine", "aot", "Wasm execution tier: aot (fused, default), reg (PR 4 register IR), super (PR 7 superblock traces), interp")
	flag.Parse()

	var engine wasm.Engine
	switch *engineName {
	case "aot":
		engine = wasm.EngineAOT
	case "reg":
		engine = wasm.EngineRegister
	case "super":
		engine = wasm.EngineSuperblock
	case "interp":
		engine = wasm.EngineInterp
	default:
		fmt.Fprintf(os.Stderr, "polybench: unknown engine %q\n", *engineName)
		os.Exit(1)
	}

	if *memsweep != "" {
		if err := runMemSweep(*memsweep, *n); err != nil {
			fmt.Fprintln(os.Stderr, "polybench:", err)
			os.Exit(1)
		}
		return
	}

	kernels := polybench.All()
	if *names != "" {
		var subset []polybench.Kernel
		for _, name := range strings.Split(*names, ",") {
			k, ok := polybench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "polybench: unknown kernel %q\n", name)
				os.Exit(1)
			}
			subset = append(subset, k)
		}
		kernels = subset
	}

	cfg := core.Config{PlatformSeed: "fig3", SGX: sgx.DefaultConfig(), Engine: engine}
	cfg.SGX.ReservedSize = 64 << 20
	cfg.SGX.HeapSize = 512 << 20

	fmt.Printf("Figure 3 — PolyBench/C, run time normalised to native (n=%d, engine=%v)\n", *n, engine)
	fmt.Printf("%-16s %12s %10s %10s\n", "kernel", "native", "wamr", "twine")
	for _, k := range kernels {
		sumN, tn := polybench.RunNative(k, *n)
		sumW, tw, err := polybench.RunWasm(k, *n, engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: %s (wamr): %v\n", k.Name, err)
			os.Exit(1)
		}
		sumT, tt, err := polybench.RunTwine(k, *n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: %s (twine): %v\n", k.Name, err)
			os.Exit(1)
		}
		if !close(sumN, sumW) || !close(sumN, sumT) {
			fmt.Fprintf(os.Stderr, "polybench: %s: checksum divergence (%v / %v / %v)\n",
				k.Name, sumN, sumW, sumT)
			os.Exit(1)
		}
		fmt.Printf("%-16s %12s %9.2fx %9.2fx\n",
			k.Name, tn, float64(tw)/float64(tn), float64(tt)/float64(tn))
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := a
	if s < 0 {
		s = -s
	}
	return d <= 1e-9*(s+1)
}

// runMemSweep shrinks the runtime memory cap until the kernel no longer
// instantiates, reproducing the paper's §V-B memory analysis.
func runMemSweep(name string, n int) error {
	k, ok := polybench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown kernel %q", name)
	}
	floor, err := polybench.MinMemoryPages(k, n)
	if err != nil {
		return err
	}
	fmt.Printf("§V-B memory sweep — %s (n=%d), floor %d pages (%d KiB)\n",
		name, n, floor, floor*64)
	for pages := floor + 8; ; pages -= 2 {
		bin := k.Build(n)
		mod, err := wasm.Decode(bin)
		if err != nil {
			return err
		}
		c, err := wasm.Compile(mod)
		if err != nil {
			return err
		}
		imp := wasm.NewImportObject()
		polybench.MathImports(imp)
		_, err = wasm.Instantiate(c, imp, wasm.Config{MaxMemoryPages: pages})
		status := "ok"
		if err != nil {
			status = "allocation failed"
		}
		fmt.Printf("  cap %4d pages (%5d KiB): %s\n", pages, pages*64, status)
		if err != nil || pages <= 2 {
			return nil
		}
	}
}
