// Command twine-run executes a WebAssembly (WASI) module inside a TWINE
// enclave, the reproduction's equivalent of the paper's runtime binary:
// stdout/stderr leave the enclave through OCALLs, file operations are
// served by the Intel protected file system under -dir, and -strict
// applies the DisableUntrustedPOSIX build flag (§IV-C).
//
// Usage:
//
//	twine-run [-dir data] [-strict] [-host-posix] module.wasm [args...]
package main

import (
	"flag"
	"fmt"
	"os"

	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/sgx"
)

func main() {
	dir := flag.String("dir", "", "host directory preopened for the guest as '/' (default: in-memory)")
	strict := flag.Bool("strict", false, "disable the untrusted POSIX layer (§IV-C)")
	hostPosix := flag.Bool("host-posix", false, "route files to untrusted POSIX instead of the protected FS")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: twine-run [flags] module.wasm [args...]")
		os.Exit(2)
	}
	wasmBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "twine-run:", err)
		os.Exit(1)
	}

	var host hostfs.FS = hostfs.NewMemFS()
	if *dir != "" {
		host, err = hostfs.NewDirFS(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twine-run:", err)
			os.Exit(1)
		}
	}
	fsKind := core.FSIPFS
	if *hostPosix {
		fsKind = core.FSHost
	}
	rt, err := core.NewRuntime(core.Config{
		PlatformSeed:          "twine-run",
		SGX:                   sgx.DefaultConfig(),
		FS:                    fsKind,
		DisableUntrustedPOSIX: *strict,
		HostFS:                host,
		Args:                  flag.Args(),
		Stdin:                 os.Stdin,
		Stdout:                os.Stdout,
		Stderr:                os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "twine-run:", err)
		os.Exit(1)
	}
	mod, err := rt.LoadModule(wasmBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twine-run:", err)
		os.Exit(1)
	}
	inst, err := rt.NewInstance(mod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twine-run:", err)
		os.Exit(1)
	}
	code, err := inst.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twine-run:", err)
		os.Exit(1)
	}
	st := rt.Enclave.Stats()
	fmt.Fprintf(os.Stderr, "twine-run: exit %d (ecalls %d, ocalls %d, page faults %d)\n",
		code, st.ECalls, st.OCalls, st.PageFaults)
	os.Exit(int(code))
}
