// Command tsqlsh is an interactive shell over the sharded sealed-SQL
// serving tier: every statement is routed through a tsql.Service, so a
// session exercises the same front door the benchmarks measure — hash
// partitioning, snapshot-replica reads and group-committed writes.
//
//	tsqlsh -shards 4 -route orders.cust
//	tsql> CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amt REAL)
//	ok (1 shard write)
//	tsql> .ingest orders.csv orders
//	ingested 1200 rows into orders
//	tsql> SELECT cust, COUNT(*) FROM orders GROUP BY cust ORDER BY cust
//
// Meta commands: .ingest <file.csv> <table> loads a CSV (header row names
// the columns; column types are sniffed), .stats prints the routing
// counters, .quit exits. Without -dir the database lives in memory for
// the session; with it, the sealed shard files persist on disk.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"twine"
	"twine/internal/hostfs"
	"twine/tsql"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsqlsh: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		dbPath   = flag.String("db", "trusted.db", "database file name (shard i stores <db>.s<i>)")
		dir      = flag.String("dir", "", "host directory for the sealed files (default: in-memory)")
		shards   = flag.Int("shards", 1, "number of hash partitions")
		replicas = flag.Int("replicas", 1, "serving handles per shard")
		route    = flag.String("route", "", "routing column as table.column (required for -shards > 1)")
		seed     = flag.String("seed", "", "platform seed (sealing identity)")
		eval     = flag.String("e", "", "run these semicolon-separated statements and exit")
	)
	flag.Parse()

	cfg := tsql.ShardConfig{
		Base:     tsql.Config{Path: *dbPath, PlatformSeed: *seed},
		Shards:   *shards,
		Replicas: *replicas,
	}
	if *route != "" {
		tbl, col, ok := strings.Cut(*route, ".")
		if !ok {
			die("-route wants table.column, got %q", *route)
		}
		cfg.RouteTable, cfg.RouteColumn = tbl, col
	}
	if *dir != "" {
		fs, err := twine.NewDirHostFS(*dir)
		if err != nil {
			die("%v", err)
		}
		cfg.Base.HostFS = fs
	} else {
		cfg.Base.HostFS = hostfs.NewMemFS()
	}
	svc, err := tsql.OpenService(cfg)
	if err != nil {
		die("%v", err)
	}
	defer svc.Close()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *eval != "" {
		if err := dispatch(out, svc, *eval); err != nil {
			out.Flush()
			die("%v", err)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "tsql> ")
		out.Flush()
		if !in.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".stats":
			fmt.Fprintf(out, "%+v\n", svc.Stats())
		case line == ".help":
			fmt.Fprintln(out, "meta: .ingest <file.csv> <table>  .stats  .quit")
		case strings.HasPrefix(line, ".ingest"):
			fs := strings.Fields(line)
			if len(fs) != 3 {
				fmt.Fprintln(out, "usage: .ingest <file.csv> <table>")
				continue
			}
			n, err := ingestCSV(svc, fs[1], fs[2])
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "ingested %d rows into %s\n", n, fs[2])
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(out, "unknown meta command %q (.help)\n", line)
		default:
			if err := dispatch(out, svc, line); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
	}
}

// dispatch runs SQL: SELECT/PRAGMA through the read tier with a printed
// table, everything else through the write tier.
func dispatch(out io.Writer, svc *tsql.Service, sql string) error {
	head := strings.ToUpper(strings.Fields(sql)[0])
	if head == "SELECT" || head == "PRAGMA" {
		rows, err := svc.Query(sql)
		if err != nil {
			return err
		}
		printRows(out, rows)
		return nil
	}
	n, err := svc.Exec(sql)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ok, %d rows\n", n)
	return nil
}

func printRows(out io.Writer, rows *tsql.Rows) {
	fmt.Fprintln(out, strings.Join(rows.Cols, " | "))
	n := 0
	for rows.Next() {
		cells := make([]string, len(rows.Row()))
		for i, v := range rows.Row() {
			cells[i] = v.Text()
		}
		fmt.Fprintln(out, strings.Join(cells, " | "))
		n++
	}
	fmt.Fprintf(out, "(%d rows)\n", n)
}

// ingestCSV loads a CSV whose header names the columns: types are
// sniffed from the data, the table is created if missing, and rows go in
// as batched multi-row INSERTs so the router splits each batch across
// the shards in one group commit per partition.
func ingestCSV(svc *tsql.Service, path, table string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return 0, err
	}
	if len(recs) < 2 {
		return 0, fmt.Errorf("%s: need a header row and at least one data row", path)
	}
	header, data := recs[0], recs[1:]

	types := sniffTypes(header, data)
	var defs []string
	for i, col := range header {
		defs = append(defs, fmt.Sprintf("%s %s", col, types[i]))
	}
	ddl := fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (%s)", table, strings.Join(defs, ", "))
	if _, err := svc.Exec(ddl); err != nil {
		return 0, err
	}

	const batch = 64
	var total int64
	for at := 0; at < len(data); at += batch {
		end := at + batch
		if end > len(data) {
			end = len(data)
		}
		var (
			tuples []string
			args   []tsql.Value
		)
		for _, rec := range data[at:end] {
			if len(rec) != len(header) {
				return total, fmt.Errorf("%s: row has %d fields, header has %d", path, len(rec), len(header))
			}
			marks := make([]string, len(rec))
			for i, cell := range rec {
				marks[i] = "?"
				args = append(args, cellValue(cell, types[i]))
			}
			tuples = append(tuples, "("+strings.Join(marks, ", ")+")")
		}
		ins := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s",
			table, strings.Join(header, ", "), strings.Join(tuples, ", "))
		n, err := svc.Exec(ins, args...)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// sniffTypes picks INTEGER/REAL/TEXT per column from the data rows.
func sniffTypes(header []string, data [][]string) []string {
	types := make([]string, len(header))
	for i := range header {
		isInt, isReal := true, true
		for _, rec := range data {
			if i >= len(rec) || rec[i] == "" {
				continue
			}
			if _, err := strconv.ParseInt(rec[i], 10, 64); err != nil {
				isInt = false
			}
			if _, err := strconv.ParseFloat(rec[i], 64); err != nil {
				isReal = false
			}
		}
		switch {
		case isInt:
			types[i] = "INTEGER"
		case isReal:
			types[i] = "REAL"
		default:
			types[i] = "TEXT"
		}
	}
	return types
}

func cellValue(cell, typ string) tsql.Value {
	switch typ {
	case "INTEGER":
		if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
			return tsql.Int(n)
		}
	case "REAL":
		if f, err := strconv.ParseFloat(cell, 64); err == nil {
			return tsql.Real(f)
		}
	}
	return tsql.Text(cell)
}
