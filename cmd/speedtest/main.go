// Command speedtest regenerates the paper's Figure 4: SQLite's Speedtest1
// suite across the Native / WAMR / Twine / SGX-LKL variants, in-memory and
// on-file, normalised to native in-memory.
//
// Usage:
//
//	speedtest [-scale n] [-variants native,wamr,twine,sgx-lkl]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"twine/internal/bench"
	"twine/internal/sgx"
)

func main() {
	scale := flag.Int("scale", 60, "workload scale (100 = ~250-row base tests)")
	variants := flag.String("variants", "native,wamr,twine,sgx-lkl", "variants to run")
	flag.Parse()

	want := map[string]bench.Variant{
		"native": bench.Native, "wamr": bench.WAMR,
		"twine": bench.Twine, "sgx-lkl": bench.SGXLKL,
	}
	var run []bench.Variant
	for _, name := range strings.Split(*variants, ",") {
		v, ok := want[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "speedtest: unknown variant %q\n", name)
			os.Exit(1)
		}
		run = append(run, v)
	}

	opt := bench.Options{SGX: sgx.DefaultConfig(), ImageBlocks: 24 << 10}
	opt.SGX.HeapSize = 512 << 20

	// Warm the Go runtime (allocator, code paths) so the first variant is
	// not penalised relative to later ones.
	fmt.Fprintln(os.Stderr, "warmup...")
	if _, err := bench.RunSpeedtest(bench.Native, bench.Mem, *scale, opt); err != nil {
		fmt.Fprintln(os.Stderr, "speedtest: warmup:", err)
		os.Exit(1)
	}

	type key struct {
		v bench.Variant
		s bench.Storage
	}
	results := map[key][]bench.SpeedtestResult{}
	for _, v := range run {
		for _, s := range []bench.Storage{bench.Mem, bench.File} {
			fmt.Fprintf(os.Stderr, "running %v/%v...\n", v, s)
			res, err := bench.RunSpeedtest(v, s, *scale, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "speedtest: %v/%v: %v\n", v, s, err)
				os.Exit(1)
			}
			results[key{v, s}] = res
		}
	}

	base := map[int]time.Duration{}
	for _, r := range results[key{bench.Native, bench.Mem}] {
		base[r.TestID] = r.Elapsed
	}

	fmt.Printf("Figure 4 — Speedtest1, normalised to native in-memory (scale=%d)\n", *scale)
	header := fmt.Sprintf("%-5s", "test")
	for _, v := range run {
		header += fmt.Sprintf(" %9s-m %9s-f", v, v)
	}
	fmt.Println(header)
	for _, r0 := range results[key{run[0], bench.Mem}] {
		if r0.Setup {
			continue
		}
		line := fmt.Sprintf("%-5d", r0.TestID)
		for _, v := range run {
			for _, s := range []bench.Storage{bench.Mem, bench.File} {
				var elapsed time.Duration
				for _, r := range results[key{v, s}] {
					if r.TestID == r0.TestID {
						elapsed = r.Elapsed
					}
				}
				b := base[r0.TestID]
				if b == 0 {
					b = 1
				}
				line += fmt.Sprintf(" %10.2fx", float64(elapsed)/float64(b))
			}
		}
		fmt.Println(line)
	}
}
