// Command sgxmode regenerates the paper's Figure 6: the SGX variants with
// an on-file database compared between hardware mode (memory protection
// enabled) and software/simulation mode, normalised to Twine hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twine/internal/bench"
	"twine/internal/sgx"
)

func main() {
	max := flag.Int("max", 8000, "records")
	step := flag.Int("step", 2000, "batch size")
	reads := flag.Int("reads", 300, "random reads per point")
	flag.Parse()

	run := func(v bench.Variant, mode sgx.Mode) (bench.Series, error) {
		cfg := bench.MicroConfig{MaxRecords: *max, Step: *step, RandReads: *reads}
		cfg.Options.SGX = sgx.DefaultConfig()
		cfg.Options.SGX.HeapSize = int64(*max)*bench.RecordBytes*3 + (128 << 20)
		cfg.Options.SGXMode = mode
		cfg.Options.ImageBlocks = (*max*bench.RecordBytes*2)/4096 + 8192
		return bench.RunMicro(v, bench.File, cfg)
	}

	type res struct {
		insert, seq, rand time.Duration
	}
	totals := func(s bench.Series) res {
		var r res
		for _, p := range s.Points {
			r.insert += p.Insert
			r.seq += p.SeqRead
			r.rand += p.RandRead
		}
		return r
	}

	var twineHW res
	fmt.Println("Figure 6 — in-file database, HW vs SW SGX mode (normalised to Twine HW)")
	fmt.Printf("%-14s %10s %10s %10s\n", "variant", "insert", "seq-read", "rand-read")
	for _, tc := range []struct {
		name string
		v    bench.Variant
		m    sgx.Mode
	}{
		{"twine-hw", bench.Twine, sgx.ModeHardware},
		{"twine-sw", bench.Twine, sgx.ModeSimulation},
		{"sgx-lkl-hw", bench.SGXLKL, sgx.ModeHardware},
		{"sgx-lkl-sw", bench.SGXLKL, sgx.ModeSimulation},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", tc.name)
		s, err := run(tc.v, tc.m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgxmode: %s: %v\n", tc.name, err)
			os.Exit(1)
		}
		r := totals(s)
		if tc.name == "twine-hw" {
			twineHW = r
		}
		norm := func(x, base time.Duration) float64 {
			if base == 0 {
				return 0
			}
			return float64(x) / float64(base)
		}
		fmt.Printf("%-14s %9.2fx %9.2fx %9.2fx\n", tc.name,
			norm(r.insert, twineHW.insert), norm(r.seq, twineHW.seq), norm(r.rand, twineHW.rand))
	}
}
