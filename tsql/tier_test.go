package tsql

import (
	"fmt"
	"testing"

	"twine/internal/sgx"
	"twine/internal/wasm"
)

// TestRegisterTierSmoke runs the trusted-database workload under the
// fused AoT tier and the PR 4 register tier and requires byte-identical
// query results — the tsql leg of the tier differential harness.
func TestRegisterTierSmoke(t *testing.T) {
	run := func(eng wasm.Engine) []string {
		cfg := sgx.TestConfig()
		cfg.HeapSize = 64 << 20
		db, err := Open(Config{
			Path:         "tier.db",
			PlatformSeed: "tier-smoke",
			CacheKiB:     256,
			SGX:          cfg,
			Engine:       eng,
		})
		if err != nil {
			t.Fatalf("%v: open: %v", eng, err)
		}
		defer db.Close()
		mustExec := func(sql string, args ...Value) {
			if _, err := db.Exec(sql, args...); err != nil {
				t.Fatalf("%v: %s: %v", eng, sql, err)
			}
		}
		mustExec(`CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER)`)
		mustExec(`BEGIN`)
		for i := 0; i < 50; i++ {
			mustExec(`INSERT INTO accounts (owner, balance) VALUES (?, ?)`,
				Text(fmt.Sprintf("acct-%02d", i)), Int(int64(i*13%97)))
		}
		mustExec(`COMMIT`)
		mustExec(`UPDATE accounts SET balance = balance + 5 WHERE id % 3 = 0`)

		var out []string
		for _, q := range []string{
			`SELECT COUNT(*), SUM(balance) FROM accounts`,
			`SELECT owner, balance FROM accounts WHERE balance > 50 ORDER BY balance DESC, owner`,
			`SELECT MIN(balance), MAX(balance) FROM accounts WHERE id <= 25`,
		} {
			rows, err := db.Query(q)
			if err != nil {
				t.Fatalf("%v: %s: %v", eng, q, err)
			}
			for _, row := range rows.All() {
				out = append(out, fmt.Sprint(row))
			}
		}
		return out
	}

	aot := run(wasm.EngineAOT)
	reg := run(wasm.EngineRegister)
	if len(aot) != len(reg) {
		t.Fatalf("row counts differ: aot=%d reg=%d", len(aot), len(reg))
	}
	for i := range aot {
		if aot[i] != reg[i] {
			t.Errorf("row %d differs:\n  aot: %s\n  reg: %s", i, aot[i], reg[i])
		}
	}
}
