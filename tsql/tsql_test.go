package tsql_test

import (
	"bytes"
	"testing"

	"twine/internal/hostfs"
	"twine/tsql"
)

func smallCfg(mutate ...func(*tsql.Config)) tsql.Config {
	cfg := tsql.Config{PlatformSeed: "tsql-test"}
	cfg.SGX.Mode = 0
	cfg.SGX.EPCSize = 16 << 20
	cfg.SGX.EPCUsable = 12 << 20
	cfg.SGX.HeapSize = 96 << 20
	cfg.SGX.ReservedSize = 4 << 20
	cfg.CacheKiB = 256
	for _, m := range mutate {
		m(&cfg)
	}
	return cfg
}

func TestTrustedDatabaseEndToEnd(t *testing.T) {
	host := hostfs.NewMemFS()
	db, err := tsql.Open(smallCfg(func(c *tsql.Config) { c.HostFS = host; c.Path = "bank.db" }))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER)`); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(`INSERT INTO accounts (owner, balance) VALUES (?, ?)`,
			tsql.Text("CONFIDENTIAL-OWNER"), tsql.Int(int64(100+i))); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	row, err := db.QueryRow(`SELECT COUNT(*), SUM(balance) FROM accounts`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if row[0].Int() != 20 || row[1].Int() != 2190 {
		t.Errorf("row = %v", row)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The host only ever sees ciphertext.
	raw, err := host.OpenFile("bank.db", hostfs.ORead)
	if err != nil {
		t.Fatalf("host open: %v", err)
	}
	defer raw.Close()
	info, _ := raw.Stat()
	disk := make([]byte, info.Size)
	raw.ReadAt(disk, 0)
	if bytes.Contains(disk, []byte("CONFIDENTIAL-OWNER")) {
		t.Fatal("plaintext on untrusted host")
	}

	// Same platform reopens; the data is intact.
	db2, err := tsql.Open(smallCfg(func(c *tsql.Config) { c.HostFS = host; c.Path = "bank.db" }))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	row, err = db2.QueryRow(`SELECT COUNT(*) FROM accounts`)
	if err != nil || row[0].Int() != 20 {
		t.Fatalf("reopened count = %v, %v", row, err)
	}
}

func TestForeignPlatformCannotOpen(t *testing.T) {
	host := hostfs.NewMemFS()
	db, err := tsql.Open(smallCfg(func(c *tsql.Config) { c.HostFS = host; c.Path = "sealed.db" }))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.Exec(`CREATE TABLE t (x INTEGER)`)
	db.Close()

	_, err = tsql.Open(smallCfg(func(c *tsql.Config) {
		c.HostFS = host
		c.Path = "sealed.db"
		c.PlatformSeed = "a-different-cpu"
	}))
	if err == nil {
		t.Fatal("database sealed on one platform opened on another")
	}
}

func TestInMemoryDatabase(t *testing.T) {
	db, err := tsql.Open(smallCfg(func(c *tsql.Config) { c.Path = ":memory:" }))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.Exec(`CREATE TABLE t (v REAL)`)
	db.Exec(`INSERT INTO t VALUES (1.5), (2.5)`)
	row, err := db.QueryRow(`SELECT AVG(v) FROM t`)
	if err != nil || row[0].Real() != 2.0 {
		t.Errorf("avg = %v, %v", row, err)
	}
}

func TestStandardIPFSMode(t *testing.T) {
	db, err := tsql.Open(smallCfg(func(c *tsql.Config) { c.StandardIPFS = true }))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatalf("exec: %v", err)
	}
	row, err := db.QueryRow(`SELECT x FROM t`)
	if err != nil || row[0].Int() != 1 {
		t.Errorf("row = %v, %v", row, err)
	}
}
