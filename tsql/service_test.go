package tsql

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/litedb"
)

// svcCfg is the small shard geometry the service tests run on (the PR 3
// replica geometry, renamed path so shard suffixes read naturally).
func svcCfg(host hostfs.FS, seed string) Config {
	cfg := replicaCfg(host, seed)
	cfg.Path = "svc.db"
	return cfg
}

// fidOp is one step of the fidelity script: an Exec or a Query, run
// identically against the sequential DB and the degraded service.
type fidOp struct {
	query bool
	sql   string
	args  []Value
}

// TestServiceFidelitySequential is the ISSUE's fidelity bar: a service
// with Shards=1, Replicas=1 and NoGroupCommit=true must be bit-identical
// to a sequential DB — same results, same error strings, and the same
// enclave counters (ECalls, OCalls, faults, evictions) for the same
// statement script.
func TestServiceFidelitySequential(t *testing.T) {
	const seed = "fidelity-platform"
	seq, err := Open(svcCfg(hostfs.NewMemFS(), seed))
	if err != nil {
		t.Fatalf("Open (sequential): %v", err)
	}
	svc, err := OpenService(ShardConfig{
		Base:          svcCfg(hostfs.NewMemFS(), seed),
		Shards:        1,
		Replicas:      1,
		NoGroupCommit: true,
	})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}

	script := []fidOp{
		{sql: `CREATE TABLE fid (id INTEGER PRIMARY KEY, v TEXT, n INTEGER)`},
		{sql: `INSERT INTO fid (id, v, n) VALUES (?, ?, ?)`, args: []Value{Int(1), Text("one"), Int(10)}},
		{sql: `INSERT INTO fid (id, v, n) VALUES (2, 'two', 20); INSERT INTO fid (id, v, n) VALUES (3, 'three', 30)`},
		// A failing statement: both sides must report the same trap.
		{sql: `INSERT INTO fid (id, v, n) VALUES (1, 'dup', 0)`},
		{query: true, sql: `SELECT id, v, n FROM fid ORDER BY id`},
		{query: true, sql: `SELECT COUNT(*), SUM(n), AVG(n), MIN(v), MAX(v) FROM fid`},
		{query: true, sql: `SELECT v FROM fid WHERE id = ?`, args: []Value{Int(2)}},
		{query: true, sql: `SELECT 1/0, n FROM fid WHERE id = 3`},
		{query: true, sql: `SELECT nosuch FROM fid`},
		{query: true, sql: `PRAGMA page_count`},
		{sql: `UPDATE fid SET n = n + 5 WHERE id = 3`},
		{sql: `DELETE FROM fid WHERE id = 2`},
		{query: true, sql: `SELECT id, n FROM fid ORDER BY id`},
	}

	for i, op := range script {
		if op.query {
			ra, ea := seq.Query(op.sql, op.args...)
			rb, eb := svc.Query(op.sql, op.args...)
			if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
				t.Fatalf("op %d %q: sequential err %v, service err %v", i, op.sql, ea, eb)
			}
			if ea == nil {
				if !reflect.DeepEqual(ra.Cols, rb.Cols) || !reflect.DeepEqual(ra.All(), rb.All()) {
					t.Fatalf("op %d %q: sequential %v %v, service %v %v",
						i, op.sql, ra.Cols, ra.All(), rb.Cols, rb.All())
				}
			}
		} else {
			na, ea := seq.Exec(op.sql, op.args...)
			nb, eb := svc.Exec(op.sql, op.args...)
			if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
				t.Fatalf("op %d %q: sequential err %v, service err %v", i, op.sql, ea, eb)
			}
			if na != nb {
				t.Fatalf("op %d %q: sequential affected %d, service %d", i, op.sql, na, nb)
			}
		}
	}

	// Bit-identical enclave accounting, live and after close.
	rtA, rtB := seq.Runtime(), svc.Shard(0).Runtime()
	if a, b := rtA.Enclave.Stats(), rtB.Enclave.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("live enclave stats diverge:\n sequential %+v\n service    %+v", a, b)
	}
	if err := seq.Close(); err != nil {
		t.Fatalf("Close (sequential): %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close (service): %v", err)
	}
	if a, b := rtA.Enclave.Stats(), rtB.Enclave.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("post-close enclave stats diverge:\n sequential %+v\n service    %+v", a, b)
	}
}

// --- cross-shard equality ---

// sortedRecords renders a row set order-insensitively comparable.
func sortedRecords(rows [][]Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%x", litedb.EncodeRecord(nil, r))
	}
	sort.Strings(out)
	return out
}

// valuesApproxEqual compares rows exactly except for REAL columns, which
// may differ in last-bit rounding: cross-shard SUM/AVG re-associate
// floating-point additions.
func valuesApproxEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type() == litedb.Real && b[i].Type() == litedb.Real {
			x, y := a[i].Real(), b[i].Real()
			if x == y {
				continue
			}
			if math.Abs(x-y) > 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
				return false
			}
			continue
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// queryBoth runs one SELECT on the reference DB and the service, failing
// on any error.
func queryBoth(t *testing.T, ref *DB, svc *Service, q string, args ...Value) (*Rows, *Rows) {
	t.Helper()
	want, err := ref.Query(q, args...)
	if err != nil {
		t.Fatalf("reference %q: %v", q, err)
	}
	got, err := svc.Query(q, args...)
	if err != nil {
		t.Fatalf("service %q: %v", q, err)
	}
	if !reflect.DeepEqual(want.Cols, got.Cols) {
		t.Fatalf("%q: cols %v != %v", q, got.Cols, want.Cols)
	}
	return want, got
}

// execBoth runs one statement on both sides and checks the affected-row
// counts agree (the service sums disjoint shard counts).
func execBoth(t *testing.T, ref *DB, svc *Service, sql string, args ...Value) {
	t.Helper()
	wantN, err := ref.Exec(sql, args...)
	if err != nil {
		t.Fatalf("reference exec %q: %v", sql, err)
	}
	gotN, err := svc.Exec(sql, args...)
	if err != nil {
		t.Fatalf("service exec %q: %v", sql, err)
	}
	if wantN != gotN {
		t.Fatalf("exec %q: reference affected %d, service %d", sql, wantN, gotN)
	}
}

// TestServiceCrossShardEquality runs the same workload on a 4-shard
// service and an unsharded reference DB and demands order-insensitive
// result equality across every routing shape: point reads, fan-out
// scans, merged aggregates, split inserts and broadcast writes.
func TestServiceCrossShardEquality(t *testing.T) {
	const seed = "xshard-platform"
	ref, err := Open(svcCfg(hostfs.NewMemFS(), seed))
	if err != nil {
		t.Fatalf("Open (reference): %v", err)
	}
	defer ref.Close()
	svc, err := OpenService(ShardConfig{
		Base:        svcCfg(hostfs.NewMemFS(), seed),
		Shards:      4,
		Replicas:    1,
		RouteTable:  "orders",
		RouteColumn: "cust",
	})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	defer svc.Close()

	ddl := []string{
		`CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amt REAL, tag TEXT)`,
		`CREATE TABLE refdata (k INTEGER PRIMARY KEY, v TEXT)`,
	}
	for _, q := range ddl {
		execBoth(t, ref, svc, q)
	}

	// Routed multi-row INSERTs: the service splits each batch row-by-row
	// on the routing value.
	tags := []string{"ok", "hold", "ship", "void"}
	for base := 0; base < 120; base += 30 {
		var rows []string
		for i := base; i < base+30; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d, %d.25, '%s')", i+1, i%17, (i*37)%101, tags[i%len(tags)]))
		}
		execBoth(t, ref, svc, `INSERT INTO orders (id, cust, amt, tag) VALUES `+strings.Join(rows, ", "))
	}
	// A parameterised single-row routed insert.
	execBoth(t, ref, svc, `INSERT INTO orders (id, cust, amt, tag) VALUES (?, ?, ?, ?)`,
		Int(1000), Int(99), Real(3.5), Text("ok"))
	// Replicated (non-routed) table: broadcast writes.
	for k := 0; k < 10; k++ {
		execBoth(t, ref, svc, `INSERT INTO refdata (k, v) VALUES (?, ?)`, Int(int64(k)), Text(fmt.Sprintf("v%d", k)))
	}

	// The partitioner must actually spread the rows.
	st := svc.Stats()
	var total int64
	for i := 0; i < st.Shards; i++ {
		row, err := svc.Shard(i).QueryRow(`SELECT COUNT(*) FROM orders`)
		if err != nil {
			t.Fatalf("shard %d count: %v", i, err)
		}
		if row[0].Int() == 0 {
			t.Fatalf("shard %d holds no rows — partitioning is degenerate", i)
		}
		if row[0].Int() == 121 {
			t.Fatalf("shard %d holds every row — partitioning is degenerate", i)
		}
		total += row[0].Int()
	}
	if total != 121 {
		t.Fatalf("shards hold %d rows in total, want 121", total)
	}

	// Ordered queries: exact equality (unique sort keys break ties).
	exact := []struct {
		q    string
		args []Value
	}{
		{q: `SELECT id, amt FROM orders WHERE cust = 7 ORDER BY id`},                     // point read
		{q: `SELECT id, amt FROM orders WHERE cust = ? ORDER BY id`, args: []Value{Int(3)}}, // parameterised point read
		{q: `SELECT id, cust, amt, tag FROM orders ORDER BY id`},                         // full fan-out scan
		{q: `SELECT id, amt FROM orders ORDER BY amt DESC, id LIMIT 10`},                 // global top-k
		{q: `SELECT id FROM orders ORDER BY id LIMIT 15 OFFSET 30`},                      // offset window
		{q: `SELECT id, amt*2 AS twice FROM orders ORDER BY twice DESC, id LIMIT 5`},     // alias ordering
		{q: `SELECT cust, COUNT(*), SUM(id) FROM orders GROUP BY cust ORDER BY cust`},    // merged groups
		{q: `SELECT MIN(amt), MAX(amt), COUNT(*) FROM orders`},                           // global extrema
		{q: `SELECT k, v FROM refdata ORDER BY k`},                                       // replicated table
	}
	for _, c := range exact {
		want, got := queryBoth(t, ref, svc, c.q, c.args...)
		if !reflect.DeepEqual(want.All(), got.All()) {
			t.Fatalf("%q:\n service   %v\n reference %v", c.q, got.All(), want.All())
		}
	}

	// Unordered queries: order-insensitive row-set equality.
	unordered := []string{
		`SELECT id FROM orders WHERE amt > 50`,
		`SELECT DISTINCT tag FROM orders`,
		`SELECT id, cust FROM orders WHERE tag = 'ship'`,
	}
	for _, q := range unordered {
		want, got := queryBoth(t, ref, svc, q)
		if w, g := sortedRecords(want.All()), sortedRecords(got.All()); !reflect.DeepEqual(w, g) {
			t.Fatalf("%q (order-insensitive):\n service   %v\n reference %v", q, got.All(), want.All())
		}
	}

	// Floating-point aggregates: equal up to re-association of the adds.
	approx := []string{
		`SELECT COUNT(*), SUM(amt), AVG(amt), TOTAL(amt) FROM orders`,
		`SELECT tag, AVG(amt), SUM(amt) FROM orders GROUP BY tag ORDER BY tag`,
	}
	for _, q := range approx {
		want, got := queryBoth(t, ref, svc, q)
		w, g := want.All(), got.All()
		if len(w) != len(g) {
			t.Fatalf("%q: %d rows vs %d", q, len(g), len(w))
		}
		for i := range w {
			if !valuesApproxEqual(w[i], g[i]) {
				t.Fatalf("%q row %d: service %v, reference %v", q, i, g[i], w[i])
			}
		}
	}

	// Mutations: single-shard routed, broadcast with summed counts.
	execBoth(t, ref, svc, `UPDATE orders SET amt = amt + 1 WHERE cust = 3`)
	execBoth(t, ref, svc, `UPDATE orders SET tag = 'audit' WHERE amt > 90`) // broadcast update
	execBoth(t, ref, svc, `DELETE FROM orders WHERE id = 5`)                // broadcast delete, one shard hits
	execBoth(t, ref, svc, `DELETE FROM orders WHERE cust = 11 AND id > 60`) // routed delete
	want, got := queryBoth(t, ref, svc, `SELECT id, cust, amt, tag FROM orders ORDER BY id`)
	if !reflect.DeepEqual(want.All(), got.All()) {
		t.Fatalf("post-mutation scan diverged:\n service   %v\n reference %v", got.All(), want.All())
	}

	// Declined shapes fail loudly instead of answering wrongly.
	declined := []struct {
		sql  string
		want string
		exec bool
	}{
		{sql: `SELECT tag, COUNT(*) FROM orders GROUP BY tag HAVING COUNT(*) > 2`, want: "HAVING"},
		{sql: `SELECT SUM(amt)+1 FROM orders`, want: "bare result columns"},
		{sql: `SELECT *, COUNT(*) FROM orders`, want: "cannot use *"},
		{sql: `SELECT COUNT(*) FROM orders GROUP BY tag`, want: "grouping keys"},
		{sql: `SELECT id FROM orders ORDER BY amt`, want: "must name a result column"},
		{sql: `UPDATE orders SET cust = 1 WHERE id = 7`, want: "routing column", exec: true},
		{sql: `INSERT INTO orders SELECT * FROM orders`, want: "INSERT ... SELECT", exec: true},
		{sql: `BEGIN`, want: "transaction boundaries", exec: true},
	}
	for _, c := range declined {
		var err error
		if c.exec {
			_, err = svc.Exec(c.sql)
		} else {
			_, err = svc.Query(c.sql)
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: want error containing %q, got %v", c.sql, c.want, err)
		}
	}

	// Routing counters reflect what ran.
	st = svc.Stats()
	if st.FanOuts == 0 {
		t.Fatalf("no fan-outs recorded: %+v", st)
	}
	if st.Broadcasts == 0 {
		t.Fatalf("no broadcasts recorded: %+v", st)
	}
	var points int64
	for _, p := range st.PointReads {
		points += p
	}
	if points < 2 {
		t.Fatalf("point reads not routed single-shard: %+v", st)
	}
	if st.GroupCommits == 0 {
		t.Fatalf("group-commit queue never committed: %+v", st)
	}
}
