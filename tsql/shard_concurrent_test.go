package tsql

import (
	"fmt"
	"sync"
	"testing"

	"twine/internal/hostfs"
)

// TestServiceConcurrentShards is the PR 10 concurrency satellite: N client
// goroutines drive a 2-shard, 2-replica service with group commit ON,
// mixing writes with immediate point reads. Every write must be visible
// to the very next read from the same client (read-your-writes across
// the commit window), and the run must be clean under -race.
func TestServiceConcurrentShards(t *testing.T) {
	const (
		clients = 6
		opsEach = 20
	)
	svc, err := OpenService(ShardConfig{
		Base:        svcCfg(hostfs.NewMemFS(), "conc-platform"),
		Shards:      2,
		Replicas:    2,
		RouteTable:  "kv",
		RouteColumn: "k",
	})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	defer svc.Close()
	if _, err := svc.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, c INTEGER, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := int64(c*1000 + i) // disjoint key ranges per client
				v := fmt.Sprintf("c%d-%d", c, i)
				if _, err := svc.Exec(`INSERT INTO kv (k, c, v) VALUES (?, ?, ?)`,
					Int(key), Int(int64(c)), Text(v)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", c, key, err)
					return
				}
				// Read-your-writes: the insert group-committed before Exec
				// returned, so any replica must already serve it.
				row, err := svc.QueryRow(`SELECT v FROM kv WHERE k = ?`, Int(key))
				if err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", c, key, err)
					return
				}
				if row == nil || row[0].Text() != v {
					errs <- fmt.Errorf("client %d: wrote k=%d v=%q, read back %v", c, key, v, row)
					return
				}
				if i%5 == 4 {
					// Periodic cross-shard aggregate: this client's rows so
					// far must all be counted.
					row, err := svc.QueryRow(`SELECT COUNT(*) FROM kv WHERE c = ?`, Int(int64(c)))
					if err != nil {
						errs <- fmt.Errorf("client %d count: %w", c, err)
						return
					}
					if got := row[0].Int(); got < int64(i+1) {
						errs <- fmt.Errorf("client %d: %d rows written, fan-out count saw %d", c, i+1, got)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	row, err := svc.QueryRow(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatalf("final count: %v", err)
	}
	if got := row[0].Int(); got != clients*opsEach {
		t.Fatalf("final count %d, want %d", got, clients*opsEach)
	}

	st := svc.Stats()
	if st.GroupCommits == 0 || st.GroupedStmts < st.GroupCommits {
		t.Fatalf("group commit accounting is wrong: %+v", st)
	}
	if st.Writes != clients*opsEach+1 { // +1 for the CREATE TABLE
		t.Fatalf("write count %d, want %d: %+v", st.Writes, clients*opsEach+1, st)
	}
	if st.ReplicaRefreshes == 0 {
		t.Fatalf("replicas never refreshed from the sealed files: %+v", st)
	}
	t.Logf("stats: %+v", st)
}
