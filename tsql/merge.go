package tsql

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"twine/internal/litedb"
)

// Cross-shard SELECT: scatter to every shard, merge at the coordinator.
// Plain selects concatenate and re-sort; aggregate selects merge partial
// aggregates, with AVG rewritten per shard into TOTAL + COUNT so the
// coordinator can recombine exactly.

type fanKind int

const (
	fanKey fanKind = iota
	fanCount
	fanSum
	fanTotal
	fanMin
	fanMax
	fanConcat
	fanAvg
)

// fanPlan is the coordinator's merge plan for one cross-shard SELECT.
type fanPlan struct {
	agg      bool
	cols     []fanKind // per result column (agg mode only)
	names    []string
	nOrig    int // merged row width (before AVG's appended counts)
	nAvg     int
	orderIdx []int
	orderDsc []bool
	limit    int // -1 = none
	offset   int
	distinct bool
}

// exprHasAggregate walks an expression for aggregate calls.
func exprHasAggregate(e litedb.Expr) bool {
	switch x := e.(type) {
	case nil, *litedb.Literal, *litedb.Param, *litedb.ColRef:
		return false
	case *litedb.Unary:
		return exprHasAggregate(x.X)
	case *litedb.Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *litedb.Like:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Pattern)
	case *litedb.InList:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, it := range x.List {
			if exprHasAggregate(it) {
				return true
			}
		}
		return false
	case *litedb.Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *litedb.IsNull:
		return exprHasAggregate(x.X)
	case *litedb.Call:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
		return false
	case *litedb.CaseExpr:
		if exprHasAggregate(x.Operand) || exprHasAggregate(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Res) {
				return true
			}
		}
		return false
	case *litedb.Cast:
		return exprHasAggregate(x.X)
	default:
		return true // unknown node: be conservative, force the agg checks
	}
}

// tableColumns reads a table's declared columns off shard 0 (DDL is
// broadcast, so every shard agrees).
func (s *Service) tableColumns(name string) ([]string, bool) {
	sh := s.shards[0]
	sh.storageMu.RLock()
	defer sh.storageMu.RUnlock()
	return sh.writer.edb.DB.TableColumns(name)
}

// planFan builds the merge plan for one cross-shard SELECT.
func (s *Service) planFan(st *litedb.SelectStmt, args []Value) (*fanPlan, error) {
	pl := &fanPlan{limit: -1}

	// Result names (star expansion needs the schema) and column kinds.
	anyAgg := false
	for _, rc := range st.Cols {
		if rc.Star {
			for _, ref := range st.From {
				name := ref.Alias
				if name == "" {
					name = ref.Name
				}
				if rc.StarTable != "" && !strings.EqualFold(rc.StarTable, name) {
					continue
				}
				cols, ok := s.tableColumns(ref.Name)
				if !ok {
					return nil, fmt.Errorf("tsql: no such table: %s", ref.Name)
				}
				for _, c := range cols {
					pl.names = append(pl.names, c)
					pl.cols = append(pl.cols, fanKey)
				}
			}
			continue
		}
		name := rc.Alias
		if name == "" {
			if cr, ok := rc.Expr.(*litedb.ColRef); ok {
				name = cr.Col
			} else {
				name = fmt.Sprintf("col%d", len(pl.names)+1)
			}
		}
		pl.names = append(pl.names, name)
		if call, ok := rc.Expr.(*litedb.Call); ok && call.IsAggregate() {
			anyAgg = true
			switch call.Name {
			case "count":
				pl.cols = append(pl.cols, fanCount)
			case "sum":
				pl.cols = append(pl.cols, fanSum)
			case "total":
				pl.cols = append(pl.cols, fanTotal)
			case "min":
				pl.cols = append(pl.cols, fanMin)
			case "max":
				pl.cols = append(pl.cols, fanMax)
			case "group_concat":
				pl.cols = append(pl.cols, fanConcat)
			case "avg":
				pl.cols = append(pl.cols, fanAvg)
				pl.nAvg++
			}
			continue
		}
		if exprHasAggregate(rc.Expr) {
			return nil, fmt.Errorf("tsql: cross-shard aggregates must be bare result columns (got an expression over one)")
		}
		pl.cols = append(pl.cols, fanKey)
	}
	pl.nOrig = len(pl.names)
	pl.agg = anyAgg || len(st.GroupBy) > 0
	pl.distinct = st.Distinct

	if pl.agg {
		if st.Having != nil {
			return nil, fmt.Errorf("tsql: cross-shard HAVING is not supported; filter the merged result at the client")
		}
		if st.Distinct {
			return nil, fmt.Errorf("tsql: cross-shard SELECT DISTINCT with aggregates is not supported")
		}
		for _, rc := range st.Cols {
			if rc.Star {
				return nil, fmt.Errorf("tsql: cross-shard aggregate SELECT cannot use *")
			}
		}
		nKeys := 0
		for _, k := range pl.cols {
			if k == fanKey {
				nKeys++
			}
		}
		if nKeys != len(st.GroupBy) {
			return nil, fmt.Errorf("tsql: cross-shard GROUP BY must project exactly its grouping keys (%d keys projected, %d GROUP BY terms)", nKeys, len(st.GroupBy))
		}
	}

	// ORDER BY must name result columns: ordinal, alias or column name.
	for _, term := range st.OrderBy {
		idx := -1
		if lit, ok := term.Expr.(*litedb.Literal); ok && lit.Val.Type() == litedb.Integer {
			ord := int(lit.Val.Int())
			if ord < 1 || ord > pl.nOrig {
				return nil, fmt.Errorf("tsql: ORDER BY ordinal %d out of range", ord)
			}
			idx = ord - 1
		} else if cr, ok := term.Expr.(*litedb.ColRef); ok {
			for i, n := range pl.names {
				if strings.EqualFold(n, cr.Col) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("tsql: cross-shard ORDER BY must name a result column (alias or ordinal)")
		}
		pl.orderIdx = append(pl.orderIdx, idx)
		pl.orderDsc = append(pl.orderDsc, term.Desc)
	}

	// LIMIT/OFFSET are applied at the coordinator after the merge.
	if st.Limit != nil {
		lv, err := litedb.EvalConst(st.Limit, args)
		if err != nil {
			return nil, fmt.Errorf("tsql: cross-shard LIMIT must be constant: %w", err)
		}
		pl.limit = int(lv.Int())
	}
	if st.Offset != nil {
		ov, err := litedb.EvalConst(st.Offset, args)
		if err != nil {
			return nil, fmt.Errorf("tsql: cross-shard OFFSET must be constant: %w", err)
		}
		if pl.offset = int(ov.Int()); pl.offset < 0 {
			pl.offset = 0
		}
	}
	return pl, nil
}

// shardStmt re-parses the query for one shard (ASTs are never shared —
// binding mutates them) and rewrites it for partial execution: AVG
// becomes TOTAL plus an appended COUNT, coordinator-side ordering and
// windowing are stripped or widened.
func shardStmt(sql string, pl *fanPlan) (*litedb.SelectStmt, error) {
	stmts, err := litedb.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	st := stmts[0].(*litedb.SelectStmt)
	if pl.agg {
		for i, k := range pl.cols {
			if k != fanAvg {
				continue
			}
			call := st.Cols[i].Expr.(*litedb.Call)
			st.Cols[i].Expr = &litedb.Call{Name: "total", Args: call.Args}
			st.Cols = append(st.Cols, litedb.ResultCol{Expr: &litedb.Call{Name: "count", Args: call.Args}})
		}
		st.OrderBy, st.Limit, st.Offset = nil, nil, nil
		return st, nil
	}
	if pl.limit >= 0 {
		// Each shard needs the top limit+offset rows for a correct
		// global window.
		st.Limit = &litedb.Literal{Val: Int(int64(pl.limit + pl.offset))}
		st.Offset = nil
	}
	return st, nil
}

// fanout scatters a SELECT to every shard and merges the partial results.
func (s *Service) fanout(sql string, st *litedb.SelectStmt, args []Value) (*Rows, error) {
	pl, err := s.planFan(st, args)
	if err != nil {
		return nil, err
	}
	legs := make([]*Rows, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legs[i], errs[i] = s.readOn(i, func(db *DB) (*Rows, error) {
				sub, err := shardStmt(sql, pl)
				if err != nil {
					return nil, err
				}
				return db.edb.QueryStmt(sub, args...)
			})
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if pl.agg {
		return s.mergeAgg(legs, pl)
	}
	return s.mergePlain(legs, pl)
}

// mergePlain concatenates shard rows, dedups DISTINCT, re-sorts and
// re-applies the global window.
func (s *Service) mergePlain(legs []*Rows, pl *fanPlan) (*Rows, error) {
	var all [][]Value
	for _, leg := range legs {
		all = append(all, leg.All()...)
	}
	if pl.distinct {
		seen := make(map[string]bool, len(all))
		dedup := all[:0]
		for _, row := range all {
			k := string(litedb.EncodeRecord(nil, row))
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, row)
			}
		}
		all = dedup
	}
	all = orderAndWindow(all, pl)
	return litedb.NewRows(pl.names, all), nil
}

// mergeSum combines partial SUMs under SQLite's int/real promotion.
func mergeSum(a, b Value) Value {
	if b.IsNull() {
		return a
	}
	if a.IsNull() {
		return b
	}
	if a.Type() == litedb.Real || b.Type() == litedb.Real {
		return Real(a.Real() + b.Real())
	}
	return Int(a.Int() + b.Int())
}

// mergeAgg recombines per-shard partial aggregates, grouping by the
// projected key tuple.
func (s *Service) mergeAgg(legs []*Rows, pl *fanPlan) (*Rows, error) {
	// kinds over the widened per-shard row: original columns plus one
	// appended COUNT per AVG.
	kinds := append([]fanKind{}, pl.cols...)
	for i := 0; i < pl.nAvg; i++ {
		kinds = append(kinds, fanCount)
	}

	groups := make(map[string][]Value)
	var order []string
	var keyBuf []Value
	for _, leg := range legs {
		for _, row := range leg.All() {
			if len(row) != len(kinds) {
				return nil, fmt.Errorf("tsql: shard returned %d columns, expected %d", len(row), len(kinds))
			}
			keyBuf = keyBuf[:0]
			for i, k := range kinds[:pl.nOrig] {
				if k == fanKey {
					keyBuf = append(keyBuf, row[i])
				}
			}
			key := string(litedb.EncodeRecord(nil, keyBuf))
			g, ok := groups[key]
			if !ok {
				groups[key] = append([]Value{}, row...)
				order = append(order, key)
				continue
			}
			for i, k := range kinds {
				a, b := g[i], row[i]
				switch k {
				case fanKey:
					// equal by construction
				case fanCount:
					g[i] = Int(a.Int() + b.Int())
				case fanSum:
					g[i] = mergeSum(a, b)
				case fanTotal, fanAvg: // AVG slots hold TOTAL partials
					g[i] = Real(a.Real() + b.Real())
				case fanMin:
					if !b.IsNull() && (a.IsNull() || litedb.Compare(b, a) < 0) {
						g[i] = b
					}
				case fanMax:
					if !b.IsNull() && (a.IsNull() || litedb.Compare(b, a) > 0) {
						g[i] = b
					}
				case fanConcat:
					switch {
					case b.IsNull():
					case a.IsNull():
						g[i] = b
					default:
						g[i] = Text(a.Text() + "," + b.Text())
					}
				}
			}
		}
	}

	out := make([][]Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		avgSeen := 0
		for i, k := range pl.cols {
			if k != fanAvg {
				continue
			}
			cnt := g[pl.nOrig+avgSeen].Int()
			avgSeen++
			if cnt == 0 {
				g[i] = Null()
			} else {
				g[i] = Real(g[i].Real() / float64(cnt))
			}
		}
		out = append(out, g[:pl.nOrig])
	}
	out = orderAndWindow(out, pl)
	return litedb.NewRows(pl.names, out), nil
}

// orderAndWindow applies the coordinator-side ORDER BY and LIMIT/OFFSET.
func orderAndWindow(rows [][]Value, pl *fanPlan) [][]Value {
	if len(pl.orderIdx) > 0 {
		key := func(row []Value) []Value {
			ks := make([]Value, len(pl.orderIdx))
			for i, idx := range pl.orderIdx {
				ks[i] = row[idx]
			}
			return ks
		}
		sort.SliceStable(rows, func(i, j int) bool {
			return litedb.CompareRows(key(rows[i]), key(rows[j]), pl.orderDsc) < 0
		})
	}
	if pl.offset > 0 || pl.limit >= 0 {
		off := pl.offset
		if off > len(rows) {
			off = len(rows)
		}
		end := len(rows)
		if pl.limit >= 0 && off+pl.limit < end {
			end = off + pl.limit
		}
		rows = rows[off:end]
	}
	return rows
}
