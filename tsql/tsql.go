// Package tsql is the paper's flagship application as a library: a
// trusted, full SQL database running inside a TWINE enclave. Data is
// encrypted and integrity-protected by the Intel protected file system
// before it reaches the untrusted host; queries — including the query
// compiler and optimiser — execute entirely inside the enclave (§II,
// "by running a complete Wasm binary, pre-compiled queries as well as the
// query compiler and optimiser are executed inside SGX enclaves").
//
//	db, err := tsql.Open(tsql.Config{Path: "ledger.db"})
//	defer db.Close()
//	db.Exec(`CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)`)
//	db.Exec(`INSERT INTO accounts (balance) VALUES (?)`, tsql.Int(100))
//	rows, err := db.Query(`SELECT SUM(balance) FROM accounts`)
//
// For serving at scale, OpenService shards one logical database across
// enclave workers with snapshot-cloned read replicas and group-committed
// writes; see Service for the routing and visibility semantics.
package tsql

import (
	"fmt"

	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/litedb"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Value is a SQL value.
type Value = litedb.Value

// Rows is a materialised result set.
type Rows = litedb.Rows

// Value constructors.
var (
	Int  = litedb.IntVal
	Real = litedb.RealVal
	Text = litedb.TextVal
	Blob = litedb.BlobVal
	Null = litedb.NullVal
)

// Config opens a trusted database.
type Config struct {
	// Path is the database file name on the untrusted host
	// (":memory:" for a purely in-enclave database).
	Path string
	// HostFS is the untrusted storage (default: in-memory FS). Use
	// twine.NewDirHostFS to persist to a real directory.
	HostFS hostfs.FS
	// CacheKiB is the page-cache size (default 8,192 KiB, the paper's
	// SQLite configuration).
	CacheKiB int
	// PlatformSeed selects the simulated CPU identity; databases sealed
	// by one platform cannot be opened on another.
	PlatformSeed string
	// StandardIPFS runs Intel's stock protected-FS behaviour instead of
	// the paper's §V-F optimisation (default false: optimised).
	StandardIPFS bool
	// SGX overrides the enclave geometry (zero = paper defaults).
	SGX sgx.Config
	// Engine selects the in-enclave Wasm execution tier (default: the
	// fused AoT path; wasm.EngineRegister enables the PR 4 register
	// tier). All tiers are bit-identical in results and SGX accounting.
	Engine wasm.Engine
	// Prof receives counters and timers.
	Prof *prof.Registry

	// sync overrides the pager's sync mode (zero: SyncOff, the paper's
	// benchmark setting). The shard service raises it on writers whose
	// sealed files are re-opened by live replicas: a snapshot clone can
	// only refresh from commits that were made durable on the host.
	sync litedb.SyncMode
}

// DB is a trusted database handle. Not safe for concurrent use.
type DB struct {
	rt  *core.Runtime
	edb *core.EmbeddedDB
}

// Open builds the enclave, the protected file system and the database.
func Open(cfg Config) (*DB, error) {
	if cfg.Path == "" {
		cfg.Path = "trusted.db"
	}
	if cfg.CacheKiB <= 0 {
		cfg.CacheKiB = litedb.DefaultCachePages * litedb.PageSize / 1024
	}
	mode := ipfs.ModeOptimized
	if cfg.StandardIPFS {
		mode = ipfs.ModeStandard
	}
	rt, err := core.NewRuntime(core.Config{
		PlatformSeed: cfg.PlatformSeed,
		SGX:          cfg.SGX,
		Engine:       cfg.Engine,
		FS:           core.FSIPFS,
		IPFSMode:     mode,
		HostFS:       cfg.HostFS,
		Prof:         cfg.Prof,
	})
	if err != nil {
		return nil, fmt.Errorf("tsql: %w", err)
	}
	edb, err := rt.OpenDB(core.DBConfig{
		Name:       cfg.Path,
		CachePages: cfg.CacheKiB * 1024 / litedb.PageSize,
		MemVFS:     cfg.Path == litedb.MemoryDBName,
		Sync:       cfg.sync,
	})
	if err != nil {
		return nil, fmt.Errorf("tsql: %w", err)
	}
	return &DB{rt: rt, edb: edb}, nil
}

// Exec runs one or more statements inside the enclave, returning the
// affected-row count of the last one.
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	return db.edb.Exec(sql, args...)
}

// Query runs a SELECT (or PRAGMA) inside the enclave.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	return db.edb.Query(sql, args...)
}

// RowStream is a streaming cursor over an in-enclave query: rows cross
// the boundary in batches instead of as one materialised set.
type RowStream = core.DBStream

// QueryStream runs a SELECT inside the enclave and streams its rows with
// bounded buffering — plain scans of any size never materialise; see
// litedb.RowIter for the statements that fall back. The handle must not
// run another statement until the stream is closed.
func (db *DB) QueryStream(sql string, args ...Value) (*RowStream, error) {
	return db.edb.QueryStream(sql, args...)
}

// QueryRow runs a query expected to produce one row (nil if none).
func (db *DB) QueryRow(sql string, args ...Value) ([]Value, error) {
	rows, err := db.edb.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, nil
	}
	return rows.Row(), nil
}

// Runtime exposes the underlying TWINE runtime (attestation, stats).
func (db *DB) Runtime() *core.Runtime { return db.rt }

// Close flushes and closes the database.
func (db *DB) Close() error { return db.edb.Close() }
