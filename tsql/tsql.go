// Package tsql is the paper's flagship application as a library: a
// trusted, full SQL database running inside a TWINE enclave. Data is
// encrypted and integrity-protected by the Intel protected file system
// before it reaches the untrusted host; queries — including the query
// compiler and optimiser — execute entirely inside the enclave (§II,
// "by running a complete Wasm binary, pre-compiled queries as well as the
// query compiler and optimiser are executed inside SGX enclaves").
//
//	db, err := tsql.Open(tsql.Config{Path: "ledger.db"})
//	defer db.Close()
//	db.Exec(`CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)`)
//	db.Exec(`INSERT INTO accounts (balance) VALUES (?)`, tsql.Int(100))
//	rows, err := db.Query(`SELECT SUM(balance) FROM accounts`)
package tsql

import (
	"fmt"

	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/litedb"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Value is a SQL value.
type Value = litedb.Value

// Rows is a materialised result set.
type Rows = litedb.Rows

// Value constructors.
var (
	Int  = litedb.IntVal
	Real = litedb.RealVal
	Text = litedb.TextVal
	Blob = litedb.BlobVal
	Null = litedb.NullVal
)

// Config opens a trusted database.
type Config struct {
	// Path is the database file name on the untrusted host
	// (":memory:" for a purely in-enclave database).
	Path string
	// HostFS is the untrusted storage (default: in-memory FS). Use
	// twine.NewDirHostFS to persist to a real directory.
	HostFS hostfs.FS
	// CacheKiB is the page-cache size (default 8,192 KiB, the paper's
	// SQLite configuration).
	CacheKiB int
	// PlatformSeed selects the simulated CPU identity; databases sealed
	// by one platform cannot be opened on another.
	PlatformSeed string
	// OptimizedIPFS applies the paper's §V-F protected-FS optimisation
	// (default true; set false to run Intel's standard behaviour).
	StandardIPFS bool
	// SGX overrides the enclave geometry (zero = paper defaults).
	SGX sgx.Config
	// Engine selects the in-enclave Wasm execution tier (default: the
	// fused AoT path; wasm.EngineRegister enables the PR 4 register
	// tier). All tiers are bit-identical in results and SGX accounting.
	Engine wasm.Engine
	// Prof receives counters and timers.
	Prof *prof.Registry
}

// DB is a trusted database handle. Not safe for concurrent use.
type DB struct {
	rt  *core.Runtime
	edb *core.EmbeddedDB
}

// Open builds the enclave, the protected file system and the database.
func Open(cfg Config) (*DB, error) {
	if cfg.Path == "" {
		cfg.Path = "trusted.db"
	}
	if cfg.CacheKiB <= 0 {
		cfg.CacheKiB = litedb.DefaultCachePages * litedb.PageSize / 1024
	}
	mode := ipfs.ModeOptimized
	if cfg.StandardIPFS {
		mode = ipfs.ModeStandard
	}
	rt, err := core.NewRuntime(core.Config{
		PlatformSeed: cfg.PlatformSeed,
		SGX:          cfg.SGX,
		Engine:       cfg.Engine,
		FS:           core.FSIPFS,
		IPFSMode:     mode,
		HostFS:       cfg.HostFS,
		Prof:         cfg.Prof,
	})
	if err != nil {
		return nil, fmt.Errorf("tsql: %w", err)
	}
	edb, err := rt.OpenDB(core.DBConfig{
		Name:       cfg.Path,
		CachePages: cfg.CacheKiB * 1024 / litedb.PageSize,
		MemVFS:     cfg.Path == litedb.MemoryDBName,
	})
	if err != nil {
		return nil, fmt.Errorf("tsql: %w", err)
	}
	return &DB{rt: rt, edb: edb}, nil
}

// Exec runs one or more statements inside the enclave, returning the
// affected-row count of the last one.
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	return db.edb.Exec(sql, args...)
}

// Query runs a SELECT (or PRAGMA) inside the enclave.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	return db.edb.Query(sql, args...)
}

// QueryRow runs a query expected to produce one row (nil if none).
func (db *DB) QueryRow(sql string, args ...Value) ([]Value, error) {
	rows, err := db.edb.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, nil
	}
	return rows.Row(), nil
}

// Runtime exposes the underlying TWINE runtime (attestation, stats).
func (db *DB) Runtime() *core.Runtime { return db.rt }

// Close flushes and closes the database.
func (db *DB) Close() error { return db.edb.Close() }
