package tsql

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"twine/internal/hostfs"
	"twine/internal/litedb"
)

// The PR 3 litedb-vfs concurrency satellite: N goroutines query the same
// sealed database concurrently, each through its own trusted runtime
// (the read-only replica pattern — one sealed store, many serving
// enclaves on the same platform). Every replica must decrypt, verify and
// compute exactly what a sequential reader computes.

// replicaCfg is the small, fast enclave geometry the replicas run on.
func replicaCfg(host hostfs.FS, seed string) Config {
	cfg := Config{Path: "sealed.db", HostFS: host, PlatformSeed: seed, CacheKiB: 256}
	cfg.SGX.EPCSize = 16 << 20
	cfg.SGX.EPCUsable = 12 << 20
	cfg.SGX.HeapSize = 96 << 20
	cfg.SGX.ReservedSize = 4 << 20
	return cfg
}

// sealBenchDB creates and populates a protected database on host,
// returning the queries' expected results from a sequential reader.
func sealBenchDB(t *testing.T, host hostfs.FS, seed string) map[string][][]litedb.Value {
	t.Helper()
	db, err := Open(replicaCfg(host, seed))
	if err != nil {
		t.Fatalf("Open (writer): %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE inv (id INTEGER PRIMARY KEY, sku TEXT, qty INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT INTO inv (sku, qty) VALUES (?, ?)`,
			Text(fmt.Sprintf("sku-%03d", i)), Int(int64(i*i%97))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT COUNT(*), SUM(qty) FROM inv`,
		`SELECT sku, qty FROM inv WHERE qty > 80 ORDER BY sku`,
		`SELECT qty FROM inv WHERE id = 42`,
	}
	want := make(map[string][][]litedb.Value)
	for _, q := range queries {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("reference query %q: %v", q, err)
		}
		want[q] = rows.All()
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close (writer): %v", err)
	}
	return want
}

// TestConcurrentReadOnlyReplicas opens the sealed database from several
// goroutines at once and checks byte-for-byte result equality with the
// sequential reference.
func TestConcurrentReadOnlyReplicas(t *testing.T) {
	host := hostfs.NewMemFS()
	const seed = "replica-platform"
	want := sealBenchDB(t, host, seed)

	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			db, err := Open(replicaCfg(host, seed))
			if err != nil {
				t.Errorf("replica %d Open: %v", r, err)
				return
			}
			defer db.Close()
			for q, expect := range want {
				rows, err := db.Query(q)
				if err != nil {
					t.Errorf("replica %d %q: %v", r, q, err)
					return
				}
				if got := rows.All(); !reflect.DeepEqual(got, expect) {
					t.Errorf("replica %d %q:\n got %v\nwant %v", r, q, got, expect)
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentReplicaWrongPlatform: a replica on a different platform
// must fail to unseal (the protection survives concurrency).
func TestConcurrentReplicaWrongPlatform(t *testing.T) {
	host := hostfs.NewMemFS()
	sealBenchDB(t, host, "platform-a")
	db, err := Open(replicaCfg(host, "platform-b"))
	if err == nil {
		_, qerr := db.Query(`SELECT COUNT(*) FROM inv`)
		_ = db.Close()
		if qerr == nil {
			t.Fatal("wrong-platform replica read the sealed database")
		}
	}
}
