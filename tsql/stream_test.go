package tsql

import (
	"reflect"
	"testing"

	"twine/internal/hostfs"
)

// TestQueryStreamMatchesQuery proves the streaming cursor returns exactly
// what the materialised path returns, while holding only a bounded number
// of rows outside the in-enclave cursor at any instant.
func TestQueryStreamMatchesQuery(t *testing.T) {
	db, err := Open(svcCfg(hostfs.NewMemFS(), "stream-platform"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE ev (id INTEGER PRIMARY KEY, kind TEXT, w REAL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, err := db.Exec(`INSERT INTO ev (kind, w) VALUES (?, ?)`,
			Text(string(rune('a'+i%7))), Real(float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT id, kind, w FROM ev`,
		`SELECT id FROM ev WHERE w > 300`,
		`SELECT kind, COUNT(*) FROM ev GROUP BY kind`, // materialising fallback shape
	}
	for _, q := range queries {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
		st, err := db.QueryStream(q)
		if err != nil {
			t.Fatalf("QueryStream(%s): %v", q, err)
		}
		if !reflect.DeepEqual(st.Cols(), rows.Cols) {
			t.Fatalf("%s: cols %v != %v", q, st.Cols(), rows.Cols)
		}
		var got [][]Value
		for st.Next() {
			got = append(got, st.Row())
		}
		if err := st.Close(); err != nil {
			t.Fatalf("stream close (%s): %v", q, err)
		}
		want := rows.All()
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d rows, materialised %d", q, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s row %d: %v != %v", q, i, got[i], want[i])
			}
		}
	}

	// Bounded memory on a scan 1500 rows long: at most the in-enclave
	// channel (64) + slack (2) + one host-side fetch batch (128) rows are
	// ever buffered — far below the full result.
	st, err := db.QueryStream(`SELECT id, kind, w FROM ev`)
	if err != nil {
		t.Fatalf("QueryStream: %v", err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n != 1500 {
		t.Fatalf("streamed %d rows, want 1500", n)
	}
	if max := st.MaxBuffered(); max > 194 {
		t.Fatalf("stream buffered up to %d rows; bound is 194", max)
	}

	// Early close frees the handle for the next statement.
	st, err = db.QueryStream(`SELECT id FROM ev`)
	if err != nil {
		t.Fatalf("QueryStream: %v", err)
	}
	for i := 0; i < 5; i++ {
		if !st.Next() {
			t.Fatalf("Next false at %d", i)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	row, err := db.QueryRow(`SELECT COUNT(*) FROM ev`)
	if err != nil || row[0].Int() != 1500 {
		t.Fatalf("post-close query: %v %v", row, err)
	}
}
