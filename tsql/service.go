package tsql

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twine/internal/hostfs"
	"twine/internal/litedb"
)

// Service is the sharded sealed-SQL front door: one logical database
// hash-partitioned across N enclave shard workers, each a sealed IPFS
// file of its own. Reads fan out to snapshot-cloned replicas per shard
// (the PR 3 concurrent-replica construction at shard granularity);
// writes funnel through a per-shard group-commit queue that batches
// statements into one enclave crossing — and therefore one switchless
// protected-FS flush — per commit window.
//
// Routing semantics:
//
//   - A SELECT whose FROM is exactly the routed table and whose WHERE
//     contains a `RouteColumn = <const>` conjunct runs on that key's
//     shard alone (point read).
//   - Other SELECTs referencing the routed table fan out to every shard
//     and merge at the coordinator: plain selects concatenate, re-sort
//     and re-apply LIMIT/OFFSET; aggregate selects merge partial
//     aggregates (COUNT/SUM/TOTAL/MIN/MAX/GROUP_CONCAT sum or compare,
//     AVG is rewritten per shard into TOTAL+COUNT). Cross-shard GROUP BY
//     must project its grouping keys; HAVING is not supported across
//     shards.
//   - SELECTs not touching the routed table round-robin across shards
//     (non-routed tables are replicated: every write to them
//     broadcasts).
//   - INSERTs on the routed table split row-by-row on the routing value;
//     UPDATE/DELETE with a `RouteColumn = <const>` conjunct run on one
//     shard, otherwise they broadcast. DDL broadcasts.
//
// Commit-window visibility: Exec returns only after its statements are
// committed and the shard epoch has advanced, so a subsequent read —
// from any replica — observes them (read-your-writes). Replicas refresh
// from the sealed file when their epoch is stale.
//
// With Shards=1, Replicas=1 and NoGroupCommit=true the Service degrades
// to an exact pass-through of a sequential DB: same statements, same
// enclave crossings, same counters.
type Service struct {
	cfg  ShardConfig
	base Config // defaulted Base, shared by writers and replicas

	shards []*shard
	rr     atomic.Int64

	schemaMu  sync.RWMutex
	routeAff  litedb.Type
	routeIdx  int
	routeCols []string

	stats serviceCounters
}

// ShardConfig configures a sharded service.
type ShardConfig struct {
	// Base is the per-shard database configuration; shard i stores its
	// partition in "<Path>.s<i>" (just Path when Shards is 1) on the
	// shared HostFS. In-memory databases cannot be sharded.
	Base Config
	// Shards is the number of hash partitions (default 1).
	Shards int
	// Replicas is the number of serving handles per shard, including
	// the writer (default 1: all reads go through the writer handle).
	Replicas int
	// RouteTable/RouteColumn name the partitioned table and its routing
	// column. Required when Shards > 1.
	RouteTable  string
	RouteColumn string
	// CommitWindow holds a write batch open for stragglers before
	// committing (default 0: opportunistic batching — whatever queued
	// while the previous commit flushed forms the next batch).
	CommitWindow time.Duration
	// MaxBatch caps statements per group commit (default 32).
	MaxBatch int
	// NoGroupCommit executes writes synchronously on the caller, one
	// autocommit transaction each — the fidelity configuration.
	NoGroupCommit bool
	// HostIO, when set, is invoked once per shard sub-request while the
	// shard's serving handle is held — the untrusted transport hook the
	// serving benches model client round-trips with (PR 3 idiom).
	HostIO func(shard int) error
}

// ServiceStats is a point-in-time snapshot of routing counters.
type ServiceStats struct {
	Shards           int
	PointReads       []int64 // per-shard single-shard SELECTs
	FanOuts          int64   // cross-shard scatter-gather SELECTs
	RoundRobinReads  int64   // non-routed-table SELECTs
	Writes           int64
	Broadcasts       int64 // statements sent to every shard
	GroupCommits     int64 // batches committed
	GroupedStmts     int64 // statements carried by those batches
	GroupFallbacks   int64 // batches re-run statement-by-statement
	ReplicaRefreshes int64 // stale replicas reopened from sealed files
}

type serviceCounters struct {
	pointReads     []int64
	fanOuts        int64
	rrReads        int64
	writes         int64
	broadcasts     int64
	groupCommits   int64
	groupedStmts   int64
	groupFallbacks int64
	refreshes      int64
}

type writeResp struct {
	n   int64
	err error
}

// writeReq is one unit on a shard's group-commit queue: either a
// pre-split INSERT (ins) or statement stmtIdx of the raw text (all of it
// when stmtIdx is -1).
type writeReq struct {
	sql     string
	stmtIdx int
	ins     *litedb.InsertStmt
	args    []Value
	resp    chan writeResp
}

// servHandle is one serving slot: the writer (handle 0) or a lazily
// opened snapshot clone. mu is the true exclusivity lock; the shard's
// free-list channel is only the dispenser.
type servHandle struct {
	mu     sync.Mutex
	db     *DB
	epoch  int64
	writer bool
}

type shard struct {
	svc     *Service
	idx     int
	writer  *DB
	wh      *servHandle
	handles chan *servHandle
	// epoch counts committed write batches; replicas compare it to
	// decide whether their sealed-file snapshot is stale. Advanced only
	// under storageMu's write lock.
	epoch atomic.Int64
	// storageMu serialises sealed-file mutation (commit flushes) against
	// replica reads and reopens of the same untrusted file.
	storageMu sync.RWMutex
	wq        chan *writeReq
	done      chan struct{}
}

// OpenService builds the shard workers and starts their commit queues.
func OpenService(cfg ShardConfig) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.Shards > 1 && (cfg.RouteTable == "" || cfg.RouteColumn == "") {
		return nil, fmt.Errorf("tsql: a sharded service needs RouteTable and RouteColumn")
	}
	base := cfg.Base
	if base.Path == "" {
		base.Path = "trusted.db"
	}
	if base.Path == litedb.MemoryDBName {
		return nil, fmt.Errorf("tsql: a Service needs a file-backed database")
	}
	if base.HostFS == nil {
		base.HostFS = hostfs.NewMemFS()
	}
	if cfg.Replicas > 1 {
		// Snapshot clones refresh by re-opening the sealed file while the
		// writer stays live, so every commit must reach the host bytes —
		// not just the writer's in-enclave caches — when it completes.
		base.sync = litedb.SyncNormal
	}
	s := &Service{cfg: cfg, base: base}
	s.stats.pointReads = make([]int64, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		scfg := base
		scfg.Path = shardPath(base.Path, i, cfg.Shards)
		w, err := Open(scfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tsql: shard %d: %w", i, err)
		}
		sh := &shard{svc: s, idx: i, writer: w}
		sh.wh = &servHandle{db: w, writer: true}
		sh.handles = make(chan *servHandle, cfg.Replicas)
		sh.handles <- sh.wh
		for r := 1; r < cfg.Replicas; r++ {
			sh.handles <- &servHandle{}
		}
		if !cfg.NoGroupCommit {
			sh.wq = make(chan *writeReq, 256)
			sh.done = make(chan struct{})
			go sh.commitLoop()
		}
		s.shards = append(s.shards, sh)
	}
	s.refreshRouteSchema()
	return s, nil
}

func shardPath(path string, i, n int) string {
	if n == 1 {
		return path
	}
	return fmt.Sprintf("%s.s%d", path, i)
}

// refreshRouteSchema re-reads the routed table's declared columns from
// shard 0 (all shards share DDL); called at open and after DDL.
func (s *Service) refreshRouteSchema() {
	if s.cfg.RouteTable == "" {
		return
	}
	sh := s.shards[0]
	sh.storageMu.RLock()
	ldb := sh.writer.edb.DB
	aff, affOK := ldb.ColumnAffinity(s.cfg.RouteTable, s.cfg.RouteColumn)
	cols, _ := ldb.TableColumns(s.cfg.RouteTable)
	sh.storageMu.RUnlock()

	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	if affOK {
		s.routeAff = aff
	} else {
		s.routeAff = litedb.Null
	}
	s.routeIdx = -1
	s.routeCols = cols
	for i, c := range cols {
		if strings.EqualFold(c, s.cfg.RouteColumn) {
			s.routeIdx = i
		}
	}
}

// shardOf maps a routing value to its partition: affinity-coerced (so
// '17' and 17 land together when the column is INTEGER), record-encoded,
// FNV-1a hashed, then avalanche-mixed. The finalizer matters: reduced
// modulo a small shard count, raw FNV-1a keeps the last input byte's
// parity in its low bit, so an all-even key set would collapse onto one
// partition.
func (s *Service) shardOf(v Value) int {
	s.schemaMu.RLock()
	aff := s.routeAff
	s.schemaMu.RUnlock()
	v = litedb.ApplyAffinity(v, aff)
	h := fnv.New64a()
	h.Write(litedb.EncodeRecord(nil, []Value{v}))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(s.shards)))
}

// --- serving handles ---

// checkout acquires a serving handle from the dispenser and locks it.
func (sh *shard) checkout() *servHandle {
	h := <-sh.handles
	h.mu.Lock()
	return h
}

func (sh *shard) checkin(h *servHandle) {
	h.mu.Unlock()
	sh.handles <- h
}

// ensureFresh lazily opens a snapshot clone, or refreshes a stale one
// from the sealed file. The caller must hold storageMu.RLock: the
// staleness decision and the read it licenses have to sit under the same
// lock hold, or a commit can re-key the sealed file in between and the
// replica's open cursors fail integrity checks.
func (sh *shard) ensureFresh(h *servHandle) error {
	if h.db == nil {
		cfg := sh.svc.base
		cfg.Path = shardPath(sh.svc.base.Path, sh.idx, len(sh.svc.shards))
		db, err := Open(cfg)
		if err != nil {
			return err
		}
		h.db, h.epoch = db, sh.epoch.Load()
		return nil
	}
	if !h.writer && h.epoch != sh.epoch.Load() {
		if err := h.db.edb.Reopen(); err != nil {
			return err
		}
		h.epoch = sh.epoch.Load()
		atomic.AddInt64(&sh.svc.stats.refreshes, 1)
	}
	return nil
}

// readOn runs one read-only sub-request on a shard: checkout, transport
// wait, then refresh-check and query under one storage read-lock hold.
func (s *Service) readOn(idx int, fn func(db *DB) (*Rows, error)) (*Rows, error) {
	sh := s.shards[idx]
	h := sh.checkout()
	defer sh.checkin(h)
	if s.cfg.HostIO != nil {
		if err := s.cfg.HostIO(idx); err != nil {
			return nil, err
		}
	}
	sh.storageMu.RLock()
	defer sh.storageMu.RUnlock()
	if err := sh.ensureFresh(h); err != nil {
		return nil, err
	}
	return fn(h.db)
}

// --- reads ---

// Query routes a single SELECT (or PRAGMA) through the shard tier.
func (s *Service) Query(sql string, args ...Value) (*Rows, error) {
	stmts, err := litedb.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("tsql: Query expects exactly one statement")
	}
	switch st := stmts[0].(type) {
	case *litedb.SelectStmt:
		return s.routeSelect(sql, st, args)
	case *litedb.PragmaStmt:
		return s.readOn(0, func(db *DB) (*Rows, error) { return db.Query(sql, args...) })
	default:
		return nil, fmt.Errorf("tsql: Query expects a SELECT or PRAGMA")
	}
}

// QueryRow runs a query expected to produce one row (nil if none).
func (s *Service) QueryRow(sql string, args ...Value) ([]Value, error) {
	rows, err := s.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, nil
	}
	return rows.Row(), nil
}

func (s *Service) routeSelect(sql string, st *litedb.SelectStmt, args []Value) (*Rows, error) {
	if len(s.shards) == 1 {
		atomic.AddInt64(&s.stats.pointReads[0], 1)
		return s.readOn(0, func(db *DB) (*Rows, error) { return db.Query(sql, args...) })
	}
	if idx, ok := s.pointShard(st, args); ok {
		atomic.AddInt64(&s.stats.pointReads[idx], 1)
		return s.readOn(idx, func(db *DB) (*Rows, error) { return db.Query(sql, args...) })
	}
	if !s.referencesRouteTable(st) {
		atomic.AddInt64(&s.stats.rrReads, 1)
		idx := int(s.rr.Add(1)-1) % len(s.shards)
		return s.readOn(idx, func(db *DB) (*Rows, error) { return db.Query(sql, args...) })
	}
	atomic.AddInt64(&s.stats.fanOuts, 1)
	return s.fanout(sql, st, args)
}

func (s *Service) referencesRouteTable(st *litedb.SelectStmt) bool {
	for _, ref := range st.From {
		if strings.EqualFold(ref.Name, s.cfg.RouteTable) {
			return true
		}
	}
	return false
}

// conjunctsOf flattens the AND tree of a WHERE clause.
func conjunctsOf(e litedb.Expr, out []litedb.Expr) []litedb.Expr {
	if b, ok := e.(*litedb.Binary); ok && b.Op == "AND" {
		out = conjunctsOf(b.L, out)
		return conjunctsOf(b.R, out)
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// routeValueIn finds a `RouteColumn = <const>` conjunct and returns the
// evaluated routing value. tblNames are the names the routed table is
// visible under ("" entries are skipped).
func (s *Service) routeValueIn(where litedb.Expr, args []Value, tblNames ...string) (Value, bool) {
	for _, c := range conjunctsOf(where, nil) {
		b, ok := c.(*litedb.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, side := range [2][2]litedb.Expr{{b.L, b.R}, {b.R, b.L}} {
			cr, ok := side[0].(*litedb.ColRef)
			if !ok || !strings.EqualFold(cr.Col, s.cfg.RouteColumn) {
				continue
			}
			if cr.Table != "" {
				match := false
				for _, n := range tblNames {
					if n != "" && strings.EqualFold(cr.Table, n) {
						match = true
					}
				}
				if !match {
					continue
				}
			}
			v, err := litedb.EvalConst(side[1], args)
			if err != nil {
				continue
			}
			return v, true
		}
	}
	return Value{}, false
}

// pointShard reports the single shard a SELECT can be answered on: FROM
// is exactly the routed table and WHERE pins the routing column.
func (s *Service) pointShard(st *litedb.SelectStmt, args []Value) (int, bool) {
	if s.cfg.RouteTable == "" || len(st.From) != 1 ||
		!strings.EqualFold(st.From[0].Name, s.cfg.RouteTable) {
		return 0, false
	}
	v, ok := s.routeValueIn(st.Where, args, st.From[0].Alias, st.From[0].Name)
	if !ok {
		return 0, false
	}
	return s.shardOf(v), true
}

// --- writes ---

// Exec routes one or more statements through the write tier, returning
// the affected-row count of the last one. Transaction control statements
// are rejected: the group-commit queue owns transaction boundaries.
func (s *Service) Exec(sql string, args ...Value) (int64, error) {
	stmts, err := litedb.ParseAll(sql)
	if err != nil {
		return 0, err
	}
	if len(stmts) == 0 {
		return 0, nil
	}
	for _, st := range stmts {
		switch st.(type) {
		case *litedb.BeginStmt, *litedb.CommitStmt, *litedb.RollbackStmt:
			return 0, fmt.Errorf("tsql: the service owns transaction boundaries; batch statements in one Exec instead")
		}
	}
	atomic.AddInt64(&s.stats.writes, 1)
	if len(s.shards) == 1 {
		// Whole text as one unit: with batching off this is exactly the
		// sequential DB.Exec crossing pattern.
		resp := s.submit(0, &writeReq{sql: sql, stmtIdx: -1, args: args})
		r := <-resp
		return r.n, r.err
	}
	var affected int64
	ddl := false
	for i, st := range stmts {
		n, isDDL, err := s.execOne(sql, i, st, args)
		if err != nil {
			return affected, err
		}
		affected = n
		ddl = ddl || isDDL
	}
	if ddl {
		s.refreshRouteSchema()
	}
	return affected, nil
}

// execOne routes one statement of a (possibly multi-statement) text.
func (s *Service) execOne(sql string, idx int, st litedb.Stmt, args []Value) (int64, bool, error) {
	routed := func(tbl string) bool { return strings.EqualFold(tbl, s.cfg.RouteTable) }
	switch t := st.(type) {
	case *litedb.InsertStmt:
		if routed(t.Table) {
			n, err := s.execRoutedInsert(t, args)
			return n, false, err
		}
		n, err := s.broadcast(sql, idx, args, false)
		return n, false, err
	case *litedb.UpdateStmt:
		if routed(t.Table) {
			for _, set := range t.Sets {
				if strings.EqualFold(set.Col, s.cfg.RouteColumn) {
					return 0, false, fmt.Errorf("tsql: UPDATE may not change the routing column %s (rows would cross shards)", s.cfg.RouteColumn)
				}
			}
			if v, ok := s.routeValueIn(t.Where, args, t.Table); ok {
				resp := s.submit(s.shardOf(v), &writeReq{sql: sql, stmtIdx: idx, args: args})
				r := <-resp
				return r.n, false, r.err
			}
			n, err := s.broadcast(sql, idx, args, true)
			return n, false, err
		}
		n, err := s.broadcast(sql, idx, args, false)
		return n, false, err
	case *litedb.DeleteStmt:
		if routed(t.Table) {
			if v, ok := s.routeValueIn(t.Where, args, t.Table); ok {
				resp := s.submit(s.shardOf(v), &writeReq{sql: sql, stmtIdx: idx, args: args})
				r := <-resp
				return r.n, false, r.err
			}
			n, err := s.broadcast(sql, idx, args, true)
			return n, false, err
		}
		n, err := s.broadcast(sql, idx, args, false)
		return n, false, err
	case *litedb.SelectStmt:
		// Exec of a SELECT has no effect; run it on shard 0 for parity.
		_, err := s.readOn(0, func(db *DB) (*Rows, error) { return db.edb.QueryStmt(t, args...) })
		return 0, false, err
	case *litedb.CreateTableStmt, *litedb.CreateIndexStmt, *litedb.DropStmt, *litedb.AlterStmt:
		n, err := s.broadcast(sql, idx, args, false)
		return n, true, err
	default: // PRAGMA, ANALYZE, VACUUM
		n, err := s.broadcast(sql, idx, args, false)
		return n, false, err
	}
}

// execRoutedInsert splits a multi-row INSERT on the routing value and
// submits each slice to its shard's commit queue.
func (s *Service) execRoutedInsert(t *litedb.InsertStmt, args []Value) (int64, error) {
	if t.Select != nil {
		return 0, fmt.Errorf("tsql: INSERT ... SELECT is not supported on the routed table")
	}
	s.schemaMu.RLock()
	pos := s.routeIdx
	s.schemaMu.RUnlock()
	if len(t.Cols) > 0 {
		pos = -1
		for i, c := range t.Cols {
			if strings.EqualFold(c, s.cfg.RouteColumn) {
				pos = i
			}
		}
	}
	if pos < 0 {
		return 0, fmt.Errorf("tsql: INSERT on %s must supply the routing column %s", t.Table, s.cfg.RouteColumn)
	}
	buckets := make(map[int][][]litedb.Expr)
	for _, row := range t.Rows {
		if pos >= len(row) {
			return 0, fmt.Errorf("tsql: INSERT row has no value for the routing column")
		}
		v, err := litedb.EvalConst(row[pos], args)
		if err != nil {
			return 0, fmt.Errorf("tsql: routing value must be a constant expression: %w", err)
		}
		buckets[s.shardOf(v)] = append(buckets[s.shardOf(v)], row)
	}
	var waits []chan writeResp
	for idx, rows := range buckets {
		ins := &litedb.InsertStmt{Table: t.Table, Cols: t.Cols, Rows: rows, OrReplace: t.OrReplace}
		waits = append(waits, s.submit(idx, &writeReq{ins: ins, args: args}))
	}
	var total int64
	var first error
	for _, w := range waits {
		r := <-w
		total += r.n
		if first == nil && r.err != nil {
			first = r.err
		}
	}
	return total, first
}

// broadcast submits one statement to every shard. sum reports the summed
// affected count (disjoint routed-table partitions); otherwise shard 0's
// count stands for the replicated table.
func (s *Service) broadcast(sql string, idx int, args []Value, sum bool) (int64, error) {
	atomic.AddInt64(&s.stats.broadcasts, 1)
	waits := make([]chan writeResp, len(s.shards))
	for i := range s.shards {
		waits[i] = s.submit(i, &writeReq{sql: sql, stmtIdx: idx, args: args})
	}
	var total int64
	var first error
	for i, w := range waits {
		r := <-w
		if sum {
			total += r.n
		} else if i == 0 {
			total = r.n
		}
		if first == nil && r.err != nil {
			first = r.err
		}
	}
	return total, first
}

// submit hands a write to a shard: onto the group-commit queue, or — with
// batching off — executed synchronously on the caller.
func (s *Service) submit(idx int, r *writeReq) chan writeResp {
	r.resp = make(chan writeResp, 1)
	sh := s.shards[idx]
	if s.cfg.NoGroupCommit {
		sh.execDirect(r)
		return r.resp
	}
	sh.wq <- r
	return r.resp
}

// parseReq resolves a request's statements on the executor side: shards
// never share ASTs (binding mutates them), so text requests re-parse and
// pre-split inserts travel as exclusive statement values.
func parseReq(r *writeReq) ([]litedb.Stmt, error) {
	if r.ins != nil {
		return []litedb.Stmt{r.ins}, nil
	}
	stmts, err := litedb.ParseAll(r.sql)
	if err != nil {
		return nil, err
	}
	if r.stmtIdx >= 0 {
		if r.stmtIdx >= len(stmts) {
			return nil, fmt.Errorf("tsql: statement index out of range")
		}
		return stmts[r.stmtIdx : r.stmtIdx+1], nil
	}
	return stmts, nil
}

// execDirect is the batching-off write path: one autocommit unit per
// request, executed under the writer handle like a sequential DB.
func (sh *shard) execDirect(r *writeReq) {
	sh.wh.mu.Lock()
	sh.storageMu.Lock()
	var n int64
	var err error
	if r.ins != nil {
		n, err = sh.writer.edb.ExecStmt(r.ins, r.args...)
	} else if r.stmtIdx < 0 {
		n, err = sh.writer.edb.Exec(r.sql, r.args...)
	} else {
		var stmts []litedb.Stmt
		stmts, err = parseReq(r)
		if err == nil {
			n, err = sh.writer.edb.ExecStmt(stmts[0], r.args...)
		}
	}
	sh.epoch.Add(1)
	sh.storageMu.Unlock()
	sh.wh.mu.Unlock()
	r.resp <- writeResp{n, err}
}

// commitLoop drains the shard's write queue into group commits. With no
// CommitWindow the batching is opportunistic: everything that queued
// while the previous batch flushed forms the next one.
func (sh *shard) commitLoop() {
	for {
		var first *writeReq
		select {
		case first = <-sh.wq:
		case <-sh.done:
			return
		}
		batch := []*writeReq{first}
		max := sh.svc.cfg.MaxBatch
		if w := sh.svc.cfg.CommitWindow; w > 0 {
			t := time.NewTimer(w)
		window:
			for len(batch) < max {
				select {
				case r := <-sh.wq:
					batch = append(batch, r)
				case <-t.C:
					break window
				case <-sh.done:
					break window
				}
			}
			t.Stop()
		} else {
		drain:
			for len(batch) < max {
				select {
				case r := <-sh.wq:
					batch = append(batch, r)
				default:
					break drain
				}
			}
		}
		sh.commitBatch(batch)
	}
}

// commitBatch executes a batch as BEGIN..COMMIT inside ONE enclave
// crossing — one switchless protected-FS flush for the whole window. A
// failing statement rolls the batch back and every request re-runs in
// its own autocommit unit, so one bad write cannot poison its
// batchmates.
func (sh *shard) commitBatch(batch []*writeReq) {
	svc := sh.svc
	atomic.AddInt64(&svc.stats.groupCommits, 1)
	atomic.AddInt64(&svc.stats.groupedStmts, int64(len(batch)))

	parsed := make([][]litedb.Stmt, len(batch))
	live := batch[:0:0]
	for _, r := range batch {
		stmts, err := parseReq(r)
		if err != nil {
			r.resp <- writeResp{0, err}
			continue
		}
		parsed[len(live)] = stmts
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	runIn := func(db *litedb.DB, i int, r *writeReq) (int64, error) {
		var last int64
		for _, st := range parsed[i] {
			n, err := db.ExecStmt(st, r.args...)
			if err != nil {
				return last, err
			}
			last = n
		}
		return last, nil
	}

	ns := make([]int64, len(live))
	sh.wh.mu.Lock()
	sh.storageMu.Lock()

	var stmtErr error
	err := sh.writer.edb.Batch(func(db *litedb.DB) error {
		if _, err := db.Exec("BEGIN"); err != nil {
			return err
		}
		for i, r := range live {
			n, err := runIn(db, i, r)
			if err != nil {
				stmtErr = err
				_, _ = db.Exec("ROLLBACK")
				return nil
			}
			ns[i] = n
		}
		_, err := db.Exec("COMMIT")
		return err
	})

	if err == nil && stmtErr == nil {
		sh.epoch.Add(1)
		sh.storageMu.Unlock()
		sh.wh.mu.Unlock()
		for i, r := range live {
			r.resp <- writeResp{ns[i], nil}
		}
		return
	}

	// Fallback: the batch aborted — re-run each request alone so only
	// the genuinely failing ones report errors.
	atomic.AddInt64(&svc.stats.groupFallbacks, 1)
	resps := make([]writeResp, len(live))
	for i, r := range live {
		n, rerr := runIn(sh.writer.edb.DB, i, r) // still one ECall each
		_ = n
		resps[i] = writeResp{n, rerr}
	}
	sh.epoch.Add(1)
	sh.storageMu.Unlock()
	sh.wh.mu.Unlock()
	for i, r := range live {
		r.resp <- resps[i]
	}
}

// --- lifecycle ---

// Stats snapshots the routing counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Shards:           len(s.shards),
		PointReads:       make([]int64, len(s.stats.pointReads)),
		FanOuts:          atomic.LoadInt64(&s.stats.fanOuts),
		RoundRobinReads:  atomic.LoadInt64(&s.stats.rrReads),
		Writes:           atomic.LoadInt64(&s.stats.writes),
		Broadcasts:       atomic.LoadInt64(&s.stats.broadcasts),
		GroupCommits:     atomic.LoadInt64(&s.stats.groupCommits),
		GroupedStmts:     atomic.LoadInt64(&s.stats.groupedStmts),
		GroupFallbacks:   atomic.LoadInt64(&s.stats.groupFallbacks),
		ReplicaRefreshes: atomic.LoadInt64(&s.stats.refreshes),
	}
	for i := range s.stats.pointReads {
		st.PointReads[i] = atomic.LoadInt64(&s.stats.pointReads[i])
	}
	return st
}

// Shard exposes a shard's writer DB (tests and stats probes).
func (s *Service) Shard(i int) *DB { return s.shards[i].writer }

// Close stops the commit queues and closes every handle. Callers must
// have drained their own in-flight requests first.
func (s *Service) Close() error {
	var first error
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		if sh.done != nil {
			close(sh.done)
		}
		for i := 0; i < cap(sh.handles); i++ {
			h := <-sh.handles
			if h.db == nil || h.writer {
				continue
			}
			if err := h.db.edb.Release(); err != nil && first == nil {
				first = err
			}
			h.db.rt.Enclave.Destroy()
		}
		if err := sh.writer.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
