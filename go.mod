module twine

go 1.22
