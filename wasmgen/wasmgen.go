// Package wasmgen is a programmatic WebAssembly (MVP) module builder. It
// emits standard binary modules consumable by any Wasm runtime — in this
// repository, by TWINE's embedded runtime. The PolyBench/C kernels of the
// paper's Figure 3 and all example applications construct their modules
// with this package, so every benchmark executes genuine WebAssembly
// bytecode rather than a Go stand-in.
//
// Typical use:
//
//	m := wasmgen.NewModule()
//	m.Memory(1, 16)
//	f := m.Func(wasmgen.Sig(wasmgen.I32, wasmgen.I32).Returns(wasmgen.I32))
//	f.LocalGet(0)
//	f.LocalGet(1)
//	f.I32Add()
//	f.End()
//	m.Export("add", f)
//	bin := m.Bytes()
package wasmgen

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ValType is a WebAssembly value type.
type ValType byte

// Value types.
const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

// Signature describes a function type.
type Signature struct {
	Params  []ValType
	Results []ValType
}

// Sig builds a signature with the given parameters and no results.
func Sig(params ...ValType) Signature { return Signature{Params: params} }

// Returns sets the result types.
func (s Signature) Returns(results ...ValType) Signature {
	s.Results = results
	return s
}

func (s Signature) key() string {
	b := make([]byte, 0, len(s.Params)+len(s.Results)+1)
	for _, p := range s.Params {
		b = append(b, byte(p))
	}
	b = append(b, 0)
	for _, r := range s.Results {
		b = append(b, byte(r))
	}
	return string(b)
}

// BlockType is the type immediate of block/loop/if.
type BlockType byte

// Block types.
const (
	BlockVoid BlockType = 0x40
	BlockI32  BlockType = 0x7F
	BlockI64  BlockType = 0x7E
	BlockF32  BlockType = 0x7D
	BlockF64  BlockType = 0x7C
)

// Module accumulates a module under construction.
type Module struct {
	types     []Signature
	typeIdx   map[string]uint32
	imports   []importEntry
	funcs     []*Func
	memMin    uint32
	memMax    uint32
	hasMemMax bool
	hasMem    bool
	tableMin  uint32
	hasTable  bool
	globals   []globalEntry
	exports   []exportEntry
	elems     []elemEntry
	data      []dataEntry
	startFn   *Func
	hasStart  bool
}

type importEntry struct {
	module, name string
	typeIdx      uint32
}

type globalEntry struct {
	typ     ValType
	mutable bool
	init    uint64
}

type exportEntry struct {
	name string
	kind byte
	idx  func() uint32
}

type elemEntry struct {
	offset  int32
	entries []*Func
}

type dataEntry struct {
	offset int32
	bytes  []byte
}

// NewModule returns an empty module builder.
func NewModule() *Module {
	return &Module{typeIdx: make(map[string]uint32)}
}

func (m *Module) internType(s Signature) uint32 {
	k := s.key()
	if idx, ok := m.typeIdx[k]; ok {
		return idx
	}
	idx := uint32(len(m.types))
	m.types = append(m.types, s)
	m.typeIdx[k] = idx
	return idx
}

// ImportFunc declares a host function import; imports always precede
// module functions in the index space, so declare them before Func.
func (m *Module) ImportFunc(module, name string, sig Signature) *Func {
	if len(m.funcs) > 0 {
		panic("wasmgen: imports must be declared before functions")
	}
	f := &Func{m: m, imported: true, idx: uint32(len(m.imports)), sig: sig}
	m.imports = append(m.imports, importEntry{module: module, name: name, typeIdx: m.internType(sig)})
	return f
}

// Func starts a new function with the given signature and local types.
func (m *Module) Func(sig Signature, locals ...ValType) *Func {
	f := &Func{
		m:      m,
		sig:    sig,
		idx:    uint32(len(m.imports) + len(m.funcs)),
		locals: locals,
	}
	m.internType(sig) // types must be complete before emission
	m.funcs = append(m.funcs, f)
	return f
}

// Memory declares the module memory in 64 KiB pages (max 0 = no maximum).
func (m *Module) Memory(min, max uint32) {
	m.hasMem = true
	m.memMin = min
	m.memMax = max
	m.hasMemMax = max != 0
}

// Table declares a funcref table of the given size.
func (m *Module) Table(size uint32) {
	m.hasTable = true
	m.tableMin = size
}

// Elem fills table slots starting at offset with the given functions.
func (m *Module) Elem(offset int32, funcs ...*Func) {
	m.elems = append(m.elems, elemEntry{offset: offset, entries: funcs})
}

// Global declares a global with a constant initial value (bit pattern).
// It returns the global index.
func (m *Module) Global(t ValType, mutable bool, init uint64) uint32 {
	m.globals = append(m.globals, globalEntry{typ: t, mutable: mutable, init: init})
	return uint32(len(m.globals) - 1)
}

// Export exposes a function under the given name.
func (m *Module) Export(name string, f *Func) {
	m.exports = append(m.exports, exportEntry{name: name, kind: 0, idx: f.Index})
}

// ExportMemory exposes the module memory under the given name.
func (m *Module) ExportMemory(name string) {
	m.exports = append(m.exports, exportEntry{name: name, kind: 2, idx: func() uint32 { return 0 }})
}

// Start marks f as the module start function.
func (m *Module) Start(f *Func) {
	m.hasStart = true
	m.startFn = f
}

// Data places bytes at a constant offset in memory at instantiation.
func (m *Module) Data(offset int32, b []byte) {
	m.data = append(m.data, dataEntry{offset: offset, bytes: append([]byte(nil), b...)})
}

// --- binary emission ---

func uleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

func sleb(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		done := (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0)
		if !done {
			b |= 0x80
		}
		dst = append(dst, b)
		if done {
			return dst
		}
	}
}

func section(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = uleb(out, uint64(len(body)))
	return append(out, body...)
}

// Bytes assembles the module binary.
func (m *Module) Bytes() []byte {
	out := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

	// Type section.
	if len(m.types) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.types)))
		for _, t := range m.types {
			b = append(b, 0x60)
			b = uleb(b, uint64(len(t.Params)))
			for _, p := range t.Params {
				b = append(b, byte(p))
			}
			b = uleb(b, uint64(len(t.Results)))
			for _, r := range t.Results {
				b = append(b, byte(r))
			}
		}
		out = section(out, 1, b)
	}

	// Import section.
	if len(m.imports) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.imports)))
		for _, imp := range m.imports {
			b = uleb(b, uint64(len(imp.module)))
			b = append(b, imp.module...)
			b = uleb(b, uint64(len(imp.name)))
			b = append(b, imp.name...)
			b = append(b, 0x00)
			b = uleb(b, uint64(imp.typeIdx))
		}
		out = section(out, 2, b)
	}

	// Function section.
	if len(m.funcs) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.funcs)))
		for _, f := range m.funcs {
			b = uleb(b, uint64(m.internType(f.sig)))
		}
		out = section(out, 3, b)
	}

	// Table section.
	if m.hasTable {
		var b []byte
		b = uleb(b, 1)
		b = append(b, 0x70, 0x00)
		b = uleb(b, uint64(m.tableMin))
		out = section(out, 4, b)
	}

	// Memory section.
	if m.hasMem {
		var b []byte
		b = uleb(b, 1)
		if m.hasMemMax {
			b = append(b, 0x01)
			b = uleb(b, uint64(m.memMin))
			b = uleb(b, uint64(m.memMax))
		} else {
			b = append(b, 0x00)
			b = uleb(b, uint64(m.memMin))
		}
		out = section(out, 5, b)
	}

	// Global section.
	if len(m.globals) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.globals)))
		for _, g := range m.globals {
			b = append(b, byte(g.typ))
			if g.mutable {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			switch g.typ {
			case I32:
				b = append(b, 0x41)
				b = sleb(b, int64(int32(uint32(g.init))))
			case I64:
				b = append(b, 0x42)
				b = sleb(b, int64(g.init))
			case F32:
				b = append(b, 0x43)
				b = binary.LittleEndian.AppendUint32(b, uint32(g.init))
			case F64:
				b = append(b, 0x44)
				b = binary.LittleEndian.AppendUint64(b, g.init)
			}
			b = append(b, 0x0B)
		}
		out = section(out, 6, b)
	}

	// Export section.
	if len(m.exports) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.exports)))
		for _, e := range m.exports {
			b = uleb(b, uint64(len(e.name)))
			b = append(b, e.name...)
			b = append(b, e.kind)
			b = uleb(b, uint64(e.idx()))
		}
		out = section(out, 7, b)
	}

	// Start section.
	if m.hasStart {
		var b []byte
		b = uleb(b, uint64(m.startFn.Index()))
		out = section(out, 8, b)
	}

	// Element section.
	if len(m.elems) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.elems)))
		for _, e := range m.elems {
			b = uleb(b, 0)
			b = append(b, 0x41)
			b = sleb(b, int64(e.offset))
			b = append(b, 0x0B)
			b = uleb(b, uint64(len(e.entries)))
			for _, f := range e.entries {
				b = uleb(b, uint64(f.Index()))
			}
		}
		out = section(out, 9, b)
	}

	// Code section.
	if len(m.funcs) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.funcs)))
		for _, f := range m.funcs {
			body := f.assembleBody()
			b = uleb(b, uint64(len(body)))
			b = append(b, body...)
		}
		out = section(out, 10, b)
	}

	// Data section.
	if len(m.data) > 0 {
		var b []byte
		b = uleb(b, uint64(len(m.data)))
		for _, d := range m.data {
			b = uleb(b, 0)
			b = append(b, 0x41)
			b = sleb(b, int64(d.offset))
			b = append(b, 0x0B)
			b = uleb(b, uint64(len(d.bytes)))
			b = append(b, d.bytes...)
		}
		out = section(out, 11, b)
	}

	return out
}

// Func is a function under construction. Instruction methods append to its
// body; call End to close the outermost scope.
type Func struct {
	m        *Module
	sig      Signature
	idx      uint32
	imported bool
	locals   []ValType
	body     []byte
	depth    int
	ended    bool
}

// Index returns the function's index in the module function index space.
func (f *Func) Index() uint32 { return f.idx }

// AddLocal appends another local of type t, returning its index.
func (f *Func) AddLocal(t ValType) uint32 {
	if f.imported {
		panic("wasmgen: imported functions have no locals")
	}
	f.locals = append(f.locals, t)
	return uint32(len(f.sig.Params) + len(f.locals) - 1)
}

func (f *Func) assembleBody() []byte {
	if f.imported {
		panic("wasmgen: imported function has no body")
	}
	if !f.ended {
		panic(fmt.Sprintf("wasmgen: function %d body not ended", f.idx))
	}
	// Compress locals into (count, type) runs.
	var runs [][2]uint64
	for _, t := range f.locals {
		if len(runs) > 0 && runs[len(runs)-1][1] == uint64(t) {
			runs[len(runs)-1][0]++
		} else {
			runs = append(runs, [2]uint64{1, uint64(t)})
		}
	}
	var out []byte
	out = uleb(out, uint64(len(runs)))
	for _, r := range runs {
		out = uleb(out, r[0])
		out = append(out, byte(r[1]))
	}
	return append(out, f.body...)
}

func (f *Func) op(b byte) *Func {
	f.body = append(f.body, b)
	return f
}

func (f *Func) opU(b byte, v uint64) *Func {
	f.body = append(f.body, b)
	f.body = uleb(f.body, v)
	return f
}

// --- control flow ---

// Block opens a block scope.
func (f *Func) Block(t BlockType) *Func { f.depth++; return f.op(0x02).op(byte(t)) }

// Loop opens a loop scope.
func (f *Func) Loop(t BlockType) *Func { f.depth++; return f.op(0x03).op(byte(t)) }

// If opens a conditional scope (consumes an i32).
func (f *Func) If(t BlockType) *Func { f.depth++; return f.op(0x04).op(byte(t)) }

// Else switches to the false branch.
func (f *Func) Else() *Func { return f.op(0x05) }

// End closes the innermost scope; closing the outermost finishes the body.
func (f *Func) End() *Func {
	f.op(0x0B)
	if f.depth == 0 {
		f.ended = true
	} else {
		f.depth--
	}
	return f
}

// Br branches to the l-th enclosing label.
func (f *Func) Br(l uint32) *Func { return f.opU(0x0C, uint64(l)) }

// BrIf conditionally branches to the l-th enclosing label.
func (f *Func) BrIf(l uint32) *Func { return f.opU(0x0D, uint64(l)) }

// BrTable emits a jump table (last label is the default).
func (f *Func) BrTable(labels ...uint32) *Func {
	f.op(0x0E)
	f.body = uleb(f.body, uint64(len(labels)-1))
	for _, l := range labels {
		f.body = uleb(f.body, uint64(l))
	}
	return f
}

// Return returns from the function.
func (f *Func) Return() *Func { return f.op(0x0F) }

// Unreachable traps.
func (f *Func) Unreachable() *Func { return f.op(0x00) }

// Nop does nothing.
func (f *Func) Nop() *Func { return f.op(0x01) }

// Call invokes another function.
func (f *Func) Call(g *Func) *Func { return f.opU(0x10, uint64(g.Index())) }

// CallIndirect calls through the table with the given signature.
func (f *Func) CallIndirect(sig Signature) *Func {
	f.opU(0x11, uint64(f.m.internType(sig)))
	return f.op(0x00)
}

// Drop discards the top of stack; Select picks one of two values.
func (f *Func) Drop() *Func   { return f.op(0x1A) }
func (f *Func) Select() *Func { return f.op(0x1B) }

// --- variables ---

// LocalGet, LocalSet, LocalTee, GlobalGet and GlobalSet access variables.
func (f *Func) LocalGet(i uint32) *Func  { return f.opU(0x20, uint64(i)) }
func (f *Func) LocalSet(i uint32) *Func  { return f.opU(0x21, uint64(i)) }
func (f *Func) LocalTee(i uint32) *Func  { return f.opU(0x22, uint64(i)) }
func (f *Func) GlobalGet(i uint32) *Func { return f.opU(0x23, uint64(i)) }
func (f *Func) GlobalSet(i uint32) *Func { return f.opU(0x24, uint64(i)) }

// --- constants ---

// I32Const..F64Const push literals.
func (f *Func) I32Const(v int32) *Func {
	f.op(0x41)
	f.body = sleb(f.body, int64(v))
	return f
}

func (f *Func) I64Const(v int64) *Func {
	f.op(0x42)
	f.body = sleb(f.body, v)
	return f
}

func (f *Func) F32Const(v float32) *Func {
	f.op(0x43)
	f.body = binary.LittleEndian.AppendUint32(f.body, math.Float32bits(v))
	return f
}

func (f *Func) F64Const(v float64) *Func {
	f.op(0x44)
	f.body = binary.LittleEndian.AppendUint64(f.body, math.Float64bits(v))
	return f
}

// --- memory ---

func (f *Func) memOp(op byte, align, offset uint32) *Func {
	f.op(op)
	f.body = uleb(f.body, uint64(align))
	f.body = uleb(f.body, uint64(offset))
	return f
}

// Loads (offset is the constant address offset; natural alignment).
func (f *Func) I32Load(offset uint32) *Func   { return f.memOp(0x28, 2, offset) }
func (f *Func) I64Load(offset uint32) *Func   { return f.memOp(0x29, 3, offset) }
func (f *Func) F32Load(offset uint32) *Func   { return f.memOp(0x2A, 2, offset) }
func (f *Func) F64Load(offset uint32) *Func   { return f.memOp(0x2B, 3, offset) }
func (f *Func) I32Load8U(offset uint32) *Func { return f.memOp(0x2D, 0, offset) }
func (f *Func) I32Load8S(offset uint32) *Func { return f.memOp(0x2C, 0, offset) }

// Stores.
func (f *Func) I32Store(offset uint32) *Func  { return f.memOp(0x36, 2, offset) }
func (f *Func) I64Store(offset uint32) *Func  { return f.memOp(0x37, 3, offset) }
func (f *Func) F32Store(offset uint32) *Func  { return f.memOp(0x38, 2, offset) }
func (f *Func) F64Store(offset uint32) *Func  { return f.memOp(0x39, 3, offset) }
func (f *Func) I32Store8(offset uint32) *Func { return f.memOp(0x3A, 0, offset) }

// MemorySize and MemoryGrow query/extend memory.
func (f *Func) MemorySize() *Func { return f.op(0x3F).op(0x00) }
func (f *Func) MemoryGrow() *Func { return f.op(0x40).op(0x00) }

// --- numeric (generated mechanically; names match the spec) ---

func (f *Func) I32Eqz() *Func { return f.op(0x45) }
func (f *Func) I32Eq() *Func  { return f.op(0x46) }
func (f *Func) I32Ne() *Func  { return f.op(0x47) }
func (f *Func) I32LtS() *Func { return f.op(0x48) }
func (f *Func) I32LtU() *Func { return f.op(0x49) }
func (f *Func) I32GtS() *Func { return f.op(0x4A) }
func (f *Func) I32GtU() *Func { return f.op(0x4B) }
func (f *Func) I32LeS() *Func { return f.op(0x4C) }
func (f *Func) I32LeU() *Func { return f.op(0x4D) }
func (f *Func) I32GeS() *Func { return f.op(0x4E) }
func (f *Func) I32GeU() *Func { return f.op(0x4F) }

func (f *Func) I64Eqz() *Func { return f.op(0x50) }
func (f *Func) I64Eq() *Func  { return f.op(0x51) }
func (f *Func) I64Ne() *Func  { return f.op(0x52) }
func (f *Func) I64LtS() *Func { return f.op(0x53) }
func (f *Func) I64LtU() *Func { return f.op(0x54) }
func (f *Func) I64GtS() *Func { return f.op(0x55) }
func (f *Func) I64GtU() *Func { return f.op(0x56) }
func (f *Func) I64LeS() *Func { return f.op(0x57) }
func (f *Func) I64LeU() *Func { return f.op(0x58) }
func (f *Func) I64GeS() *Func { return f.op(0x59) }
func (f *Func) I64GeU() *Func { return f.op(0x5A) }

func (f *Func) F32Eq() *Func { return f.op(0x5B) }
func (f *Func) F32Ne() *Func { return f.op(0x5C) }
func (f *Func) F32Lt() *Func { return f.op(0x5D) }
func (f *Func) F32Gt() *Func { return f.op(0x5E) }
func (f *Func) F32Le() *Func { return f.op(0x5F) }
func (f *Func) F32Ge() *Func { return f.op(0x60) }

func (f *Func) F64Eq() *Func { return f.op(0x61) }
func (f *Func) F64Ne() *Func { return f.op(0x62) }
func (f *Func) F64Lt() *Func { return f.op(0x63) }
func (f *Func) F64Gt() *Func { return f.op(0x64) }
func (f *Func) F64Le() *Func { return f.op(0x65) }
func (f *Func) F64Ge() *Func { return f.op(0x66) }

func (f *Func) I32Clz() *Func    { return f.op(0x67) }
func (f *Func) I32Ctz() *Func    { return f.op(0x68) }
func (f *Func) I32Popcnt() *Func { return f.op(0x69) }
func (f *Func) I32Add() *Func    { return f.op(0x6A) }
func (f *Func) I32Sub() *Func    { return f.op(0x6B) }
func (f *Func) I32Mul() *Func    { return f.op(0x6C) }
func (f *Func) I32DivS() *Func   { return f.op(0x6D) }
func (f *Func) I32DivU() *Func   { return f.op(0x6E) }
func (f *Func) I32RemS() *Func   { return f.op(0x6F) }
func (f *Func) I32RemU() *Func   { return f.op(0x70) }
func (f *Func) I32And() *Func    { return f.op(0x71) }
func (f *Func) I32Or() *Func     { return f.op(0x72) }
func (f *Func) I32Xor() *Func    { return f.op(0x73) }
func (f *Func) I32Shl() *Func    { return f.op(0x74) }
func (f *Func) I32ShrS() *Func   { return f.op(0x75) }
func (f *Func) I32ShrU() *Func   { return f.op(0x76) }
func (f *Func) I32Rotl() *Func   { return f.op(0x77) }
func (f *Func) I32Rotr() *Func   { return f.op(0x78) }

func (f *Func) I64Clz() *Func    { return f.op(0x79) }
func (f *Func) I64Ctz() *Func    { return f.op(0x7A) }
func (f *Func) I64Popcnt() *Func { return f.op(0x7B) }
func (f *Func) I64Add() *Func    { return f.op(0x7C) }
func (f *Func) I64Sub() *Func    { return f.op(0x7D) }
func (f *Func) I64Mul() *Func    { return f.op(0x7E) }
func (f *Func) I64DivS() *Func   { return f.op(0x7F) }
func (f *Func) I64DivU() *Func   { return f.op(0x80) }
func (f *Func) I64RemS() *Func   { return f.op(0x81) }
func (f *Func) I64RemU() *Func   { return f.op(0x82) }
func (f *Func) I64And() *Func    { return f.op(0x83) }
func (f *Func) I64Or() *Func     { return f.op(0x84) }
func (f *Func) I64Xor() *Func    { return f.op(0x85) }
func (f *Func) I64Shl() *Func    { return f.op(0x86) }
func (f *Func) I64ShrS() *Func   { return f.op(0x87) }
func (f *Func) I64ShrU() *Func   { return f.op(0x88) }
func (f *Func) I64Rotl() *Func   { return f.op(0x89) }
func (f *Func) I64Rotr() *Func   { return f.op(0x8A) }

func (f *Func) F32Abs() *Func      { return f.op(0x8B) }
func (f *Func) F32Neg() *Func      { return f.op(0x8C) }
func (f *Func) F32Sqrt() *Func     { return f.op(0x91) }
func (f *Func) F32Add() *Func      { return f.op(0x92) }
func (f *Func) F32Sub() *Func      { return f.op(0x93) }
func (f *Func) F32Mul() *Func      { return f.op(0x94) }
func (f *Func) F32Div() *Func      { return f.op(0x95) }
func (f *Func) F32Min() *Func      { return f.op(0x96) }
func (f *Func) F32Max() *Func      { return f.op(0x97) }
func (f *Func) F32Copysign() *Func { return f.op(0x98) }

func (f *Func) F64Abs() *Func      { return f.op(0x99) }
func (f *Func) F64Neg() *Func      { return f.op(0x9A) }
func (f *Func) F64Ceil() *Func     { return f.op(0x9B) }
func (f *Func) F64Floor() *Func    { return f.op(0x9C) }
func (f *Func) F64Trunc() *Func    { return f.op(0x9D) }
func (f *Func) F64Nearest() *Func  { return f.op(0x9E) }
func (f *Func) F64Sqrt() *Func     { return f.op(0x9F) }
func (f *Func) F64Add() *Func      { return f.op(0xA0) }
func (f *Func) F64Sub() *Func      { return f.op(0xA1) }
func (f *Func) F64Mul() *Func      { return f.op(0xA2) }
func (f *Func) F64Div() *Func      { return f.op(0xA3) }
func (f *Func) F64Min() *Func      { return f.op(0xA4) }
func (f *Func) F64Max() *Func      { return f.op(0xA5) }
func (f *Func) F64Copysign() *Func { return f.op(0xA6) }

func (f *Func) I32WrapI64() *Func        { return f.op(0xA7) }
func (f *Func) I32TruncF64S() *Func      { return f.op(0xAA) }
func (f *Func) I64ExtendI32S() *Func     { return f.op(0xAC) }
func (f *Func) I64ExtendI32U() *Func     { return f.op(0xAD) }
func (f *Func) I64TruncF64S() *Func      { return f.op(0xB0) }
func (f *Func) F32ConvertI32S() *Func    { return f.op(0xB2) }
func (f *Func) F32DemoteF64() *Func      { return f.op(0xB6) }
func (f *Func) F64ConvertI32S() *Func    { return f.op(0xB7) }
func (f *Func) F64ConvertI32U() *Func    { return f.op(0xB8) }
func (f *Func) F64ConvertI64S() *Func    { return f.op(0xB9) }
func (f *Func) F64PromoteF32() *Func     { return f.op(0xBB) }
func (f *Func) I32ReinterpretF32() *Func { return f.op(0xBC) }
func (f *Func) I64ReinterpretF64() *Func { return f.op(0xBD) }
func (f *Func) F32ReinterpretI32() *Func { return f.op(0xBE) }
func (f *Func) F64ReinterpretI64() *Func { return f.op(0xBF) }
