package wasmgen_test

import (
	"bytes"
	"testing"

	"twine/internal/wasm"
	"twine/wasmgen"
)

// compile round-trips a built module through the real decoder/validator.
func compile(t *testing.T, m *wasmgen.Module) *wasm.Compiled {
	t.Helper()
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c, err := wasm.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestEmittedModuleHasMagic(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig())
	f.End()
	m.Export("f", f)
	bin := m.Bytes()
	if !bytes.HasPrefix(bin, []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}) {
		t.Fatalf("bad header: % x", bin[:8])
	}
}

func TestTypesAreDeduplicated(t *testing.T) {
	m := wasmgen.NewModule()
	sig := wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32)
	f1 := m.Func(sig)
	f1.LocalGet(0).End()
	f2 := m.Func(sig)
	f2.LocalGet(0).End()
	m.Export("a", f1)
	m.Export("b", f2)
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(mod.Types) != 1 {
		t.Errorf("type section has %d entries, want 1", len(mod.Types))
	}
}

func TestLocalsCompressIntoRuns(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig(), wasmgen.I32, wasmgen.I32, wasmgen.F64, wasmgen.I32)
	f.End()
	m.Export("f", f)
	mod, err := wasm.Decode(m.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := len(mod.Codes[0].Locals); got != 4 {
		t.Errorf("decoded %d locals, want 4", got)
	}
}

func TestFullFeatureModuleValidates(t *testing.T) {
	m := wasmgen.NewModule()
	imp := m.ImportFunc("env", "cb", wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	m.Memory(1, 4)
	m.Table(2)
	g := m.Global(wasmgen.I64, true, 5)
	m.Data(16, []byte{1, 2, 3})

	callee := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32))
	callee.LocalGet(0).I32Const(2).I32Mul().End()
	m.Elem(0, callee)

	f := m.Func(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32), wasmgen.I32)
	extra := f.AddLocal(wasmgen.I64)
	f.Block(wasmgen.BlockVoid)
	f.Loop(wasmgen.BlockVoid)
	f.LocalGet(1).I32Const(3).I32GeS().BrIf(1)
	f.LocalGet(1).I32Const(1).I32Add().LocalSet(1)
	f.Br(0)
	f.End().End()
	f.GlobalGet(g).LocalSet(extra)
	f.LocalGet(0).Call(imp)                                                               // cb(x) = x + 100
	f.LocalGet(0).I32Const(0).CallIndirect(wasmgen.Sig(wasmgen.I32).Returns(wasmgen.I32)) // callee(x) = 2x
	f.I32Add()
	f.End()
	m.Export("main", f)
	m.ExportMemory("memory")

	c := compile(t, m)
	io := wasm.NewImportObject()
	io.AddFunc(wasm.HostFunc{
		Module: "env", Name: "cb",
		Type: wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}},
		Fn: func(in *wasm.Instance, a []uint64) ([]uint64, error) {
			return []uint64{a[0] + 100}, nil
		},
	})
	in, err := wasm.Instantiate(c, io, wasm.Config{})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	// main(7) = cb(7) + callee(7) = 107 + 14 = 121.
	out, err := in.Invoke("main", 7)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if out[0] != 121 {
		t.Errorf("main(7) = %d, want 121", out[0])
	}
}

func TestStartAndGlobals(t *testing.T) {
	m := wasmgen.NewModule()
	g := m.Global(wasmgen.I32, true, 0)
	init := m.Func(wasmgen.Sig())
	init.I32Const(11).GlobalSet(g).End()
	m.Start(init)
	get := m.Func(wasmgen.Sig().Returns(wasmgen.I32))
	get.GlobalGet(g).End()
	m.Export("get", get)
	c := compile(t, m)
	in, err := wasm.Instantiate(c, nil, wasm.Config{})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	out, _ := in.Invoke("get")
	if out[0] != 11 {
		t.Errorf("start did not run: %d", out[0])
	}
}

func TestFloatConstBits(t *testing.T) {
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig().Returns(wasmgen.F64))
	f.F64Const(3.5).End()
	m.Export("c", f)
	c := compile(t, m)
	in, _ := wasm.Instantiate(c, nil, wasm.Config{})
	out, _ := in.Invoke("c")
	if out[0] != 0x400C000000000000 {
		t.Errorf("f64 const bits = %#x", out[0])
	}
}

func TestUnendedBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bytes() on unended function did not panic")
		}
	}()
	m := wasmgen.NewModule()
	f := m.Func(wasmgen.Sig())
	f.I32Const(1) // no End
	m.Export("f", f)
	m.Bytes()
}
