// Package twine is the public API of the TWINE reproduction: a trusted
// WebAssembly runtime embedded in a (simulated) Intel SGX enclave, exposing
// a WASI system interface whose file operations are served by the Intel
// protected file system — data at rest on the untrusted host is always
// ciphertext (Ménétrey et al., "TWINE: An Embedded Trusted Runtime for
// WebAssembly", ICDE 2021).
//
// Quick start:
//
//	rt, err := twine.NewRuntime(twine.Config{})
//	mod, err := rt.LoadModule(wasmBytes)      // single ECALL, reserved memory
//	inst, err := rt.NewInstance(mod)
//	code, err := inst.Run()                   // runs _start inside the enclave
//
// Application code can also be delivered confidentially after remote
// attestation (the paper's Figure 1 workflow): see Provider and
// Runtime.FetchModule.
//
// For the paper's flagship use case — a trusted full SQL database — see the
// tsql subpackage.
package twine

import (
	"io"

	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Re-exported kinds and modes.
type (
	// Config assembles a runtime; the zero value is a working default
	// (fresh in-memory host, IPFS-backed trusted storage, AoT engine,
	// paper-testbed SGX geometry).
	Config = core.Config
	// Runtime is a live TWINE enclave.
	Runtime = core.Runtime
	// Module is a loaded, AoT-translated application.
	Module = core.Module
	// Instance is an instantiated module.
	Instance = core.Instance
	// Provider serves Wasm modules to attested enclaves.
	Provider = core.Provider
	// FSKind selects the WASI file backend.
	FSKind = core.FSKind
)

// File-system kinds.
const (
	// FSIPFS routes file I/O to the Intel protected file system (trusted).
	FSIPFS = core.FSIPFS
	// FSHost forwards file I/O to untrusted POSIX (the WAMR baseline).
	FSHost = core.FSHost
)

// IPFS modes (paper §V-F).
const (
	IPFSStandard  = ipfs.ModeStandard
	IPFSOptimized = ipfs.ModeOptimized
)

// Engines.
const (
	EngineAOT    = wasm.EngineAOT
	EngineInterp = wasm.EngineInterp
)

// NewRuntime builds the enclave and WASI plumbing.
func NewRuntime(cfg Config) (*Runtime, error) { return core.NewRuntime(cfg) }

// NewProvider builds the application-provider side of the provisioning
// protocol: it releases wasmModule only to enclaves whose measurement
// matches expected, verified through svc.
func NewProvider(svc *AttestationService, expected [32]byte, wasmModule []byte) *Provider {
	return core.NewProvider(svc, expected, wasmModule)
}

// AttestationService simulates the remote attestation authority.
type AttestationService = sgx.AttestationService

// NewAttestationService returns an empty attestation service; register
// platforms that should be considered genuine.
func NewAttestationService() *AttestationService { return sgx.NewAttestationService() }

// NewMemHostFS returns an in-memory untrusted host file system, useful for
// examples and tests.
func NewMemHostFS() hostfs.FS { return hostfs.NewMemFS() }

// NewDirHostFS returns an untrusted host file system rooted at a real
// directory.
func NewDirHostFS(dir string) (hostfs.FS, error) { return hostfs.NewDirFS(dir) }

// NewProfRegistry returns a profiling registry to pass in Config.Prof.
func NewProfRegistry() *prof.Registry { return prof.NewRegistry() }

// SGXDefaultConfig returns the paper-testbed enclave geometry (128 MiB
// EPC, 93 MiB usable).
func SGXDefaultConfig() sgx.Config { return sgx.DefaultConfig() }

// SGXTestConfig returns a small, fast enclave for tests.
func SGXTestConfig() sgx.Config { return sgx.TestConfig() }

// Discard is a convenient stdout sink.
var Discard io.Writer = discard{}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
