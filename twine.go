// Package twine is the public API of the TWINE reproduction: a trusted
// WebAssembly runtime embedded in a (simulated) Intel SGX enclave, exposing
// a WASI system interface whose file operations are served by the Intel
// protected file system — data at rest on the untrusted host is always
// ciphertext (Ménétrey et al., "TWINE: An Embedded Trusted Runtime for
// WebAssembly", ICDE 2021).
//
// Quick start:
//
//	rt, err := twine.NewRuntime(twine.Config{})
//	mod, err := rt.LoadModule(wasmBytes)      // single ECALL, reserved memory
//	inst, err := rt.NewInstance(mod)
//	code, err := inst.Run()                   // runs _start inside the enclave
//
// Application code can also be delivered confidentially after remote
// attestation (the paper's Figure 1 workflow): see Provider and
// Runtime.FetchModule.
//
// Hot host calls ride a switchless OCALL ring by default (PR 2), skipping
// the two enclave transitions a classic OCALL pays; set Config.Switchless
// to SwitchlessOff to restore the baseline two-transition dispatch.
//
// The runtime is concurrent (PR 3): ECALLs from distinct goroutines
// multiplex over a bounded pool of thread control structures
// (sgx.Config.TCSNum), so many instances of one module serve requests in
// parallel. The serving front door is Runtime.NewPool:
//
//	pool, err := rt.NewPool(mod, twine.PoolConfig{Workers: 4})
//	out, err := pool.Submit(args...)          // one request, any goroutine
//	err = pool.Serve(n, argsFn, doneFn)       // a batch across all workers
//
// Serving is fault-contained (PR 6): PoolConfig.MaxQueue and SubmitTimeout
// bound admission (rejected work fails fast with ErrOverloaded),
// Pool.SubmitCtx honours context deadlines, and a request that corrupts its
// worker — a Wasm trap, a failed host interaction — quarantines that worker
// and repairs it from the instantiation snapshot before it serves again.
// Transient host faults are retried at the WASI boundary
// (Config.HostRetryMax) and never quarantine. The seeded fault-injection
// harness behind the fault tests is exported as FaultPlan/FaultInjector.
//
// Multi-tenant serving (PR 8) goes through a Registry: tenants register
// named (module, config) pairs, compiled code is shared content-addressed
// across tenants, and every mutable thing — workers, golden snapshot,
// admission queue, latency accounting — stays per-tenant:
//
//	reg := rt.NewRegistry(twine.RegistryConfig{})
//	a, err := reg.Register("tenant-a", wasmBytes, twine.TenantConfig{})
//	out, err := reg.Submit("tenant-a", args...)  // or a.Submit(args...)
//
// Tenants serve FreshState by default: each request sees the golden
// snapshot, restored by an in-place warm reset of the completed worker
// (no re-instantiation on the hot path). Per-tenant queue shares
// (TenantConfig.MaxQueue) make overload a private failure — a saturated
// tenant's submits fail with ErrOverloaded while its neighbours keep
// serving — and per-tenant latency quantiles land in RegistryStats.
//
// Under EPC pressure the registry swaps at instance granularity (PR 9):
// RegistryConfig.MaxResident bounds how many warm workers hold enclave
// arenas at once, and RegistryConfig.IdleSuspendAge starts a background
// reaper. Beyond the bound, the coldest idle instances (working-set-
// weighted victim selection) are suspended — their state sealed to
// untrusted storage as a delta against the golden snapshot, their EPC
// released — and a Submit against a suspended tenant transparently
// resumes it. A resumed worker is bit-identical to one that never left
// the EPC; the zero RegistryConfig disables the tier entirely.
//
// For the paper's flagship use case — a trusted full SQL database — see the
// tsql subpackage.
package twine

import (
	"io"

	"twine/internal/chaos"
	"twine/internal/core"
	"twine/internal/hostfs"
	"twine/internal/ipfs"
	"twine/internal/prof"
	"twine/internal/sgx"
	"twine/internal/wasm"
)

// Re-exported kinds and modes.
type (
	// Config assembles a runtime; the zero value is a working default
	// (fresh in-memory host, IPFS-backed trusted storage, AoT engine,
	// switchless OCALLs, paper-testbed SGX geometry).
	Config = core.Config
	// Runtime is a live TWINE enclave: it loads modules (LoadModule,
	// FetchModule), instantiates them (NewInstance), opens trusted
	// databases (OpenDB) and exposes the enclave for stats and
	// attestation.
	Runtime = core.Runtime
	// Module is a loaded, AoT-translated application, together with its
	// artefact metrics (binary size, translated instruction count, load
	// time — Table IIIb).
	Module = core.Module
	// Instance is an instantiated module whose linear memory is charged
	// against the enclave's EPC; Run executes its WASI start routine and
	// Invoke calls exported functions, each through an ECALL. Distinct
	// instances execute concurrently, bounded by the enclave's TCS pool.
	Instance = core.Instance
	// Pool is the serving front door (PR 3): N worker instances of one
	// module, stamped out by copy-from-snapshot, serving concurrent
	// requests through Submit/Serve. See Runtime.NewPool.
	Pool = core.Pool
	// PoolConfig sizes a Pool (workers, entry function, optional one-time
	// init and per-request untrusted host I/O) and bounds its admission:
	// MaxQueue caps waiting submits, SubmitTimeout bounds the wait for a
	// free worker (PR 6).
	PoolConfig = core.PoolConfig
	// PoolStats counts completed requests, pool-level waits, the
	// fault-containment activity (rejected/timed-out admissions,
	// quarantined/repaired workers) and the serving mode attribution
	// (warm in-place resets vs cold per-request instantiations, PR 8).
	PoolStats = core.PoolStats
	// Registry is the multi-tenant serving front door (PR 8): a
	// content-addressed compiled-module cache plus a named tenant table.
	// See Runtime.NewRegistry.
	Registry = core.Registry
	// RegistryConfig shapes a Registry's EPC-pressure lifecycle (PR 9):
	// MaxResident bounds warm workers holding enclave arenas,
	// IdleSuspendAge/ReaperInterval drive the background reaper. The
	// zero value disables the swap tier (PR 8 behaviour).
	RegistryConfig = core.RegistryConfig
	// Tenant is one registered (module, config) pair and its serving
	// pool.
	Tenant = core.Tenant
	// TenantConfig shapes one tenant's pool; the zero value is a
	// one-worker FreshState tenant (per-request isolation by warm reset).
	TenantConfig = core.TenantConfig
	// TenantStats is one tenant's accounting: pool counters plus latency
	// quantiles.
	TenantStats = core.TenantStats
	// RegistryStats summarises a registry: tenant and distinct-binary
	// counts, compile-cache hits, and per-tenant accounting.
	RegistryStats = core.RegistryStats
	// LatencySummary reports a pool's request-latency quantiles (p50,
	// p95, p99) from its fixed-bucket histogram.
	LatencySummary = core.LatencySummary
	// FaultPlan describes a deterministic, seeded fault-injection plan
	// (PR 6): which operations of a stream fail, with what error, after
	// what stall. The zero plan injects nothing.
	FaultPlan = chaos.Plan
	// FaultInjector applies a FaultPlan to an operation stream. A nil
	// injector is a strict no-op, so fault hooks cost nothing when unused.
	FaultInjector = chaos.Injector
	// Provider serves Wasm modules to attested enclaves over a
	// provisioning channel (the paper's Figure 1 trusted-deployment
	// workflow).
	Provider = core.Provider
	// FSKind selects the WASI file backend (FSIPFS or FSHost).
	FSKind = core.FSKind
	// SwitchlessMode selects the OCALL dispatch strategy
	// (SwitchlessAuto/SwitchlessOn ride the ring, SwitchlessOff pays two
	// transitions per call).
	SwitchlessMode = core.SwitchlessMode
)

// File-system kinds.
const (
	// FSIPFS routes file I/O to the Intel protected file system (trusted).
	FSIPFS = core.FSIPFS
	// FSHost forwards file I/O to untrusted POSIX (the WAMR baseline).
	FSHost = core.FSHost
)

// Switchless OCALL modes (Config.Switchless, PR 2).
const (
	// SwitchlessAuto — the default — enables the switchless ring: hot
	// host calls are served by an untrusted worker without enclave
	// transitions.
	SwitchlessAuto = core.SwitchlessAuto
	// SwitchlessOff forces classic two-transition OCALLs, bit-identical
	// to the pre-switchless runtime (used by ablations and fidelity
	// tests).
	SwitchlessOff = core.SwitchlessOff
	// SwitchlessOn explicitly enables the ring (same as SwitchlessAuto).
	SwitchlessOn = core.SwitchlessOn
)

// IPFS modes (paper §V-F).
const (
	// IPFSStandard mirrors Intel's SGX SDK node lifecycle, including the
	// memset clearing and the edge ciphertext copy Figure 7 measures.
	IPFSStandard = ipfs.ModeStandard
	// IPFSOptimized applies the paper's §V-F fixes: no clearing and
	// zero-copy decryption from the untrusted buffer.
	IPFSOptimized = ipfs.ModeOptimized
)

// Engines (Config.Engine).
const (
	// EngineAOT runs the pre-translated, fused instruction stream — the
	// default, matching TWINE's ahead-of-time compiled modules.
	EngineAOT = wasm.EngineAOT
	// EngineInterp runs the plain interpreter (Table I's slower mode).
	EngineInterp = wasm.EngineInterp
	// EngineRegister runs the register-IR tier (PR 4): per-function
	// register code with folding, propagation and hoisted guards.
	EngineRegister = wasm.EngineRegister
	// EngineSuperblock runs the superblock tier (PR 7): register IR
	// with innermost loops compiled to single Go closures.
	EngineSuperblock = wasm.EngineSuperblock
)

// Serving-pool admission errors (PR 6).
var (
	// ErrOverloaded reports an admission-control rejection: the pool's
	// wait queue was full, or the submit's deadline expired before a
	// worker freed up. Overloaded requests left no side effect and are
	// safe to resubmit (typically after client-side backoff).
	ErrOverloaded = core.ErrOverloaded
	// ErrPoolClosed reports a submit against a closed pool, including
	// submits that were queued when Close began.
	ErrPoolClosed = core.ErrPoolClosed
	// ErrUnknownTenant reports a Registry.Submit against a name no
	// Register call created — an admission failure, never a panic, so
	// the front door can face untrusted tenant names (PR 8).
	ErrUnknownTenant = core.ErrUnknownTenant
)

// NewFaultInjector compiles a FaultPlan into a FaultInjector for use in
// fault hooks (Config.Chaos, PoolConfig.HostIO wrappers, chaos tests).
func NewFaultInjector(p FaultPlan) *FaultInjector { return chaos.New(p) }

// TransientFault marks err as transient — "the call never happened, no
// side effect" — which makes it retryable at the WASI boundary and exempt
// from worker quarantine.
func TransientFault(err error) error { return chaos.Transient(err) }

// IsTransientFault reports whether err is transient in the sense of
// TransientFault.
func IsTransientFault(err error) bool { return chaos.IsTransient(err) }

// NewRuntime builds the enclave and WASI plumbing. The zero Config is a
// working default; the returned Runtime is ready for LoadModule.
func NewRuntime(cfg Config) (*Runtime, error) { return core.NewRuntime(cfg) }

// NewProvider builds the application-provider side of the provisioning
// protocol: it releases wasmModule only to enclaves whose measurement
// matches expected, verified through svc.
func NewProvider(svc *AttestationService, expected [32]byte, wasmModule []byte) *Provider {
	return core.NewProvider(svc, expected, wasmModule)
}

// AttestationService simulates the remote attestation authority (Intel
// IAS): it verifies quotes produced by registered platforms and reports
// whether an enclave is genuine and non-debug.
type AttestationService = sgx.AttestationService

// NewAttestationService returns an empty attestation service; register
// platforms that should be considered genuine.
func NewAttestationService() *AttestationService { return sgx.NewAttestationService() }

// NewMemHostFS returns an in-memory untrusted host file system, useful for
// examples and tests.
func NewMemHostFS() hostfs.FS { return hostfs.NewMemFS() }

// NewDirHostFS returns an untrusted host file system rooted at a real
// directory.
func NewDirHostFS(dir string) (hostfs.FS, error) { return hostfs.NewDirFS(dir) }

// NewProfRegistry returns a profiling registry to pass in Config.Prof; its
// counters and timers reconstruct the paper's figure series ("sgx.ocall",
// "sgx.switchless", "ipfs.memset", ...).
func NewProfRegistry() *prof.Registry { return prof.NewRegistry() }

// SGXDefaultConfig returns the paper-testbed enclave geometry (128 MiB
// EPC, 93 MiB usable, ~1.7 µs one-way transition cost).
func SGXDefaultConfig() sgx.Config { return sgx.DefaultConfig() }

// SGXTestConfig returns a small, fast enclave for tests: a tiny EPC so
// paging is easy to provoke, and free transitions.
func SGXTestConfig() sgx.Config { return sgx.TestConfig() }

// Discard is a convenient stdout sink for guests whose output does not
// matter (benchmarks, smoke tests).
var Discard io.Writer = discard{}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
